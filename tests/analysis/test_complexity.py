"""Tests for the complexity-fitting helpers."""

import math

import pytest

from repro.analysis.complexity import (
    BOUNDS,
    bound_value,
    fit_constant,
    is_sublinear_in,
    ratio_series,
)
from repro.network.errors import AlgorithmError


class TestBounds:
    def test_known_bounds_evaluate(self):
        n, m = 256, 10000
        assert bound_value("n", n, m) == 256
        assert bound_value("m", n, m) == 10000
        assert bound_value("n_log_n", n, m) == pytest.approx(256 * 8)
        assert bound_value("m_plus_n_log_n", n, m) == pytest.approx(10000 + 256 * 8)
        expected = 256 * 64 / math.log2(8)
        assert bound_value("n_log2_n_over_loglog_n", n, m) == pytest.approx(expected)

    def test_unknown_bound_rejected(self):
        with pytest.raises(AlgorithmError):
            bound_value("n_cubed", 10, 10)

    def test_all_bounds_positive(self):
        for name in BOUNDS:
            assert bound_value(name, 64, 500) > 0

    def test_bounds_safe_for_tiny_inputs(self):
        for name in BOUNDS:
            assert bound_value(name, 1, 0) >= 0


class TestFitConstant:
    def test_perfect_fit_constant_spread_one(self):
        sizes = [(64, 500), (128, 2000), (256, 8000)]
        measurements = [3 * n * math.log2(n) for n, _ in sizes]
        fit = fit_constant(sizes, measurements, "n_log_n")
        assert fit.mean_constant == pytest.approx(3.0)
        assert fit.spread == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AlgorithmError):
            fit_constant([(10, 10)], [1.0, 2.0], "n")

    def test_empty_rejected(self):
        with pytest.raises(AlgorithmError):
            fit_constant([], [], "n")

    def test_growing_constants_detected_by_spread(self):
        sizes = [(16, 100), (64, 100), (256, 100)]
        measurements = [n * n for n, _ in sizes]  # quadratic, fit against linear
        fit = fit_constant(sizes, measurements, "n")
        assert fit.spread > 10


class TestRatios:
    def test_ratio_series(self):
        assert ratio_series([2, 4, 6], [1, 2, 3]) == [2.0, 2.0, 2.0]
        assert ratio_series([1.0], [0.0]) == [0.0]

    def test_ratio_series_length_mismatch(self):
        with pytest.raises(AlgorithmError):
            ratio_series([1], [1, 2])

    def test_is_sublinear_detects_shrinking_ratio(self):
        ns = [32, 64, 128, 256, 512]
        measurements = [n * math.log2(n) for n in ns]      # ~ n log n
        references = [n ** 1.5 for n in ns]                # ~ m for dense graphs
        assert is_sublinear_in(measurements, references)

    def test_is_sublinear_rejects_flat_ratio(self):
        ns = [32, 64, 128, 256]
        measurements = [5 * n for n in ns]
        references = [float(n) for n in ns]
        assert not is_sublinear_in(measurements, references)

    def test_is_sublinear_needs_two_points(self):
        with pytest.raises(AlgorithmError):
            is_sublinear_in([1.0], [1.0])
