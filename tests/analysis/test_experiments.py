"""Tests for the experiment-running utilities."""

import pytest

from repro.analysis.experiments import (
    ConstructionMeasurement,
    MeasurementSeries,
    estimate_crossover,
    geometric_sizes,
    run_construction_measurement,
)
from repro.network.errors import AlgorithmError


class TestGeometricSizes:
    def test_endpoints_included(self):
        sizes = geometric_sizes(16, 128, factor=2.0)
        assert sizes[0] == 16
        assert sizes[-1] == 128
        assert sizes == sorted(sizes)

    def test_small_range(self):
        assert geometric_sizes(10, 10) == [10]

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            geometric_sizes(10, 5)


class TestMeasurementSeries:
    def test_add_and_normalise(self):
        series = MeasurementSeries("kkt")
        series.add(64, 2016, 64 * 6 * 100)
        series.add(128, 8128, 128 * 7 * 100)
        normalised = series.normalised_by("n_log_n")
        assert len(normalised) == 2
        assert normalised[0] == pytest.approx(100, rel=0.01)

    def test_ratio_to(self):
        a = MeasurementSeries("a")
        b = MeasurementSeries("b")
        for n in (10, 20):
            a.add(n, n, 2 * n)
            b.add(n, n, n)
        assert a.ratio_to(b) == [2.0, 2.0]
        c = MeasurementSeries("c")
        with pytest.raises(AlgorithmError):
            a.ratio_to(c)


class TestConstructionMeasurement:
    def test_mst_measurement_fields(self):
        measurement = run_construction_measurement(24, kind="mst", density="dense", seed=3)
        assert measurement.n == 24
        assert measurement.m == 24 * 23 // 4
        assert measurement.kkt_messages > 0
        assert measurement.baseline_name == "ghs"
        assert measurement.kkt_over_m > 0
        assert measurement.kkt_over_bound("n_log2_n_over_loglog_n") > 0

    def test_st_measurement_uses_flooding(self):
        measurement = run_construction_measurement(24, kind="st", density="sparse", seed=3)
        assert measurement.baseline_name == "flooding"
        m = measurement.m
        assert m <= measurement.baseline_messages <= 2 * m

    def test_kind_validation(self):
        with pytest.raises(AlgorithmError):
            run_construction_measurement(16, kind="bogus")

    def test_density_validation(self):
        with pytest.raises(AlgorithmError):
            run_construction_measurement(16, density="ultra")


class TestCrossoverEstimate:
    def test_crossover_inside_range(self):
        a = MeasurementSeries("a")
        b = MeasurementSeries("b")
        for n, (va, vb) in zip((10, 20, 40), ((100, 50), (150, 140), (200, 500))):
            a.add(n, n, va)
            b.add(n, n, vb)
        assert estimate_crossover(a, b) == 40.0

    def test_crossover_extrapolated(self):
        a = MeasurementSeries("n_linear")
        b = MeasurementSeries("n_squared")
        for n in (10, 20, 40, 80):
            a.add(n, n, 1000.0 * n)      # crosses n^2 at n = 1000
            b.add(n, n, float(n * n))
        estimate = estimate_crossover(a, b)
        assert estimate is not None
        assert estimate == pytest.approx(1000.0, rel=0.05)

    def test_no_crossover(self):
        a = MeasurementSeries("fast_growth")
        b = MeasurementSeries("slow_growth")
        for n in (10, 20, 40):
            a.add(n, n, float(n * n))
            b.add(n, n, float(n))
        assert estimate_crossover(a, b) is None

    def test_validation(self):
        a = MeasurementSeries("a")
        b = MeasurementSeries("b")
        a.add(10, 10, 1.0)
        b.add(10, 10, 2.0)
        with pytest.raises(AlgorithmError):
            estimate_crossover(a, b)  # only one point
        a.add(20, 20, 1.0)
        b.add(30, 30, 2.0)
        with pytest.raises(AlgorithmError):
            estimate_crossover(a, b)  # different sizes
