"""Tests for ASCII experiment tables."""

import pytest

from repro.analysis.reporting import ExperimentTable, format_cell, format_table


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_thousands_separator(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_formats(self):
        assert format_cell(0.12345) == "0.123"
        assert format_cell(12.345) == "12.3"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(0.0) == "0"

    def test_string_passthrough(self):
        assert format_cell("KKT") == "KKT"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["n", "messages"],
            [[64, 1000], [128, 250000]],
            title="Example",
        )
        lines = text.splitlines()
        assert lines[0] == "Example"
        assert "n" in lines[2] and "messages" in lines[2]
        # all rows share the same width
        assert len({len(line) for line in lines[2:]}) == 1

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("E1", "demo", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_includes_id_and_notes(self):
        table = ExperimentTable("E7", "HP-TestOut error", ["n", "errors"])
        table.add_row(64, 0)
        table.add_note("bound: <= n^-c")
        text = table.render()
        assert "[E7]" in text
        assert "note: bound" in text
        assert "64" in text
