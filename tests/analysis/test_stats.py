"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import mean, median, percentile, stdev, summarize
from repro.network.errors import AlgorithmError


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5
        with pytest.raises(AlgorithmError):
            mean([])

    def test_stdev(self):
        assert stdev([5]) == 0.0
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_percentile(self):
        values = list(range(1, 11))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 10
        assert percentile(values, 50) == 5.5

    def test_percentile_validation(self):
        with pytest.raises(AlgorithmError):
            percentile([], 50)
        with pytest.raises(AlgorithmError):
            percentile([1], 120)

    def test_percentile_single_value(self):
        assert percentile([7], 90) == 7


class TestSummary:
    def test_summarize_fields(self):
        summary = summarize([1, 2, 3, 4, 100])
        assert summary.count == 5
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.median == 3
        assert summary.mean == 22
        assert summary.p90 >= 4

    def test_summarize_empty_rejected(self):
        with pytest.raises(AlgorithmError):
            summarize([])

    def test_confidence_halfwidth(self):
        summary = summarize([10.0] * 20)
        assert summary.confidence_halfwidth() == 0.0
        varied = summarize(list(range(20)))
        assert varied.confidence_halfwidth() > 0
