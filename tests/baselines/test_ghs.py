"""Tests for the controlled-GHS baseline."""

import pytest

from repro.baselines.ghs import GHSBuildMST, ghs_build_mst
from repro.baselines.sequential import kruskal_mst, mst_edge_keys
from repro.generators import complete_graph, path_graph, random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.graph import Graph
from repro.verify import is_minimum_spanning_forest


class TestGHSCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_kruskal(self, seed):
        graph = random_connected_graph(25, 90, seed=seed)
        report = ghs_build_mst(graph)
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))

    def test_small_hand_graph(self, small_weighted_graph, small_mst_keys):
        report = ghs_build_mst(small_weighted_graph)
        assert report.marked_edges == small_mst_keys

    def test_path_graph(self):
        graph = path_graph(15, seed=1)
        report = ghs_build_mst(graph)
        assert len(report.marked_edges) == 14

    def test_complete_graph(self):
        graph = complete_graph(12, seed=2)
        report = ghs_build_mst(graph)
        assert is_minimum_spanning_forest(report.forest)

    def test_disconnected_graph(self):
        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(1, 3, 3)
        graph.add_edge(8, 9, 4)
        graph.add_node(12)
        report = ghs_build_mst(graph)
        assert is_minimum_spanning_forest(report.forest)

    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            GHSBuildMST(Graph())

    def test_deterministic(self):
        graph_a = random_connected_graph(20, 60, seed=7)
        graph_b = random_connected_graph(20, 60, seed=7)
        assert ghs_build_mst(graph_a).messages == ghs_build_mst(graph_b).messages


class TestGHSCost:
    def test_messages_grow_with_density(self):
        """GHS pays for every edge at least once: cost is Ω(m)."""
        sparse = random_connected_graph(40, 60, seed=3)
        dense = random_connected_graph(40, 400, seed=3)
        sparse_messages = ghs_build_mst(sparse).messages
        dense_messages = ghs_build_mst(dense).messages
        assert dense_messages > sparse_messages
        # Every non-MST edge is rejected once from at least one side: at
        # least one TEST/REJECT pair, i.e. >= 2 messages per edge beyond the
        # spanning tree.
        assert dense_messages >= 2 * (dense.num_edges - dense.num_nodes + 1)

    def test_phases_logarithmic(self):
        graph = random_connected_graph(64, 200, seed=4)
        report = ghs_build_mst(graph)
        assert report.phases <= 4 * 7 + 2

    def test_phase_records_consistent(self):
        graph = random_connected_graph(20, 60, seed=5)
        report = ghs_build_mst(graph)
        assert sum(r.messages for r in report.phase_records) == report.messages
