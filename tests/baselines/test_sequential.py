"""Tests for the sequential MST algorithms and union-find."""

import pytest

from repro.baselines.sequential import (
    UnionFind,
    boruvka_mst,
    kruskal_mst,
    mst_edge_keys,
    mst_weight,
    prim_mst,
)
from repro.generators import complete_graph, grid_graph, random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.graph import Graph


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind([1, 2, 3, 4])
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)
        assert not uf.union(2, 1)
        assert uf.num_sets() == 3

    def test_transitive_connectivity(self):
        uf = UnionFind(range(1, 6))
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(3, 5)
        assert uf.num_sets() == 2

    def test_add_after_construction(self):
        uf = UnionFind()
        uf.add(7)
        uf.add(8)
        assert uf.union(7, 8)

    def test_unknown_element_rejected(self):
        uf = UnionFind([1])
        with pytest.raises(AlgorithmError):
            uf.find(99)

    def test_path_compression_keeps_answers_stable(self):
        uf = UnionFind(range(100))
        for i in range(99):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))
        assert uf.num_sets() == 1


class TestSequentialMST:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_three_algorithms_agree(self, seed):
        graph = random_connected_graph(30, 120, seed=seed)
        kruskal = mst_edge_keys(kruskal_mst(graph))
        prim = mst_edge_keys(prim_mst(graph))
        boruvka = mst_edge_keys(boruvka_mst(graph))
        assert kruskal == prim == boruvka

    def test_known_small_mst(self, small_weighted_graph, small_mst_keys):
        assert mst_edge_keys(kruskal_mst(small_weighted_graph)) == small_mst_keys
        assert mst_edge_keys(prim_mst(small_weighted_graph)) == small_mst_keys
        assert mst_edge_keys(boruvka_mst(small_weighted_graph)) == small_mst_keys

    def test_tree_count_on_connected_graph(self):
        graph = random_connected_graph(25, 80, seed=5)
        assert len(kruskal_mst(graph)) == 24

    def test_disconnected_graph_gives_forest(self):
        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 3)
        graph.add_edge(2, 3, 1)
        graph.add_edge(1, 3, 2)
        graph.add_edge(10, 11, 5)
        graph.add_node(20)
        for algorithm in (kruskal_mst, prim_mst, boruvka_mst):
            edges = algorithm(graph)
            assert len(edges) == 3
        assert mst_weight(kruskal_mst(graph)) == 1 + 2 + 5

    def test_complete_graph_mst_weight(self):
        graph = complete_graph(10, seed=2)
        weights = [kruskal_mst(graph), prim_mst(graph), boruvka_mst(graph)]
        assert len({mst_weight(w) for w in weights}) == 1

    def test_grid_graph(self):
        graph = grid_graph(5, 5, seed=1)
        assert mst_edge_keys(kruskal_mst(graph)) == mst_edge_keys(prim_mst(graph))

    def test_duplicate_weights_resolved_by_edge_number(self):
        graph = Graph(id_bits=5)
        for u, v in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 1)]:
            graph.add_edge(u, v, 5)
        kruskal = mst_edge_keys(kruskal_mst(graph))
        prim = mst_edge_keys(prim_mst(graph))
        boruvka = mst_edge_keys(boruvka_mst(graph))
        assert kruskal == prim == boruvka
        assert len(kruskal) == 3

    def test_empty_and_single_node(self):
        graph = Graph()
        assert kruskal_mst(graph) == []
        graph.add_node(1)
        assert kruskal_mst(graph) == []
        assert prim_mst(graph) == []
        assert boruvka_mst(graph) == []

    def test_mst_weight_helper(self, small_weighted_graph):
        assert mst_weight(kruskal_mst(small_weighted_graph)) == 1 + 2 + 3 + 4 + 5
