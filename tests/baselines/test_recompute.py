"""Tests for the recompute-from-scratch dynamic baseline."""

import pytest

from repro.baselines.recompute_repair import RecomputeMaintainer
from repro.baselines.sequential import kruskal_mst, mst_edge_keys
from repro.generators import random_connected_graph
from repro.network.errors import AlgorithmError
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


class TestRecomputeMST:
    def test_initial_tree_is_mst(self):
        graph = random_connected_graph(16, 50, seed=0)
        maintainer = RecomputeMaintainer(graph, mode="mst")
        assert is_minimum_spanning_forest(maintainer.forest)

    def test_delete_and_insert_keep_mst(self):
        graph = random_connected_graph(16, 50, seed=1)
        maintainer = RecomputeMaintainer(graph, mode="mst")
        edge = sorted(maintainer.forest.marked_edges)[0]
        weight = graph.get_edge(*edge).weight
        cost_delete = maintainer.delete_edge(*edge)
        assert is_minimum_spanning_forest(maintainer.forest)
        cost_insert = maintainer.insert_edge(edge[0], edge[1], weight)
        assert is_minimum_spanning_forest(maintainer.forest)
        assert cost_delete.messages > 0
        assert cost_insert.messages > 0

    def test_per_update_cost_is_order_m(self):
        graph = random_connected_graph(24, 200, seed=2)
        maintainer = RecomputeMaintainer(graph, mode="mst")
        edge = sorted(maintainer.forest.marked_edges)[0]
        cost = maintainer.delete_edge(*edge)
        # rebuilding pays for (almost) every edge again
        assert cost.messages >= graph.num_edges

    def test_weight_change_triggers_rebuild(self):
        graph = random_connected_graph(16, 60, seed=3)
        maintainer = RecomputeMaintainer(graph, mode="mst")
        edge = sorted(maintainer.forest.marked_edges)[0]
        cost = maintainer.change_weight(edge[0], edge[1], 10 ** 6)
        assert cost.messages > 0
        assert is_minimum_spanning_forest(maintainer.forest)
        assert maintainer.forest.marked_edges == mst_edge_keys(kruskal_mst(graph))


class TestRecomputeST:
    def test_initial_tree_spans(self):
        graph = random_connected_graph(16, 50, seed=4)
        maintainer = RecomputeMaintainer(graph, mode="st")
        assert is_spanning_forest(maintainer.forest)

    def test_delete_keeps_spanning(self):
        graph = random_connected_graph(16, 60, seed=5)
        maintainer = RecomputeMaintainer(graph, mode="st")
        edge = sorted(maintainer.forest.marked_edges)[0]
        maintainer.delete_edge(*edge)
        assert is_spanning_forest(maintainer.forest)

    def test_disconnecting_delete_still_spanning_forest(self):
        from repro.network.graph import Graph

        graph = Graph(id_bits=5)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 1)
        maintainer = RecomputeMaintainer(graph, mode="st")
        maintainer.delete_edge(2, 3)
        assert is_spanning_forest(maintainer.forest)

    def test_weight_change_is_free_for_st(self):
        graph = random_connected_graph(16, 50, seed=6)
        maintainer = RecomputeMaintainer(graph, mode="st")
        edge = sorted(maintainer.forest.marked_edges)[0]
        cost = maintainer.change_weight(edge[0], edge[1], 999)
        assert cost.messages == 0

    def test_mode_validated(self):
        graph = random_connected_graph(8, 12, seed=7)
        with pytest.raises(AlgorithmError):
            RecomputeMaintainer(graph, mode="bogus")
