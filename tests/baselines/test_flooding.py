"""Tests for the flooding broadcast-tree baseline."""

import pytest

from repro.baselines.flooding_st import flooding_spanning_tree
from repro.generators import complete_graph, grid_graph, path_graph, random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.graph import Graph
from repro.network.scheduler import LifoScheduler, RandomScheduler
from repro.verify import is_spanning_forest


class TestFloodingCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spanning_tree_on_connected_graph(self, seed):
        graph = random_connected_graph(30, 100, seed=seed)
        forest, acct = flooding_spanning_tree(graph)
        assert is_spanning_forest(forest)
        assert forest.num_marked == 29

    def test_specific_source(self):
        graph = grid_graph(4, 4, seed=1)
        forest, _ = flooding_spanning_tree(graph, source=7)
        assert is_spanning_forest(forest)

    def test_unknown_source_rejected(self):
        graph = path_graph(5)
        with pytest.raises(AlgorithmError):
            flooding_spanning_tree(graph, source=99)

    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            flooding_spanning_tree(Graph())

    def test_disconnected_graph_reaches_only_source_component(self):
        graph = Graph(id_bits=5)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 1)
        graph.add_edge(8, 9, 1)
        forest, _ = flooding_spanning_tree(graph, source=1)
        assert forest.component_of(1) == {1, 2, 3}
        assert forest.component_of(8) == {8}

    @pytest.mark.parametrize(
        "scheduler_factory", [lambda: RandomScheduler(seed=4), LifoScheduler]
    )
    def test_async_adversarial_schedules_still_spanning(self, scheduler_factory):
        graph = random_connected_graph(25, 90, seed=5)
        forest, _ = flooding_spanning_tree(
            graph, engine="async", scheduler=scheduler_factory()
        )
        assert is_spanning_forest(forest)

    def test_sync_flooding_gives_bfs_tree(self):
        """Under the synchronous engine flooding yields shortest-path parents."""
        graph = grid_graph(3, 5, seed=2)
        source = 1
        forest, _ = flooding_spanning_tree(graph, source=source, engine="sync")
        # BFS depths in the grid from node 1 (corner) equal Manhattan distance.
        from collections import deque

        depth = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for nbr in graph.neighbors(node):
                if nbr not in depth:
                    depth[nbr] = depth[node] + 1
                    queue.append(nbr)
        tree_depth = {source: 0}
        # walk the marked tree from the source
        stack = [source]
        while stack:
            node = stack.pop()
            for nbr in forest.marked_neighbors(node):
                if nbr not in tree_depth:
                    tree_depth[nbr] = tree_depth[node] + 1
                    stack.append(nbr)
        assert tree_depth == depth


class TestFloodingCost:
    def test_cost_is_theta_m(self):
        graph = complete_graph(16, seed=3)
        _, acct = flooding_spanning_tree(graph)
        m = graph.num_edges
        # every edge carries at least 1 and at most 2 messages
        assert m <= acct.messages <= 2 * m

    def test_cost_grows_linearly_with_edges(self):
        sparse = random_connected_graph(40, 50, seed=6)
        dense = random_connected_graph(40, 500, seed=6)
        _, sparse_acct = flooding_spanning_tree(sparse)
        _, dense_acct = flooding_spanning_tree(dense)
        assert dense_acct.messages > 5 * sparse_acct.messages
