"""Tests for the top-level public API surface.

A downstream user should be able to do everything through ``repro``'s
top-level names (plus the documented subpackages); these tests pin that
surface so accidental removals are caught.
"""

import pytest

import repro
from repro import build_mst, build_st
from repro.generators import random_connected_graph
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


class TestExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "name",
        [
            "AlgorithmConfig",
            "BuildMST",
            "BuildST",
            "CutTester",
            "Edge",
            "FindAny",
            "FindMin",
            "FindResult",
            "Graph",
            "MessageAccountant",
            "RepairReport",
            "SpanningForest",
            "SuperpolyFindMin",
            "TreeRepairer",
            "build_mst",
            "build_st",
            # unified runner API
            "AlgorithmRunner",
            "ExperimentEngine",
            "ExperimentJob",
            "GraphSpec",
            "RunResult",
            "get_runner",
            "list_algorithms",
            "register",
            "run",
            # scenario API
            "ExperimentSpec",
            "ScheduleSpec",
            "WorkloadSpec",
            "get_workload",
            "list_workloads",
            "register_workload",
            "scenario_grid",
            # delivery schedulers
            "Scheduler",
            "FifoScheduler",
            "LifoScheduler",
            "RandomScheduler",
            "EdgeDelayScheduler",
            "make_scheduler",
        ],
    )
    def test_top_level_names_exist(self, name):
        assert name in repro.__all__
        assert hasattr(repro, name)

    @pytest.mark.parametrize(
        "name",
        ["FifoScheduler", "LifoScheduler", "RandomScheduler", "EdgeDelayScheduler"],
    )
    def test_schedulers_exported_from_api_and_network(self, name):
        from repro import api, network

        assert name in api.__all__ and hasattr(api, name)
        assert name in network.__all__ and hasattr(network, name)
        assert getattr(repro, name) is getattr(network, name)

    def test_scheduler_instances_satisfy_the_interface(self):
        for name in ("fifo", "lifo", "random", "edge-delay"):
            scheduler = repro.make_scheduler(name)
            assert isinstance(scheduler, repro.Scheduler)
            assert scheduler.empty()

    @pytest.mark.parametrize(
        "subpackage",
        ["analysis", "api", "baselines", "core", "dynamic", "generators", "network", "verify"],
    )
    def test_subpackages_importable(self, subpackage):
        module = getattr(repro, subpackage)
        assert module.__name__ == f"repro.{subpackage}"
        assert module.__all__


class TestConvenienceWrappers:
    def test_build_mst_wrapper(self):
        graph = random_connected_graph(20, 60, seed=21)
        report = build_mst(graph, seed=21)
        assert is_minimum_spanning_forest(report.forest)
        assert report.messages > 0

    def test_build_st_wrapper(self):
        graph = random_connected_graph(20, 60, seed=22)
        report = build_st(graph, seed=22)
        assert is_spanning_forest(report.forest)

    def test_wrappers_accept_phase_policy(self):
        graph = random_connected_graph(12, 24, seed=23)
        report = build_mst(graph, seed=23, phase_policy="paper")
        assert is_minimum_spanning_forest(report.forest)

    def test_wrappers_reject_bad_policy(self):
        from repro.network.errors import AlgorithmError

        graph = random_connected_graph(8, 12, seed=24)
        with pytest.raises(AlgorithmError):
            build_mst(graph, phase_policy="whenever")


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj_name",
        [
            "AlgorithmConfig",
            "BuildMST",
            "BuildST",
            "FindAny",
            "FindMin",
            "Graph",
            "SpanningForest",
            "TreeRepairer",
            "build_mst",
            "build_st",
            "GraphSpec",
            "RunResult",
            "ExperimentEngine",
            "run",
            "ExperimentSpec",
            "ScheduleSpec",
            "WorkloadSpec",
            "Scheduler",
            "make_scheduler",
            "register_workload",
        ],
    )
    def test_public_objects_are_documented(self, obj_name):
        obj = getattr(repro, obj_name)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20
