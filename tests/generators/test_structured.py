"""Tests for the structured graph families."""

import pytest

from repro.generators.structured import (
    circulant_expander,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.network.errors import GraphError


class TestPathCycleStar:
    def test_path_shape(self):
        graph = path_graph(6)
        assert graph.num_nodes == 6
        assert graph.num_edges == 5
        assert graph.degree(1) == 1 and graph.degree(3) == 2

    def test_cycle_shape(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert all(graph.degree(v) == 2 for v in graph.nodes())

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_shape(self):
        graph = star_graph(7)
        assert graph.degree(1) == 6
        assert all(graph.degree(v) == 1 for v in range(2, 8))

    def test_star_minimum_size(self):
        with pytest.raises(GraphError):
            star_graph(1)


class TestCompleteAndGrid:
    def test_complete_edge_count(self):
        graph = complete_graph(9)
        assert graph.num_edges == 36
        assert all(graph.degree(v) == 8 for v in graph.nodes())

    def test_grid_shape(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4
        # corner has degree 2, interior nodes degree up to 4
        assert graph.degree(1) == 2

    def test_grid_validation(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_grid_connected(self):
        assert grid_graph(4, 7).is_connected()


class TestHypercubeAndCirculant:
    def test_hypercube_shape(self):
        graph = hypercube_graph(4)
        assert graph.num_nodes == 16
        assert graph.num_edges == 4 * 8
        assert all(graph.degree(v) == 4 for v in graph.nodes())
        assert graph.is_connected()

    def test_hypercube_validation(self):
        with pytest.raises(GraphError):
            hypercube_graph(0)

    def test_circulant_shape(self):
        graph = circulant_expander(20, offsets=[1, 3])
        assert graph.num_nodes == 20
        assert graph.is_connected()
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_circulant_default_offsets(self):
        graph = circulant_expander(30)
        assert graph.is_connected()

    def test_weights_distinct_by_default(self):
        graph = complete_graph(8, seed=1)
        weights = [e.weight for e in graph.edges()]
        assert len(set(weights)) == len(weights)
