"""Tests for the weight-assignment schemes."""

from repro.generators.structured import complete_graph
from repro.generators.weights import (
    assign_adversarial_weights,
    assign_permutation_weights,
    assign_uniform_weights,
)


class TestUniformWeights:
    def test_within_bounds(self):
        graph = complete_graph(10, seed=1)
        assign_uniform_weights(graph, max_weight=7, seed=2)
        assert all(1 <= e.weight <= 7 for e in graph.edges())

    def test_seeded(self):
        a = complete_graph(8, seed=1)
        b = complete_graph(8, seed=1)
        assign_uniform_weights(a, 100, seed=5)
        assign_uniform_weights(b, 100, seed=5)
        assert [e.weight for e in a.edges()] == [e.weight for e in b.edges()]


class TestPermutationWeights:
    def test_distinct_and_complete(self):
        graph = complete_graph(9, seed=1)
        assign_permutation_weights(graph, seed=3)
        weights = sorted(e.weight for e in graph.edges())
        assert weights == list(range(1, graph.num_edges + 1))


class TestAdversarialWeights:
    def test_wide_spread(self):
        graph = complete_graph(10, seed=1)
        assign_adversarial_weights(graph, spread_bits=30, seed=4)
        weights = [e.weight for e in graph.edges()]
        assert max(weights) > 2 ** 25
        assert min(weights) >= 1

    def test_preserves_edge_set(self):
        graph = complete_graph(7, seed=2)
        before = {(e.u, e.v) for e in graph.edges()}
        assign_adversarial_weights(graph, seed=5)
        after = {(e.u, e.v) for e in graph.edges()}
        assert before == after
