"""Tests for the random graph generators."""

import pytest

from repro.generators.random_graphs import (
    gnm_random_graph,
    gnp_random_graph,
    id_bits_for,
    random_connected_graph,
    random_geometric_graph,
    random_spanning_tree_forest,
)
from repro.network.errors import GraphError
from repro.verify import check_spanning_forest


class TestIdBits:
    def test_fits_n(self):
        for n in [1, 2, 3, 15, 16, 17, 255, 256, 1000]:
            bits = id_bits_for(n)
            assert n < (1 << bits)
            assert bits >= 2


class TestGnp:
    def test_node_count_and_probability_extremes(self):
        empty = gnp_random_graph(10, 0.0, seed=1)
        full = gnp_random_graph(10, 1.0, seed=1)
        assert empty.num_nodes == 10 and empty.num_edges == 0
        assert full.num_edges == 45

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            gnp_random_graph(5, 1.5)

    def test_seed_reproducibility(self):
        a = gnp_random_graph(20, 0.3, seed=7)
        b = gnp_random_graph(20, 0.3, seed=7)
        assert {(e.u, e.v, e.weight) for e in a.edges()} == {
            (e.u, e.v, e.weight) for e in b.edges()
        }

    def test_weights_are_distinct_permutation(self):
        graph = gnp_random_graph(15, 0.5, seed=2)
        weights = [e.weight for e in graph.edges()]
        assert sorted(weights) == list(range(1, len(weights) + 1))


class TestGnm:
    def test_exact_edge_count(self):
        graph = gnm_random_graph(20, 37, seed=3)
        assert graph.num_nodes == 20
        assert graph.num_edges == 37

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            gnm_random_graph(5, 11)

    def test_max_weight_option(self):
        graph = gnm_random_graph(12, 30, seed=4, max_weight=5)
        assert all(1 <= e.weight <= 5 for e in graph.edges())


class TestRandomConnected:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_connected(self, seed):
        graph = random_connected_graph(30, 45, seed=seed)
        assert graph.is_connected()
        assert graph.num_edges == 45

    def test_minimum_edge_count_enforced(self):
        with pytest.raises(GraphError):
            random_connected_graph(10, 5)

    def test_tree_case(self):
        graph = random_connected_graph(12, 11, seed=5)
        assert graph.is_connected()
        assert graph.num_edges == 11

    def test_single_node(self):
        graph = random_connected_graph(1, 0, seed=0)
        assert graph.num_nodes == 1


class TestGeometric:
    def test_radius_extremes(self):
        sparse = random_geometric_graph(15, 0.01, seed=6)
        dense = random_geometric_graph(15, 1.5, seed=6)
        assert sparse.num_edges <= dense.num_edges
        assert dense.num_edges == 15 * 14 // 2


class TestRandomSpanningForest:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_spans_connected_graph(self, seed):
        graph = random_connected_graph(25, 60, seed=seed)
        forest = random_spanning_tree_forest(graph, seed=seed)
        check_spanning_forest(forest)
        assert forest.num_marked == 24

    def test_spans_each_component(self):
        from repro.network.graph import Graph

        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(10, 11, 3)
        graph.add_node(20)
        forest = random_spanning_tree_forest(graph, seed=2)
        check_spanning_forest(forest)
        assert forest.num_marked == 3

    def test_different_seeds_can_give_different_trees(self):
        graph = random_connected_graph(20, 80, seed=9)
        trees = {
            frozenset(random_spanning_tree_forest(graph, seed=s).marked_edges)
            for s in range(5)
        }
        assert len(trees) > 1
