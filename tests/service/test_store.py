"""Tests for the content-addressed result store."""

import json

import pytest

from repro.api import GraphSpec, run
from repro.api.canonical import canonical_json
from repro.network.errors import AlgorithmError
from repro.service.store import (
    ResultStore,
    canonical_result,
    canonical_result_json,
    request_key,
)


SPEC = {"nodes": 24, "density": "sparse", "seed": 7}


class TestRequestKey:
    def test_order_independent(self):
        forward = request_key("kkt-mst", SPEC, {"c": 1.0})
        backward = request_key(
            "kkt-mst", {"seed": 7, "density": "sparse", "nodes": 24}, {"c": 1.0}
        )
        assert forward == backward

    def test_golden_value(self):
        # Pinned: changing this orphans every persisted store on disk.  The
        # key hashes the spec's to_dict() rendering (what the server's
        # normalisation produces), not a hand-written subset.
        assert request_key("kkt-mst", GraphSpec(**SPEC).to_dict(), {}) == (
            "19c6d1c0e20b03f04617fe0a0825d5c618bbfeb0c91ff1727c5415ae91cf9775"
        )

    def test_options_default_to_empty(self):
        assert request_key("kkt-mst", SPEC) == request_key("kkt-mst", SPEC, {})

    def test_distinct_requests_distinct_keys(self):
        assert request_key("kkt-mst", SPEC) != request_key("ghs", SPEC)
        assert request_key("kkt-mst", SPEC) != request_key(
            "kkt-mst", SPEC, {"c": 2.0}
        )


class TestCanonicalResult:
    def test_pins_wall_time(self):
        result = run("kkt-mst", GraphSpec(**SPEC)).to_dict()
        pinned = canonical_result(result)
        assert pinned["wall_time_s"] == 0.0
        unchanged = {k: v for k, v in pinned.items() if k != "wall_time_s"}
        assert unchanged == {k: v for k, v in result.items() if k != "wall_time_s"}

    def test_two_runs_byte_identical(self):
        # The determinism the whole store is built on: same spec, same
        # canonical bytes — only wall time ever differed.
        first = run("kkt-mst", GraphSpec(**SPEC)).to_dict()
        second = run("kkt-mst", GraphSpec(**SPEC)).to_dict()
        assert canonical_result_json(first) == canonical_result_json(second)


class TestResultStore:
    def _record(self, store, key="ab12", wall=1.5):
        result = {"algorithm": "kkt-mst", "messages": 10, "wall_time_s": wall}
        return store.make_record(key, "kkt-mst", SPEC, result, {})

    def test_make_record_moves_wall_time_to_metadata(self):
        record = self._record(ResultStore(), wall=2.5)
        assert record["wall_time_s"] == 2.5
        assert record["result"]["wall_time_s"] == 0.0

    def test_memory_round_trip_and_counters(self):
        store = ResultStore()
        key = request_key("kkt-mst", SPEC)
        assert store.get(key) is None
        assert store.misses == 1 and store.hits == 0
        store.put(self._record(store, key=key))
        assert store.get(key)["result"]["messages"] == 10
        assert store.hits == 1 and store.puts == 1
        assert len(store) == 1

    def test_contains_is_hit_neutral(self):
        store = ResultStore()
        store.put(self._record(store, key="ab12"))
        assert store.contains("ab12") and not store.contains("cd34")
        assert store.hits == 0 and store.misses == 0

    def test_put_requires_key_and_result(self):
        with pytest.raises(AlgorithmError, match="'key' and 'result'"):
            ResultStore().put({"key": "ab12"})

    def test_stats_hit_rate(self):
        store = ResultStore()
        store.put(self._record(store, key="ab12"))
        store.get("ab12")
        store.get("ab12")
        store.get("ffff")
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == round(2 / 3, 4)
        assert stats["persistent"] is False


class TestPersistence:
    def test_record_survives_a_restart(self, tmp_path):
        first = ResultStore(str(tmp_path))
        record = first.make_record(
            "ab12", "kkt-mst", SPEC, {"messages": 10, "wall_time_s": 1.0}, {}
        )
        first.put(record)
        # A fresh store over the same directory serves the record lazily.
        second = ResultStore(str(tmp_path))
        assert len(second) == 1
        read = second.get("ab12")
        assert read == record and second.hits == 1

    def test_on_disk_form_is_canonical_json(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = store.make_record(
            "ab12", "kkt-mst", SPEC, {"messages": 10, "wall_time_s": 1.0}, {}
        )
        store.put(record)
        raw = (tmp_path / "ab12.json").read_text()
        assert raw == canonical_json(record) + "\n"
        assert json.loads(raw)["result"]["wall_time_s"] == 0.0

    def test_corrupt_record_raises(self, tmp_path):
        (tmp_path / "ab12.json").write_text("{not json")
        with pytest.raises(AlgorithmError, match="corrupt"):
            ResultStore(str(tmp_path)).get("ab12")

    def test_key_mismatch_raises(self, tmp_path):
        (tmp_path / "ab12.json").write_text('{"key": "cd34", "result": {}}')
        with pytest.raises(AlgorithmError, match="content address"):
            ResultStore(str(tmp_path)).get("ab12")

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(AlgorithmError, match="malformed store key"):
            store.get("../../etc/passwd")
