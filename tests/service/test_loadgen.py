"""Tests for the spec-trace load-test harness."""

import json

import pytest

from repro.network.errors import AlgorithmError
from repro.service import (
    InProcessServer,
    ServiceClient,
    ServiceConfig,
    load_spec_trace,
    record_spec_trace,
    run_load,
    spec_trace_requests,
)


class TestSpecTraceRequests:
    def test_mix_covers_algorithms_times_sizes(self):
        requests = spec_trace_requests(["kkt-mst", "ghs"], [16, 24], seed=5)
        assert len(requests) == 4
        assert {r["algorithm"] for r in requests} == {"kkt-mst", "ghs"}
        assert {r["spec"]["nodes"] for r in requests} == {16, 24}
        assert all(r["spec"]["seed"] == 5 for r in requests)

    def test_workload_axis_multiplies_the_mix(self):
        plain = spec_trace_requests(["kkt-repair"], [16], workloads=(None,))
        mixed = spec_trace_requests(
            ["kkt-repair"], [16], workloads=(None, "churn"), updates=4
        )
        assert len(mixed) == 2 * len(plain)
        churn = [r for r in mixed if "graph" in r["spec"]]
        assert churn and churn[0]["spec"]["workload"]["name"] == "churn"

    def test_trace_file_joins_as_trace_replay_workload(self):
        requests = spec_trace_requests(
            ["kkt-repair"], [16], trace="updates.jsonl"
        )
        replay = [
            r for r in requests
            if "graph" in r["spec"]
            and r["spec"]["workload"]["name"] == "trace-replay"
        ]
        assert replay
        assert replay[0]["spec"]["workload"]["params"]["path"] == "updates.jsonl"


class TestTraceFiles:
    def test_record_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        requests = spec_trace_requests(["kkt-mst"], [16, 24], seed=2)
        assert record_spec_trace(path, requests) == path
        loaded = load_spec_trace(path)
        assert loaded == [json.loads(json.dumps(r, sort_keys=True)) for r in requests]

    def test_refuses_empty_recording(self, tmp_path):
        with pytest.raises(AlgorithmError, match="empty spec trace"):
            record_spec_trace(str(tmp_path / "t.jsonl"), [])

    def test_missing_file(self, tmp_path):
        with pytest.raises(AlgorithmError, match="not found"):
            load_spec_trace(str(tmp_path / "nope.jsonl"))

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"algorithm": "kkt-mst", "spec": {}}\n{broken\n')
        with pytest.raises(AlgorithmError, match="line 2"):
            load_spec_trace(str(path))

    def test_non_request_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"spec": {}}\n')
        with pytest.raises(AlgorithmError, match="not a submit request"):
            load_spec_trace(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        with pytest.raises(AlgorithmError, match="is empty"):
            load_spec_trace(str(path))


class TestRunLoad:
    def test_cold_then_warm_rounds(self):
        requests = spec_trace_requests(["kkt-mst", "ghs"], [12, 16], seed=9)
        config = ServiceConfig(executor="inline", workers=1)
        lines = []
        with InProcessServer(config) as server:
            report = run_load(
                ServiceClient(port=server.port),
                requests,
                concurrency=2,
                rounds=2,
                progress=lines.append,
            )
        cold, warm = report["rounds"]
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == len(requests)  # second pass fully cached
        assert report["errors"] == 0
        assert report["warm_vs_cold_speedup"] is not None
        assert len(lines) == 2 and "round 0" in lines[0]

    def test_single_round_has_no_speedup(self):
        requests = spec_trace_requests(["kkt-mst"], [12], seed=9)
        with InProcessServer(ServiceConfig(executor="inline", workers=1)) as server:
            report = run_load(
                ServiceClient(port=server.port), requests, concurrency=1, rounds=1
            )
        assert report["warm_vs_cold_speedup"] is None

    def test_request_failures_counted_not_raised(self):
        requests = [
            {"algorithm": "bogus", "spec": {"nodes": 8, "seed": 1}},
            {"algorithm": "kkt-mst", "spec": {"nodes": 8, "seed": 1}},
        ]
        with InProcessServer(ServiceConfig(executor="inline", workers=1)) as server:
            report = run_load(
                ServiceClient(port=server.port), requests, concurrency=1, rounds=1
            )
        assert report["errors"] == 1  # the bad request, not an exception

    def test_parameter_validation(self):
        client = ServiceClient(port=1)
        with pytest.raises(AlgorithmError, match="concurrent"):
            run_load(client, [{}], concurrency=0)
        with pytest.raises(AlgorithmError, match="round"):
            run_load(client, [{}], rounds=0)
