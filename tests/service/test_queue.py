"""Tests for the async job queue: priorities, lifecycle, drain.

The queue knows nothing about execution, so these tests drive job
lifecycles by hand inside small ``asyncio.run`` harnesses (the suite does
not depend on an asyncio pytest plugin).
"""

import asyncio

import pytest

from repro.network.errors import AlgorithmError
from repro.service.queue import TERMINAL_STATES, Job, JobQueue, QueueClosed


def _job(job_id, priority=0, **fields):
    return Job(
        id=job_id, algorithm="kkt-mst", spec={"nodes": 8}, priority=priority, **fields
    )


class TestJobLifecycle:
    def test_initial_state_and_event(self):
        async def case():
            job = _job("j1")
            assert job.state == "pending" and not job.finished
            assert [event["state"] for event in job.events] == ["pending"]

        asyncio.run(case())

    def test_transitions_append_events(self):
        async def case():
            job = _job("j1")
            job.transition("queued", depth=1)
            job.transition("running", attempt=1)
            job.transition("done")
            assert job.finished
            assert [event["state"] for event in job.events] == [
                "pending", "queued", "running", "done",
            ]
            assert job.events[1]["depth"] == 1

        asyncio.run(case())

    def test_terminal_states_are_final(self):
        async def case():
            job = _job("j1")
            job.transition("failed", error="boom")
            for state in ("running", *TERMINAL_STATES):
                with pytest.raises(AlgorithmError, match="already terminal"):
                    job.transition(state)

        asyncio.run(case())

    def test_wait_blocks_until_terminal(self):
        async def case():
            job = _job("j1")
            with pytest.raises(asyncio.TimeoutError):
                await job.wait(timeout=0.01)
            job.transition("done")
            await job.wait(timeout=1)

        asyncio.run(case())

    def test_subscribe_replays_then_follows_then_ends(self):
        async def case():
            job = _job("j1")
            job.transition("queued")
            subscription = job.subscribe()  # late subscriber: history replays
            job.transition("running")
            job.transition("done")
            states = []
            while True:
                event = await subscription.get()
                if event is None:
                    break
                states.append(event["state"])
            assert states == ["pending", "queued", "running", "done"]

        asyncio.run(case())

    def test_subscribe_after_terminal_still_ends(self):
        async def case():
            job = _job("j1")
            job.transition("done")
            subscription = job.subscribe()
            seen = [await subscription.get() for _ in range(3)]
            assert [e["state"] for e in seen[:2]] == ["pending", "done"]
            assert seen[2] is None

        asyncio.run(case())


class TestJobQueue:
    def test_priority_order_fifo_within_class(self):
        async def case():
            queue = JobQueue()
            for job in (
                _job("low-a", priority=5),
                _job("high", priority=0),
                _job("low-b", priority=5),
                _job("mid", priority=2),
            ):
                queue.put(job)
            order = [(await queue.get()).id for _ in range(4)]
            assert order == ["high", "mid", "low-a", "low-b"]

        asyncio.run(case())

    def test_put_transitions_to_queued_and_counts(self):
        async def case():
            queue = JobQueue()
            job = _job("j1")
            queue.put(job)
            assert job.state == "queued"
            assert queue.depth == 1 and queue.submitted == 1
            assert queue.counts() == {"queued": 1}

        asyncio.run(case())

    def test_duplicate_id_rejected(self):
        async def case():
            queue = JobQueue()
            queue.put(_job("j1"))
            with pytest.raises(AlgorithmError, match="duplicate job id"):
                queue.put(_job("j1"))

        asyncio.run(case())

    def test_closed_queue_rejects_submissions(self):
        async def case():
            queue = JobQueue()
            queue.close()
            assert not queue.open
            with pytest.raises(QueueClosed, match="draining"):
                queue.put(_job("j1"))

        asyncio.run(case())

    def test_drain_waits_for_accepted_jobs(self):
        async def case():
            queue = JobQueue()
            job = _job("j1")
            queue.put(job)

            async def finish_later():
                await asyncio.sleep(0.02)
                job.transition("done")
                queue.job_finished(job)

            task = asyncio.get_running_loop().create_task(finish_later())
            await asyncio.wait_for(queue.drain(timeout=1), timeout=2)
            await task
            assert not queue.open and queue.depth == 0

        asyncio.run(case())

    def test_drain_of_empty_queue_is_immediate(self):
        async def case():
            await asyncio.wait_for(JobQueue().drain(), timeout=1)

        asyncio.run(case())

    def test_unknown_job_id(self):
        async def case():
            with pytest.raises(AlgorithmError, match="unknown job id"):
                JobQueue().job("nope")

        asyncio.run(case())
