"""End-to-end tests for the experiment server and HTTP API.

These drive a real :class:`InProcessServer` (background thread, real
sockets on an ephemeral port) through the real :class:`ServiceClient` —
the same path ``repro submit`` and the CI smoke job take.  The inline
executor keeps runs on the event loop so the tests are fast and
deterministic.
"""

import asyncio

import pytest

from repro.api import GraphSpec, run
from repro.api.canonical import canonical_json
from repro.network.errors import AlgorithmError
from repro.service import (
    ExperimentServer,
    InProcessServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    canonical_result_json,
    normalize_request,
)

SPEC = {"nodes": 20, "density": "sparse", "seed": 11}


@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(executor="inline", workers=1, backoff_s=0.01)
    with InProcessServer(config) as server:
        yield server, ServiceClient(port=server.port)


class TestNormalizeRequest:
    def test_unknown_fields_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown submit request fields"):
            normalize_request({"algorithm": "kkt-mst", "spec": SPEC, "nodes": 8})

    def test_missing_algorithm_and_spec(self):
        with pytest.raises(AlgorithmError, match="'algorithm'"):
            normalize_request({"spec": SPEC})
        with pytest.raises(AlgorithmError, match="'spec'"):
            normalize_request({"algorithm": "kkt-mst"})

    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(AlgorithmError, match="kkt-mst"):  # known names listed
            normalize_request({"algorithm": "bogus", "spec": SPEC})

    def test_seeded_spec_passes_through(self):
        _, spec_dict, _ = normalize_request({"algorithm": "kkt-mst", "spec": SPEC})
        assert spec_dict == GraphSpec(**SPEC).to_dict()

    def test_unseeded_spec_gets_content_derived_seed(self):
        request = {"algorithm": "kkt-mst", "spec": {"nodes": 20, "density": "sparse"}}
        _, first, _ = normalize_request(request)
        _, again, _ = normalize_request(request)
        assert first["seed"] is not None
        assert first == again  # same content, same seed — always
        _, other, _ = normalize_request(
            {"algorithm": "kkt-mst", "spec": {"nodes": 24, "density": "sparse"}}
        )
        assert other["seed"] != first["seed"]  # distinct content, distinct seed

    def test_scenario_spec_normalised(self):
        payload = {
            "algorithm": "kkt-repair",
            "spec": {
                "graph": {"nodes": 16, "density": "sparse"},
                "workload": {"name": "churn", "updates": 4},
            },
        }
        _, spec_dict, _ = normalize_request(payload)
        assert spec_dict["graph"]["seed"] is not None
        assert spec_dict["workload"]["name"] == "churn"


class TestSubmitAndCache:
    def test_cold_then_warm(self, service):
        _, client = service
        cold = client.submit_spec("kkt-mst", SPEC)
        assert cold["state"] == "done" and not cold["cached"]
        assert cold["result"]["checks"] == {"spanning": True, "minimum": True}
        warm = client.submit_spec("kkt-mst", SPEC)
        assert warm["cached"] and warm["job_id"] is None
        assert warm["result"] == cold["result"]

    def test_served_result_byte_identical_to_local_run(self, service):
        # The acceptance criterion: canonical JSON over HTTP == canonical
        # JSON of the same spec run locally through the run() facade.
        _, client = service
        entry = client.submit_spec("kkt-mst", SPEC)
        local = run("kkt-mst", GraphSpec(**SPEC))
        assert canonical_json(entry["result"]) == canonical_result_json(
            local.to_dict()
        )

    def test_batch_resubmission_all_cache_hits(self, service):
        _, client = service
        batch = [
            {"algorithm": name, "spec": {"nodes": n, "density": "sparse", "seed": 3}}
            for name in ("kkt-mst", "ghs")
            for n in (12, 16)
        ]
        first = client.submit(batch, wait=True)
        assert first["count"] == 4
        assert all(e["state"] == "done" for e in first["jobs"])
        second = client.submit(batch, wait=True)
        assert second["cache_hits"] == 4  # answered entirely from the store
        assert [e["result"] for e in second["jobs"]] == [
            e["result"] for e in first["jobs"]
        ]

    def test_deterministic_failure_reported_not_cached(self, service):
        _, client = service
        request = {
            "algorithm": "kkt-mst",
            "spec": SPEC,
            "options": {"phase_policy": "whenever"},
        }
        entry = client.submit([request], wait=True)["jobs"][0]
        assert entry["state"] == "failed"
        assert "phase_policy" in entry["error"]
        # A failure is never cached: resubmitting runs (and fails) again.
        again = client.submit([request], wait=True)["jobs"][0]
        assert not again["cached"] and again["state"] == "failed"

    def test_bad_requests_are_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit([{"algorithm": "bogus", "spec": SPEC}])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit([{"algorithm": "kkt-mst"}])
        assert excinfo.value.status == 400


class TestJobEndpoints:
    def test_status_result_stream(self, service):
        _, client = service
        spec = {"nodes": 14, "density": "sparse", "seed": 21}
        entry = client.submit_spec("kkt-mst", spec)
        job_id = entry["job_id"]
        status = client.status(job_id)
        assert status["state"] == "done" and status["attempts"] == 1
        assert [e["state"] for e in status["events"]][:2] == ["pending", "queued"]
        result = client.result(job_id)
        assert result["result"] == entry["result"]
        events = list(client.stream(job_id))
        assert [e["state"] for e in events] == [
            "pending", "queued", "running", "done",
        ]

    def test_unknown_job_is_404(self, service):
        _, client = service
        for method in (client.status, client.result):
            with pytest.raises(ServiceError) as excinfo:
                method("job-999999")
            assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestObservability:
    def test_healthz(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["store_entries"] >= 1

    def test_metrics_shape(self, service):
        _, client = service
        client.submit_spec("kkt-mst", SPEC)  # guaranteed warm by now
        metrics = client.metrics()
        assert metrics["requests_by_route"]["/submit"] >= 1
        assert metrics["responses_by_class"]["2xx"] >= 1
        assert metrics["store"]["hits"] >= 1
        assert 0.0 < metrics["store"]["hit_rate"] <= 1.0
        assert metrics["pool"]["completed"] >= 1
        assert metrics["queue"]["open"] is True
        submit_latency = metrics["latency_by_route"]["/submit"]
        assert submit_latency["count"] >= 1
        assert submit_latency["buckets"]["le_inf"] == submit_latency["count"]


class TestDedupAndDrain:
    """Direct (no-HTTP) server tests for timing-sensitive behaviour."""

    def test_inflight_dedup_folds_identical_submissions(self):
        async def case():
            server = ExperimentServer(ServiceConfig(executor="inline"))
            # The pool is never started, so the job stays queued and the
            # second identical submission must fold onto it.
            request = {"algorithm": "kkt-mst", "spec": SPEC}
            first = server.submit_one(request)
            second = server.submit_one(request)
            assert first["job_id"] == second["job_id"]
            assert second.get("deduplicated") is True

        asyncio.run(case())

    def test_draining_rejects_new_submissions(self):
        async def case():
            server = ExperimentServer(ServiceConfig(executor="inline"))
            server.queue.close()
            status, _ = 0, None
            with pytest.raises(Exception) as excinfo:
                await server._handle_submit(
                    {"algorithm": "kkt-mst", "spec": SPEC}
                )
            assert getattr(excinfo.value, "status", None) == 503

        asyncio.run(case())

    def test_graceful_shutdown_finishes_queued_jobs(self):
        # Shutdown mid-queue: every accepted job still reaches a terminal
        # state before the server stops (the drain contract).
        config = ServiceConfig(executor="inline", workers=1)
        with InProcessServer(config) as inprocess:
            client = ServiceClient(port=inprocess.port)
            entries = [
                client.submit_spec(
                    "kkt-mst",
                    {"nodes": 18, "density": "sparse", "seed": 100 + i},
                    wait=False,
                )
                for i in range(4)
            ]
            response = client.shutdown(drain=True)
            assert response["shutting_down"] is True
            inprocess._thread.join(timeout=30)
            assert not inprocess._thread.is_alive()
            server = inprocess.server
            jobs = [server.queue.job(e["job_id"]) for e in entries if e["job_id"]]
            assert jobs and all(job.state == "done" for job in jobs)
            assert len(server.store) >= len(jobs)
