"""Tests for the supervised worker pool and its retry policy."""

import asyncio
import time

import pytest

from repro.network.errors import AlgorithmError
from repro.service.queue import Job, JobQueue
from repro.service.store import ResultStore, request_key
from repro.service.worker import WorkerPool, execute_request, make_executor


def _ok_result(messages=10):
    """A minimal successful result payload (no ``extra.error``)."""
    return {"algorithm": "kkt-mst", "messages": messages, "wall_time_s": 0.5, "extra": {}}


def _job(job_id="j1", **fields):
    spec = {"nodes": 8, "density": "sparse", "seed": 1}
    fields.setdefault("key", request_key("kkt-mst", spec, {}))
    return Job(id=job_id, algorithm="kkt-mst", spec=spec, **fields)


async def _run_one(job, execute, executor="inline", workers=1):
    queue = JobQueue()
    store = ResultStore()
    pool = WorkerPool(queue, store, workers=workers, executor=executor, execute=execute)
    queue.put(job)
    pool.start()
    try:
        await asyncio.wait_for(job.wait(), timeout=10)
        await queue.drain(timeout=10)
    finally:
        await pool.stop()
    return pool, store


class TestSuccessPath:
    def test_result_stored_and_job_done(self):
        async def case():
            job = _job()
            pool, store = await _run_one(job, lambda payload: _ok_result())
            assert job.state == "done" and job.attempts == 1
            assert job.result["wall_time_s"] == 0.0  # canonical in job + store
            record = store.get(job.key)
            assert record["result"] == job.result
            assert record["wall_time_s"] == 0.5  # measured time kept as metadata
            assert pool.completed == 1 and pool.failed == 0 and pool.retried == 0

        asyncio.run(case())

    def test_execute_request_runs_the_real_engine(self):
        payload = ("kkt-mst", {"nodes": 12, "density": "sparse", "seed": 3}, {})
        result = execute_request(payload)
        assert result["checks"] == {"spanning": True, "minimum": True}

    def test_execute_request_records_runner_errors(self):
        payload = ("kkt-mst", {"nodes": 12, "seed": 3}, {"phase_policy": "whenever"})
        result = execute_request(payload)
        assert result["extra"]["error"]
        assert result["checks"] == {"completed": False}


class TestDeterministicFailure:
    def test_not_retried_not_cached(self):
        calls = []

        def failing(payload):
            calls.append(payload)
            return {"extra": {"error": "bad spec"}, "wall_time_s": 0.0}

        async def case():
            job = _job(max_retries=3)
            pool, store = await _run_one(job, failing)
            assert job.state == "failed" and job.error == "bad spec"
            assert len(calls) == 1  # a pure function's failure never retries
            assert pool.retried == 0 and pool.failed == 1
            assert not store.contains(job.key)  # crashes are not cached
            assert any(
                event.get("deterministic") for event in job.events
            )

        asyncio.run(case())


class TestInfrastructureFailure:
    def test_retries_with_backoff_then_succeeds(self):
        attempts = []

        def flaky(payload):
            attempts.append(time.monotonic())
            if len(attempts) < 3:
                raise OSError("executor hiccup")
            return _ok_result()

        async def case():
            job = _job(max_retries=3, backoff_s=0.01)
            pool, store = await _run_one(job, flaky)
            assert job.state == "done" and job.attempts == 3
            assert pool.retried == 2 and pool.completed == 1
            retry_events = [e for e in job.events if e["state"] == "retrying"]
            # Exponential backoff: 0.01 * 2**0, then 0.01 * 2**1.
            assert [e["backoff_s"] for e in retry_events] == [0.01, 0.02]
            assert store.contains(job.key)

        asyncio.run(case())

    def test_budget_exhausted_fails_with_last_error(self):
        def always_down(payload):
            raise OSError("still down")

        async def case():
            job = _job(max_retries=2, backoff_s=0.001)
            pool, _ = await _run_one(job, always_down)
            assert job.state == "failed" and job.attempts == 3
            assert "still down" in job.error
            assert pool.retried == 2 and pool.failed == 1

        asyncio.run(case())

    def test_attempt_timeout_is_an_infra_failure(self):
        def slow(payload):
            time.sleep(0.5)
            return _ok_result()

        async def case():
            job = _job(timeout_s=0.05, max_retries=0)
            pool, _ = await _run_one(job, slow, executor="thread")
            assert job.state == "failed"
            assert "timed out" in job.error
            assert pool.failed == 1

        asyncio.run(case())


class TestExecutors:
    def test_make_executor_kinds(self):
        assert make_executor("inline", 2) is None
        thread = make_executor("thread", 2)
        try:
            assert thread.submit(lambda: 41 + 1).result() == 42
        finally:
            thread.shutdown()
        with pytest.raises(AlgorithmError, match="unknown executor"):
            make_executor("fiber", 2)

    def test_pool_rejects_zero_workers(self):
        async def case():
            with pytest.raises(AlgorithmError, match="at least one worker"):
                WorkerPool(JobQueue(), ResultStore(), workers=0)

        asyncio.run(case())

    def test_many_jobs_across_workers(self):
        async def case():
            queue = JobQueue()
            store = ResultStore()
            pool = WorkerPool(
                queue, store, workers=3, executor="inline",
                execute=lambda payload: _ok_result(),
            )
            jobs = [_job(f"j{i}", key=f"{i:064x}") for i in range(8)]
            for job in jobs:
                queue.put(job)
            pool.start()
            try:
                await asyncio.wait_for(queue.drain(), timeout=10)
            finally:
                await pool.stop()
            assert all(job.state == "done" for job in jobs)
            assert pool.completed == 8

        asyncio.run(case())
