"""Tests for the service CLI verbs: serve, submit, loadgen."""

import json
import threading

import pytest

from repro.cli import _parse_server, build_parser, main
from repro.network.errors import AlgorithmError
from repro.service import InProcessServer, ServiceClient, ServiceConfig


class TestParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8765
        assert args.workers == 2 and args.executor == "thread"
        assert args.store is None and args.port_file is None
        assert args.job_timeout == 300.0 and args.max_retries == 2

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "kkt-mst"])
        assert args.server == "127.0.0.1:8765"
        assert not args.no_wait and not args.json

    def test_loadgen_record_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "record"])

    def test_parse_server(self):
        assert _parse_server("127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert _parse_server("http://localhost:9000") == ("localhost", 9000)
        assert _parse_server("http://localhost:9000/") == ("localhost", 9000)
        for bad in ("localhost", "host:port", ":8080"):
            with pytest.raises(AlgorithmError, match="malformed server address"):
                _parse_server(bad)


@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(executor="inline", workers=1)
    with InProcessServer(config) as server:
        yield server


class TestSubmitCommand:
    def test_submit_table_and_cache_hit(self, service, capsys):
        argv = [
            "submit", "kkt-mst", "--nodes", "18", "--density", "sparse",
            "--seed", "4", "--server", f"127.0.0.1:{service.port}",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hit |               no" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit |              yes" in second

    def test_submit_json_output(self, service, capsys):
        code = main([
            "submit", "kkt-mst", "--nodes", "14", "--seed", "6", "--json",
            "--server", f"127.0.0.1:{service.port}",
        ])
        assert code == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["state"] == "done"
        assert entry["result"]["checks"]["minimum"] is True

    def test_submit_scenario_flags(self, service, capsys):
        code = main([
            "submit", "kkt-repair", "--nodes", "16", "--density", "sparse",
            "--seed", "2", "--workload", "churn", "--updates", "4", "--json",
            "--server", f"127.0.0.1:{service.port}",
        ])
        assert code == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["state"] == "done"

    def test_submit_spec_file(self, service, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            json.dumps({"nodes": 12, "density": "sparse", "seed": 8})
        )
        code = main([
            "submit", "ghs", "--spec-file", str(spec_file), "--json",
            "--server", f"127.0.0.1:{service.port}",
        ])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"

    def test_submit_failure_exit_code(self, service, capsys):
        spec_file_error = main([
            "submit", "kkt-mst", "--spec-file", "/nonexistent.json",
            "--server", f"127.0.0.1:{service.port}",
        ])
        assert spec_file_error != 0


class TestLoadgenCommand:
    def test_record_then_run_in_process(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main([
            "loadgen", "record", "--out", trace,
            "--algorithms", "kkt-mst", "--sizes", "12", "16", "--seed", "3",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "requests |" in recorded
        code = main([
            "loadgen", "run", trace, "--concurrency", "2", "--rounds", "2",
            "--workers", "1", "--executor", "inline", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0
        assert report["rounds"][1]["cache_hits"] == 2
        assert report["warm_vs_cold_speedup"] is not None

    def test_run_against_running_server(self, service, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        main([
            "loadgen", "record", "--out", trace,
            "--algorithms", "ghs", "--sizes", "12", "--seed", "31",
        ])
        capsys.readouterr()
        code = main([
            "loadgen", "run", trace, "--rounds", "2", "--json",
            "--server", f"127.0.0.1:{service.port}",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0


class TestServeCommand:
    def test_serve_boots_and_drains(self, tmp_path, capsys):
        # The CI smoke-job path: ephemeral port + port-file, then a client
        # submits and asks for a drained shutdown.
        port_file = tmp_path / "port"
        exit_codes = []
        thread = threading.Thread(
            target=lambda: exit_codes.append(main([
                "serve", "--port", "0", "--port-file", str(port_file),
                "--workers", "1", "--executor", "inline",
            ])),
            daemon=True,
        )
        thread.start()
        for _ in range(100):
            if port_file.exists() and port_file.read_text().strip():
                break
            thread.join(timeout=0.05)
        port = int(port_file.read_text())
        client = ServiceClient(port=port)
        client.wait_until_healthy()
        entry = client.submit_spec(
            "kkt-mst", {"nodes": 12, "density": "sparse", "seed": 9}
        )
        assert entry["state"] == "done"
        client.shutdown(drain=True)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_codes == [0]
