"""Tests for the latency histograms and the metrics registry."""

from repro.service.metrics import DEFAULT_BUCKETS_MS, LatencyHistogram, Metrics


class TestLatencyHistogram:
    def test_cumulative_le_buckets(self):
        histogram = LatencyHistogram(buckets_ms=(10, 100, 1000))
        for seconds in (0.001, 0.005, 0.05, 0.5, 5.0):
            histogram.observe(seconds)
        payload = histogram.to_dict()
        assert payload["count"] == 5
        assert payload["buckets"] == {
            "le_10ms": 2, "le_100ms": 3, "le_1000ms": 4, "le_inf": 5,
        }
        assert payload["sum_ms"] == 5556.0
        assert payload["mean_ms"] == round(5556.0 / 5, 3)

    def test_boundary_lands_in_its_bucket(self):
        histogram = LatencyHistogram(buckets_ms=(10,))
        histogram.observe(0.010)  # exactly 10ms counts as <= 10ms
        assert histogram.to_dict()["buckets"]["le_10ms"] == 1

    def test_empty_histogram(self):
        payload = LatencyHistogram().to_dict()
        assert payload["count"] == 0 and payload["mean_ms"] == 0.0
        assert payload["buckets"]["le_inf"] == 0
        assert len(payload["buckets"]) == len(DEFAULT_BUCKETS_MS) + 1


class TestMetrics:
    def test_per_route_counters_and_classes(self):
        metrics = Metrics()
        metrics.observe_request("/submit", 200, 0.01)
        metrics.observe_request("/submit", 400, 0.002)
        metrics.observe_request("/healthz", 200, 0.001)
        payload = metrics.to_dict()
        assert payload["requests_total"] == 3
        assert payload["requests_by_route"] == {"/healthz": 1, "/submit": 2}
        assert payload["responses_by_class"] == {"2xx": 2, "4xx": 1}
        assert payload["latency_by_route"]["/submit"]["count"] == 2
        assert payload["uptime_s"] >= 0.0
