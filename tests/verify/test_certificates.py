"""Tests for certificate-based MST verification."""

import pytest

from repro.baselines.sequential import kruskal_mst
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.generators import random_connected_graph
from repro.network.errors import ForestError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.verify import is_minimum_spanning_forest
from repro.verify.certificates import (
    check_mst_certificates,
    has_valid_mst_certificates,
    tree_path,
    violating_non_tree_edges,
    violating_tree_edges,
)


class TestTreePath:
    def test_path_in_small_tree(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        assert tree_path(forest, 1, 4) == [1, 2, 3, 4]
        assert tree_path(forest, 4, 1) == [4, 3, 2, 1]
        assert tree_path(forest, 3, 3) == [3]

    def test_path_absent_across_trees(self):
        graph = Graph(id_bits=5)
        graph.add_edge(1, 2, 1)
        graph.add_edge(5, 6, 1)
        forest = SpanningForest(graph, marked=[(1, 2), (5, 6)])
        assert tree_path(forest, 1, 5) is None

    def test_unknown_node_rejected(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        with pytest.raises(ForestError):
            tree_path(forest, 1, 99)


class TestCertificates:
    def test_true_mst_has_no_violations(self, mst_forest):
        graph = random_connected_graph(20, 70, seed=3)
        forest = mst_forest(graph)
        assert violating_non_tree_edges(forest) == []
        assert violating_tree_edges(forest) == []
        check_mst_certificates(forest)
        assert has_valid_mst_certificates(forest)

    def test_swapped_edge_detected_by_both_certificates(self, small_weighted_graph):
        # Replace MST edge (1,2) by the heavier chord (1,3): still spanning,
        # but (1,2) now violates the cycle property and (1,3) the cut property.
        forest = SpanningForest(
            small_weighted_graph, marked=[(1, 3), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        cycle_violations = {(e.u, e.v) for e in violating_non_tree_edges(forest)}
        cut_violations = {(e.u, e.v) for e in violating_tree_edges(forest)}
        assert (1, 2) in cycle_violations
        assert (1, 3) in cut_violations
        assert not has_valid_mst_certificates(forest)
        with pytest.raises(ForestError):
            check_mst_certificates(forest)

    def test_certificates_require_spanning(self, small_weighted_graph):
        forest = SpanningForest(small_weighted_graph, marked=[(1, 2)])
        with pytest.raises(ForestError):
            check_mst_certificates(forest)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agrees_with_kruskal_comparison(self, seed, mst_forest):
        """Certificates and edge-set comparison accept/reject the same forests."""
        graph = random_connected_graph(16, 50, seed=seed)
        mst = mst_forest(graph)
        assert has_valid_mst_certificates(mst) == is_minimum_spanning_forest(mst)
        # Perturb: swap one tree edge for a heavier parallel path edge if possible.
        non_tree = [
            e for e in graph.edges() if (e.u, e.v) not in mst.marked_edges
        ]
        if non_tree:
            edge = non_tree[0]
            path = tree_path(mst, edge.u, edge.v)
            assert path is not None
            drop = (path[0], path[1]) if path[0] < path[1] else (path[1], path[0])
            mst.unmark(*drop)
            mst.mark(edge.u, edge.v)
            assert has_valid_mst_certificates(mst) == is_minimum_spanning_forest(mst)

    def test_distributed_construction_passes_certificates(self):
        graph = random_connected_graph(24, 90, seed=7)
        report = BuildMST(graph, config=AlgorithmConfig(n=24, seed=7)).run()
        check_mst_certificates(report.forest)

    def test_disconnected_graph_certificates(self, mst_forest):
        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 5)
        graph.add_edge(1, 3, 2)
        graph.add_edge(10, 11, 3)
        forest = mst_forest(graph)
        check_mst_certificates(forest)
