"""Tests for the spanning-forest / MST verifiers."""

import pytest

from repro.baselines.sequential import kruskal_mst
from repro.generators import random_connected_graph
from repro.network.errors import ForestError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.verify import (
    check_minimum_spanning_forest,
    check_properly_marked,
    check_spanning_forest,
    is_minimum_spanning_forest,
    is_spanning_forest,
    mst_difference,
)


class TestProperlyMarked:
    def test_ok_when_edges_exist(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        check_properly_marked(forest)

    def test_detects_dangling_mark(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        # Delete a marked edge from the graph behind the forest's back.
        key = sorted(forest.marked_edges)[0]
        small_weighted_graph.remove_edge(*key)
        with pytest.raises(ForestError):
            check_properly_marked(forest)


class TestSpanningForest:
    def test_accepts_spanning_tree(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        check_spanning_forest(forest)
        assert is_spanning_forest(forest)

    def test_rejects_disconnected_marking(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        forest.unmark(*sorted(forest.marked_edges)[0])
        assert not is_spanning_forest(forest)

    def test_rejects_cycle(self, triangle_graph):
        forest = SpanningForest(triangle_graph, marked=[(1, 2), (2, 3), (1, 3)])
        assert not is_spanning_forest(forest)

    def test_accepts_forest_of_disconnected_graph(self):
        graph = Graph(id_bits=5)
        graph.add_edge(1, 2, 1)
        graph.add_edge(5, 6, 2)
        graph.add_node(9)
        forest = SpanningForest(graph, marked=[(1, 2), (5, 6)])
        check_spanning_forest(forest)


class TestMinimumSpanningForest:
    def test_accepts_true_mst(self, mst_forest):
        graph = random_connected_graph(20, 60, seed=1)
        forest = mst_forest(graph)
        check_minimum_spanning_forest(forest)
        assert is_minimum_spanning_forest(forest)

    def test_rejects_spanning_but_not_minimum(self, small_weighted_graph):
        # Swap MST edge (1,2) for the heavier chord (1,3): still spanning.
        forest = SpanningForest(
            small_weighted_graph, marked=[(1, 3), (2, 3), (3, 4), (4, 5), (5, 6)]
        )
        assert is_spanning_forest(forest)
        assert not is_minimum_spanning_forest(forest)
        extra, missing = mst_difference(forest)
        assert extra == {(1, 3)}
        assert missing == {(1, 2)}

    def test_difference_empty_for_mst(self, small_weighted_graph, mst_forest):
        forest = mst_forest(small_weighted_graph)
        assert mst_difference(forest) == (set(), set())
