"""Tests for the impromptu TreeMaintainer over update streams."""

import pytest

from repro.core.build_mst import BuildMST
from repro.core.build_st import BuildST
from repro.core.config import AlgorithmConfig
from repro.dynamic.maintainer import TreeMaintainer
from repro.dynamic.updates import EdgeUpdate, UpdateStream
from repro.dynamic.workloads import random_churn, tree_edge_deletions, weight_perturbations
from repro.generators import random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.fragments import SpanningForest
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


def _mst_maintainer(n=16, m=48, seed=0):
    graph = random_connected_graph(n, m, seed=seed)
    report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
    return graph, report.forest, TreeMaintainer(graph, report.forest, mode="mst", seed=seed)


class TestMSTMaintainer:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_tree_edge_deletion_workload(self, seed):
        graph, forest, maintainer = _mst_maintainer(seed=seed)
        stream = tree_edge_deletions(graph, forest, count=4, seed=seed)
        outcomes = maintainer.apply_stream(stream)
        assert len(outcomes) == len(stream)
        assert is_minimum_spanning_forest(forest)

    def test_random_churn_workload(self):
        graph, forest, maintainer = _mst_maintainer(seed=2)
        stream = random_churn(graph, count=20, seed=2)
        maintainer.apply_stream(stream)
        assert is_minimum_spanning_forest(forest)

    def test_weight_perturbation_workload(self):
        graph, forest, maintainer = _mst_maintainer(seed=3)
        stream = weight_perturbations(graph, count=15, seed=3)
        maintainer.apply_stream(stream)
        assert is_minimum_spanning_forest(forest)

    def test_history_and_cost_helpers(self):
        graph, forest, maintainer = _mst_maintainer(seed=4)
        stream = tree_edge_deletions(graph, forest, count=3, seed=4)
        maintainer.apply_stream(stream)
        assert len(maintainer.history) == len(stream)
        assert maintainer.total_messages() == sum(maintainer.messages_per_update())
        assert all(messages >= 0 for messages in maintainer.messages_per_update())

    def test_single_update_report(self):
        graph, forest, maintainer = _mst_maintainer(seed=5)
        key = sorted(forest.marked_edges)[1]
        outcome = maintainer.apply(EdgeUpdate.delete(*key))
        assert outcome.update.key == key
        assert outcome.report.was_tree_edge
        assert is_minimum_spanning_forest(forest)

    def test_seed_reproducibility(self):
        costs = []
        for _ in range(2):
            graph, forest, maintainer = _mst_maintainer(seed=6)
            stream = tree_edge_deletions(graph, forest, count=4, seed=6)
            maintainer.apply_stream(stream)
            costs.append(maintainer.messages_per_update())
        assert costs[0] == costs[1]

    def test_forest_must_share_graph(self):
        graph_a = random_connected_graph(8, 14, seed=7)
        graph_b = random_connected_graph(8, 14, seed=7)
        forest_b = SpanningForest(graph_b)
        with pytest.raises(AlgorithmError):
            TreeMaintainer(graph_a, forest_b, mode="mst")

    def test_mode_validated(self):
        graph = random_connected_graph(8, 14, seed=8)
        with pytest.raises(AlgorithmError):
            TreeMaintainer(graph, SpanningForest(graph), mode="both")


class TestSTMaintainer:
    def test_churn_keeps_spanning(self):
        graph = random_connected_graph(16, 48, seed=9)
        report = BuildST(graph, config=AlgorithmConfig(n=16, seed=9)).run()
        maintainer = TreeMaintainer(graph, report.forest, mode="st", seed=9)
        stream = random_churn(graph, count=20, seed=9)
        maintainer.apply_stream(stream)
        assert is_spanning_forest(report.forest)

    def test_st_deletions_cheaper_than_mst_deletions(self):
        """Theorem 1.2: ST repair saves a log n / log log n factor."""
        n, m, count = 24, 72, 6
        graph_a = random_connected_graph(n, m, seed=10)
        mst_report = BuildMST(graph_a, config=AlgorithmConfig(n=n, seed=10)).run()
        mst_maintainer = TreeMaintainer(graph_a, mst_report.forest, mode="mst", seed=1)
        mst_stream = tree_edge_deletions(graph_a, mst_report.forest, count=count, seed=3)
        mst_maintainer.apply_stream(mst_stream)

        graph_b = random_connected_graph(n, m, seed=10)
        st_report = BuildST(graph_b, config=AlgorithmConfig(n=n, seed=10)).run()
        st_maintainer = TreeMaintainer(graph_b, st_report.forest, mode="st", seed=1)
        st_stream = tree_edge_deletions(graph_b, st_report.forest, count=count, seed=3)
        st_maintainer.apply_stream(st_stream)

        mst_delete_cost = sum(
            o.messages for o in mst_maintainer.history if o.update.kind.value == "delete"
        )
        st_delete_cost = sum(
            o.messages for o in st_maintainer.history if o.update.kind.value == "delete"
        )
        assert st_delete_cost < mst_delete_cost
