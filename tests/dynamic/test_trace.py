"""Tests for recording and replaying update traces."""

import pytest

from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic import TreeMaintainer, tree_edge_deletions
from repro.dynamic.trace import UpdateTrace
from repro.dynamic.updates import EdgeUpdate, UpdateStream
from repro.generators import random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.fragments import SpanningForest
from repro.verify import is_minimum_spanning_forest


def _setup(n=16, m=48, seed=3):
    graph = random_connected_graph(n, m, seed=seed)
    report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
    stream = tree_edge_deletions(graph, report.forest, count=3, seed=seed)
    return graph, report.forest, stream


class TestRecordAndRebuild:
    def test_roundtrip_of_initial_state(self):
        graph, forest, stream = _setup()
        trace = UpdateTrace.record(graph, forest, stream, mode="mst", seed=3)
        rebuilt_graph, rebuilt_forest = trace.rebuild_initial_state()
        assert rebuilt_graph.nodes() == graph.nodes()
        assert [(e.u, e.v, e.weight) for e in rebuilt_graph.edges()] == [
            (e.u, e.v, e.weight) for e in graph.edges()
        ]
        assert rebuilt_forest.marked_edges == forest.marked_edges
        assert len(trace) == len(stream)

    def test_stream_roundtrip(self):
        graph, forest, stream = _setup(seed=4)
        trace = UpdateTrace.record(graph, forest, stream)
        replayed = trace.stream()
        assert list(replayed) == list(stream)

    def test_costs_from_history(self):
        graph, forest, stream = _setup(seed=5)
        # Record the initial state before applying, then attach history after.
        pristine = UpdateTrace.record(graph, forest, stream, mode="mst", seed=5)
        maintainer = TreeMaintainer(graph, forest, mode="mst", seed=5)
        history = maintainer.apply_stream(stream)
        with_costs = UpdateTrace.record(
            *pristine.rebuild_initial_state(), stream, history, mode="mst", seed=5
        )
        assert with_costs.costs == [outcome.messages for outcome in history]
        assert with_costs.total_cost() == sum(with_costs.costs)

    def test_history_length_mismatch_rejected(self):
        graph, forest, stream = _setup(seed=6)
        with pytest.raises(AlgorithmError):
            UpdateTrace.record(graph, forest, stream, history=[])


class TestSerialisation:
    def test_json_roundtrip(self, tmp_path):
        graph, forest, stream = _setup(seed=7)
        trace = UpdateTrace.record(graph, forest, stream, mode="mst", seed=7)
        path = trace.save(tmp_path / "trace.json")
        loaded = UpdateTrace.load(path)
        assert loaded.id_bits == trace.id_bits
        assert loaded.edges == trace.edges
        assert loaded.marked_edges == trace.marked_edges
        assert list(loaded.stream()) == list(stream)
        assert loaded.mode == "mst"
        assert loaded.seed == 7

    def test_unknown_version_rejected(self):
        with pytest.raises(AlgorithmError):
            UpdateTrace.from_json('{"format_version": 99}')

    def test_unknown_update_kind_rejected(self):
        graph, forest, stream = _setup(seed=8)
        trace = UpdateTrace.record(graph, forest, stream)
        trace.updates[0] = {"kind": "explode", "u": 1, "v": 2, "weight": None}
        with pytest.raises(AlgorithmError):
            trace.stream()


class TestReplayFidelity:
    def test_replay_reproduces_costs_and_final_tree(self):
        n, m, seed = 16, 48, 9
        graph = random_connected_graph(n, m, seed=seed)
        report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
        stream = tree_edge_deletions(graph, report.forest, count=3, seed=seed)
        trace = UpdateTrace.record(graph, report.forest, stream, mode="mst", seed=seed)

        maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=seed)
        original_history = maintainer.apply_stream(stream)
        original_costs = [outcome.messages for outcome in original_history]
        original_tree = set(report.forest.marked_edges)

        replay_graph, replay_forest = trace.rebuild_initial_state()
        replay_maintainer = TreeMaintainer(
            replay_graph, replay_forest, mode=trace.mode, seed=trace.seed
        )
        replay_history = replay_maintainer.apply_stream(trace.stream())
        assert [outcome.messages for outcome in replay_history] == original_costs
        assert replay_forest.marked_edges == original_tree
        assert is_minimum_spanning_forest(replay_forest)
