"""Tests for edge-update events and streams."""

import pytest

from repro.dynamic.updates import EdgeUpdate, UpdateKind, UpdateStream
from repro.generators import random_connected_graph
from repro.network.errors import AlgorithmError


class TestEdgeUpdate:
    def test_constructors(self):
        insert = EdgeUpdate.insert(3, 1, weight=9)
        assert insert.kind is UpdateKind.INSERT
        assert insert.key == (1, 3)
        assert insert.weight == 9

        delete = EdgeUpdate.delete(4, 2)
        assert delete.kind is UpdateKind.DELETE
        assert delete.weight is None

        inc = EdgeUpdate.increase_weight(1, 2, 10)
        dec = EdgeUpdate.decrease_weight(1, 2, 1)
        assert inc.kind is UpdateKind.INCREASE_WEIGHT
        assert dec.kind is UpdateKind.DECREASE_WEIGHT

    def test_weight_required_for_weighted_kinds(self):
        with pytest.raises(AlgorithmError):
            EdgeUpdate(UpdateKind.INSERT, 1, 2)
        with pytest.raises(AlgorithmError):
            EdgeUpdate(UpdateKind.INCREASE_WEIGHT, 1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(AlgorithmError):
            EdgeUpdate.delete(3, 3)

    def test_updates_are_hashable_values(self):
        a = EdgeUpdate.delete(1, 2)
        b = EdgeUpdate.delete(1, 2)
        assert a == b
        assert hash(a) == hash(b)


class TestUpdateStream:
    def test_container_behaviour(self):
        stream = UpdateStream([EdgeUpdate.delete(1, 2)])
        stream.append(EdgeUpdate.insert(1, 2, 5))
        stream.extend([EdgeUpdate.delete(1, 2)])
        assert len(stream) == 3
        assert stream[0].kind is UpdateKind.DELETE
        assert [u.kind for u in stream] == [
            UpdateKind.DELETE,
            UpdateKind.INSERT,
            UpdateKind.DELETE,
        ]

    def test_validate_against_accepts_consistent_stream(self):
        graph = random_connected_graph(10, 20, seed=0)
        edge = graph.edges()[0]
        stream = UpdateStream(
            [
                EdgeUpdate.delete(edge.u, edge.v),
                EdgeUpdate.insert(edge.u, edge.v, edge.weight),
                EdgeUpdate.increase_weight(edge.u, edge.v, edge.weight + 5),
                EdgeUpdate.decrease_weight(edge.u, edge.v, edge.weight),
            ]
        )
        stream.validate_against(graph)

    def test_validate_detects_double_delete(self):
        graph = random_connected_graph(10, 20, seed=1)
        edge = graph.edges()[0]
        stream = UpdateStream(
            [EdgeUpdate.delete(edge.u, edge.v), EdgeUpdate.delete(edge.u, edge.v)]
        )
        with pytest.raises(AlgorithmError):
            stream.validate_against(graph)

    def test_validate_detects_duplicate_insert(self):
        graph = random_connected_graph(10, 20, seed=2)
        edge = graph.edges()[0]
        stream = UpdateStream([EdgeUpdate.insert(edge.u, edge.v, 1)])
        with pytest.raises(AlgorithmError):
            stream.validate_against(graph)

    def test_validate_detects_wrong_direction_weight_change(self):
        graph = random_connected_graph(10, 20, seed=3)
        edge = graph.edges()[0]
        stream = UpdateStream(
            [EdgeUpdate.increase_weight(edge.u, edge.v, 0)]
        )
        with pytest.raises(AlgorithmError):
            stream.validate_against(graph)

    def test_validate_does_not_mutate_graph(self):
        graph = random_connected_graph(10, 20, seed=4)
        edge = graph.edges()[0]
        stream = UpdateStream([EdgeUpdate.delete(edge.u, edge.v)])
        stream.validate_against(graph)
        assert graph.has_edge(edge.u, edge.v)
