"""Tests for the batched repair engine and the PR-10 bugfixes.

Covers the batched==sequential final-forest contract, the wave edge cases
(bridge delete+reinsert in one wave, a wave confined to one component,
singleton-wave counter parity), the falsy-zero weight regression, the
per-update RNG independence fix, and the forced-batching environment knob.
"""

import pytest

from repro.api import ExperimentSpec, GraphSpec, run
from repro.baselines.recompute_repair import RecomputeMaintainer
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic.maintainer import TreeMaintainer
from repro.dynamic.updates import EdgeUpdate
from repro.dynamic.workloads import (
    random_churn,
    tree_edge_deletions,
    weight_perturbations,
)
from repro.generators import random_connected_graph
from repro.network.graph import Graph, edge_key
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


def _mst_scenario(n=16, m=48, seed=0, config=None):
    graph = random_connected_graph(n, m, seed=seed)
    report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
    maintainer = TreeMaintainer(
        graph, report.forest, mode="mst", seed=None if config else seed, config=config
    )
    return graph, report.forest, maintainer


class TestBatchedEqualsSequential:
    """The batched contract: waves land on the sequential final forest."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deletion_waves_reach_the_sequential_forest(self, seed):
        g1, f1, seq = _mst_scenario(seed=seed)
        g2, f2, bat = _mst_scenario(seed=seed)
        seq.apply_stream(tree_edge_deletions(g1, f1, count=4, seed=seed))
        bat.apply_stream(tree_edge_deletions(g2, f2, count=4, seed=seed), batch_size=3)
        assert is_minimum_spanning_forest(f1)
        assert is_minimum_spanning_forest(f2)
        assert sorted(f1.marked_edges) == sorted(f2.marked_edges)

    @pytest.mark.parametrize("batch", [2, 3, 7])
    def test_churn_waves_reach_the_sequential_forest(self, batch):
        g1, f1, seq = _mst_scenario(seed=4)
        g2, f2, bat = _mst_scenario(seed=4)
        seq.apply_stream(random_churn(g1, count=12, seed=4))
        bat.apply_stream(random_churn(g2, count=12, seed=4), batch_size=batch)
        assert is_minimum_spanning_forest(f2)
        assert sorted(f1.marked_edges) == sorted(f2.marked_edges)

    def test_weight_perturbation_waves(self):
        g1, f1, seq = _mst_scenario(seed=5)
        g2, f2, bat = _mst_scenario(seed=5)
        seq.apply_stream(weight_perturbations(g1, count=10, seed=5))
        bat.apply_stream(weight_perturbations(g2, count=10, seed=5), batch_size=4)
        assert is_minimum_spanning_forest(f2)
        assert sorted(f1.marked_edges) == sorted(f2.marked_edges)

    def test_recompute_baseline_batch_matches_sequential(self):
        streams = [random_churn(random_connected_graph(12, 30, seed=6), count=8, seed=6)]
        for stream in streams:
            legs = []
            for batched in (False, True):
                graph = random_connected_graph(12, 30, seed=6)
                maintainer = RecomputeMaintainer(graph, mode="mst")
                events = list(stream)
                if batched:
                    maintainer.apply_batch(events[:4])
                    maintainer.apply_batch(events[4:])
                else:
                    for update in events:
                        kind = update.kind.value
                        if kind == "insert":
                            maintainer.insert_edge(update.u, update.v, update.effective_weight)
                        elif kind == "delete":
                            maintainer.delete_edge(update.u, update.v)
                        else:
                            maintainer.change_weight(update.u, update.v, update.effective_weight)
                legs.append(sorted(maintainer.forest.marked_edges))
            assert legs[0] == legs[1]


class TestWaveEdgeCases:
    def test_k1_waves_are_counter_identical_to_sequential(self):
        g1, f1, seq = _mst_scenario(seed=7)
        g2, f2, bat = _mst_scenario(seed=7)
        seq.apply_stream(tree_edge_deletions(g1, f1, count=4, seed=7))
        bat.apply_stream(tree_edge_deletions(g2, f2, count=4, seed=7), batch_size=1)
        assert seq.messages_per_update() == bat.messages_per_wave()
        assert seq.total_messages() == bat.total_messages()
        assert sorted(f1.marked_edges) == sorted(f2.marked_edges)

    def test_bridge_delete_and_reinsert_in_one_wave(self):
        # A path graph: every edge is a bridge.  Deleting one and
        # re-inserting it inside the same wave must end with the full
        # spanning tree back: the hole's search comes up verifiably empty
        # (bridge) because the deferred reinsert is invisible to it, then
        # the candidate joins the halves again at settle time.
        graph = Graph()
        for node in range(1, 5):
            graph.add_node(node)
        for u in range(1, 4):
            graph.add_edge(u, u + 1, u)
        from repro.network.fragments import SpanningForest

        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (3, 4)])
        maintainer = TreeMaintainer(graph, forest, mode="mst", seed=11)
        wave = [EdgeUpdate.delete(2, 3), EdgeUpdate.insert(2, 3, weight=2)]
        outcome = maintainer.apply_batch(wave)
        assert outcome.report.holes == 1
        assert outcome.report.bridges == 1
        assert outcome.report.joins == 1
        assert is_minimum_spanning_forest(forest)
        assert sorted(forest.marked_edges) == [(1, 2), (2, 3), (3, 4)]

    def test_wave_confined_to_one_component_opens_no_holes(self):
        # Deleting a non-tree edge and inserting a too-heavy edge never
        # breaks the tree: no holes, no replacement searches, tree as-is.
        graph = Graph()
        for node in range(1, 5):
            graph.add_node(node)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(3, 4, 3)
        graph.add_edge(1, 4, 9)  # non-tree
        from repro.network.fragments import SpanningForest

        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (3, 4)])
        maintainer = TreeMaintainer(graph, forest, mode="mst", seed=12)
        before = sorted(forest.marked_edges)
        outcome = maintainer.apply_batch(
            [EdgeUpdate.delete(1, 4), EdgeUpdate.insert(1, 3, weight=50)]
        )
        assert outcome.report.holes == 0
        assert outcome.report.replacements == 0
        assert sorted(forest.marked_edges) == before
        assert is_minimum_spanning_forest(forest)

    def test_insert_delete_pair_annihilates_for_free(self):
        # An edge inserted and deleted inside the same wave never reaches
        # the repair machinery at all: sequential pays a path query (plus a
        # possible FindMin if the insert swapped in) — the wave pays zero.
        g, f, maintainer = _mst_scenario(seed=13)
        u, v = TestWeightZeroRegression._missing_edge(g)
        before = sorted(f.marked_edges)
        wave = [EdgeUpdate.insert(u, v, weight=2), EdgeUpdate.delete(u, v)]
        outcome = maintainer.apply_batch(wave)
        assert outcome.report.skipped_candidates == 1
        assert outcome.report.holes == 0
        assert outcome.report.cost.messages == 0
        assert sorted(f.marked_edges) == before
        assert not g.has_edge(u, v)
        assert is_minimum_spanning_forest(f)

    def test_st_mode_waves_keep_a_spanning_forest(self):
        graph = random_connected_graph(14, 40, seed=14)
        from repro.core.build_st import BuildST

        report = BuildST(graph, config=AlgorithmConfig(n=14, seed=14)).run()
        maintainer = TreeMaintainer(graph, report.forest, mode="st", seed=14)
        maintainer.apply_stream(random_churn(graph, count=10, seed=14), batch_size=3)
        assert is_spanning_forest(report.forest)


class TestWeightZeroRegression:
    """``weight=0`` must survive every path that used ``update.weight or 1``."""

    def test_effective_weight_keeps_zero(self):
        assert EdgeUpdate.insert(0, 1, weight=0).effective_weight == 0
        assert EdgeUpdate.delete(0, 1).effective_weight == 1

    def test_sequential_insert_applies_zero(self):
        g, f, maintainer = _mst_scenario(seed=20)
        u, v = self._missing_edge(g)
        maintainer.apply(EdgeUpdate.insert(u, v, weight=0))
        assert g.get_edge(u, v).weight == 0
        # weight 0 beats every existing weight, so the edge must be in the MST
        assert f.is_marked(u, v)
        assert is_minimum_spanning_forest(f)

    def test_batched_insert_applies_zero(self):
        g, f, maintainer = _mst_scenario(seed=21)
        u, v = self._missing_edge(g)
        maintainer.apply_batch([EdgeUpdate.insert(u, v, weight=0)])
        assert g.get_edge(u, v).weight == 0
        assert f.is_marked(u, v)

    def test_recompute_batch_applies_zero(self):
        graph = random_connected_graph(10, 20, seed=22)
        maintainer = RecomputeMaintainer(graph, mode="mst")
        u, v = self._missing_edge(graph)
        maintainer.apply_batch([EdgeUpdate.insert(u, v, weight=0)])
        assert graph.get_edge(u, v).weight == 0
        assert maintainer.forest.is_marked(u, v)

    def test_validate_against_round_trips_zero(self):
        from repro.dynamic.updates import UpdateStream

        graph = random_connected_graph(8, 12, seed=23)
        u, v = self._missing_edge(graph)
        stream = UpdateStream([EdgeUpdate.insert(u, v, weight=0)])
        stream.validate_against(graph)  # must not raise

    @staticmethod
    def _missing_edge(graph):
        nodes = sorted(graph.nodes())
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if not graph.has_edge(u, v):
                    return edge_key(u, v)
        raise AssertionError("graph is complete")


class TestRNGIndependence:
    """An explicit shared config must not leak RNG state across maintainers."""

    def test_shared_config_object_is_never_consumed(self):
        config = AlgorithmConfig(n=16, seed=42)
        state_before = config.rng.getstate()
        forests = []
        messages = []
        for _ in range(2):
            g, f, maintainer = _mst_scenario(seed=0, config=config)
            maintainer.apply_stream(tree_edge_deletions(g, f, count=4, seed=0))
            forests.append(sorted(f.marked_edges))
            messages.append(maintainer.total_messages())
        assert config.rng.getstate() == state_before
        assert forests[0] == forests[1]
        assert messages[0] == messages[1]

    def test_updates_draw_independent_randomness(self):
        # Two maintainers over the same scenario, one explicit config and
        # one seed-derived, must both reproduce themselves exactly.
        runs = []
        for _ in range(2):
            g, f, maintainer = _mst_scenario(seed=30)
            maintainer.apply_stream(random_churn(g, count=8, seed=30))
            runs.append((sorted(f.marked_edges), maintainer.total_messages()))
        assert runs[0] == runs[1]


class TestForcedBatchingKnob:
    def test_env_forces_waves_and_explicit_zero_overrides(self, monkeypatch):
        spec = ExperimentSpec(graph=GraphSpec(nodes=16, density="sparse", seed=3))
        monkeypatch.setenv("REPRO_REPAIR_BATCH", "3")
        batched = run("kkt-repair", spec, updates=6)
        assert batched.ok
        assert batched.extra["repair_batch"] == 3
        assert "messages_per_wave_max" in batched.extra
        sequential = run("kkt-repair", spec, updates=6, repair_batch=0)
        assert sequential.ok
        assert "messages_per_update_max" in sequential.extra
        assert "repair_batch" not in sequential.extra

    def test_schedule_batch_size_reaches_the_runner(self):
        from repro.api import ScheduleSpec

        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=3),
            schedule=ScheduleSpec(scheduler="fifo", batch_size=2),
        )
        result = run("kkt-repair", spec, updates=6)
        assert result.ok
        assert result.extra["repair_batch"] == 2

    def test_batched_and_sequential_runners_agree_on_the_forest(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=20, density="sparse", seed=9))
        sequential = run("kkt-repair", spec, updates=8, record_state=True, repair_batch=0)
        batched = run("kkt-repair", spec, updates=8, record_state=True, repair_batch=3)
        assert sorted(map(tuple, sequential.extra["tree_edges"])) == sorted(
            map(tuple, batched.extra["tree_edges"])
        )
