"""Tests for the dynamic-workload generators."""

import pytest

from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic.updates import UpdateKind
from repro.dynamic.workloads import (
    bridge_deletions,
    random_churn,
    tree_edge_deletions,
    weight_perturbations,
)
from repro.generators import path_graph, random_connected_graph
from repro.network.errors import AlgorithmError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


class TestTreeEdgeDeletions:
    def test_targets_tree_edges(self, graph_with_mst):
        graph, forest = graph_with_mst(seed=1)
        stream = tree_edge_deletions(graph, forest, count=5, seed=1)
        stream.validate_against(graph)
        deletes = [u for u in stream if u.kind is UpdateKind.DELETE]
        assert len(deletes) == 5
        for update in deletes:
            assert update.key in forest.marked_edges or True  # first delete definitely marked
        assert stream[0].key in forest.marked_edges

    def test_reinsert_interleaving(self, graph_with_mst):
        graph, forest = graph_with_mst(seed=2)
        stream = tree_edge_deletions(graph, forest, count=4, seed=2, reinsert=True)
        kinds = [u.kind for u in stream]
        assert kinds == [
            UpdateKind.DELETE,
            UpdateKind.INSERT,
        ] * 4

    def test_without_reinsert(self, graph_with_mst):
        graph, forest = graph_with_mst(seed=3)
        stream = tree_edge_deletions(graph, forest, count=3, seed=3, reinsert=False)
        assert all(u.kind is UpdateKind.DELETE for u in stream)

    def test_requires_marked_edges(self):
        graph = random_connected_graph(8, 12, seed=4)
        empty_forest = SpanningForest(graph)
        with pytest.raises(AlgorithmError):
            tree_edge_deletions(graph, empty_forest, count=1, seed=0)


class TestRandomChurn:
    def test_stream_is_applicable(self):
        graph = random_connected_graph(20, 60, seed=5)
        stream = random_churn(graph, count=30, seed=5)
        stream.validate_against(graph)
        assert len(stream) > 0

    def test_mix_of_kinds(self):
        graph = random_connected_graph(20, 60, seed=6)
        stream = random_churn(graph, count=60, seed=6, insert_fraction=0.5)
        kinds = {u.kind for u in stream}
        assert UpdateKind.INSERT in kinds
        assert UpdateKind.DELETE in kinds

    def test_insert_fraction_extremes(self):
        graph = random_connected_graph(20, 40, seed=7)
        all_deletes = random_churn(graph, count=20, seed=7, insert_fraction=0.0)
        assert all(u.kind is UpdateKind.DELETE for u in all_deletes)

    def test_invalid_fraction_rejected(self):
        graph = random_connected_graph(10, 20, seed=8)
        with pytest.raises(AlgorithmError):
            random_churn(graph, count=5, seed=8, insert_fraction=1.5)


class TestWeightPerturbations:
    def test_stream_is_applicable(self):
        graph = random_connected_graph(20, 50, seed=9)
        stream = weight_perturbations(graph, count=25, seed=9)
        stream.validate_against(graph)
        kinds = {u.kind for u in stream}
        assert kinds <= {UpdateKind.INCREASE_WEIGHT, UpdateKind.DECREASE_WEIGHT}

    def test_requires_edges(self):
        graph = Graph()
        graph.add_node(1)
        with pytest.raises(AlgorithmError):
            weight_perturbations(graph, count=3, seed=1)


class TestBridgeDeletions:
    def test_path_graph_all_edges_are_bridges(self):
        graph = path_graph(8, seed=1)
        stream = bridge_deletions(graph, count=3, seed=1)
        stream.validate_against(graph)
        assert len(stream) == 3
        assert all(u.kind is UpdateKind.DELETE for u in stream)

    def test_cycle_has_no_bridges(self):
        from repro.generators import cycle_graph

        graph = cycle_graph(6, seed=2)
        stream = bridge_deletions(graph, count=3, seed=2)
        # The first deletion only becomes available after a cycle edge is
        # removed, which bridge_deletions never does -> empty stream.
        assert len(stream) == 0

    def test_stops_when_bridges_run_out(self):
        graph = path_graph(4, seed=3)
        stream = bridge_deletions(graph, count=10, seed=3)
        assert len(stream) == 3


class TestBridgeHeavyDeletions:
    def test_path_graph_only_deletes_bridges(self):
        from repro.dynamic.workloads import bridge_heavy_deletions

        graph = path_graph(8, seed=4)
        forest = SpanningForest(graph, marked=[(e.u, e.v) for e in graph.edges()])
        stream = bridge_heavy_deletions(graph, forest, count=4, seed=4)
        stream.validate_against(graph)
        assert len(stream) == 8  # delete + reinsert pairs
        deletes = [u for u in stream if u.kind is UpdateKind.DELETE]
        assert all(u.key in forest.marked_edges for u in deletes)

    def test_applicable_on_random_graph(self, graph_with_mst):
        from repro.dynamic.workloads import bridge_heavy_deletions

        graph, forest = graph_with_mst(seed=6)
        stream = bridge_heavy_deletions(graph, forest, count=5, seed=6)
        stream.validate_against(graph)
        kinds = [u.kind for u in stream]
        assert kinds == [UpdateKind.DELETE, UpdateKind.INSERT] * 5

    def test_requires_marked_edges(self):
        from repro.dynamic.workloads import bridge_heavy_deletions

        graph = path_graph(4, seed=1)
        empty_forest = SpanningForest(graph)
        with pytest.raises(AlgorithmError):
            bridge_heavy_deletions(graph, empty_forest, count=2, seed=1)


class TestTreeWeightIncreases:
    def test_ramps_only_tree_edges_monotonically(self, graph_with_mst):
        from repro.dynamic.workloads import tree_weight_increases

        graph, forest = graph_with_mst(seed=7)
        stream = tree_weight_increases(graph, forest, count=10, seed=7, max_delta=3)
        stream.validate_against(graph)
        assert len(stream) == 10
        assert all(u.kind is UpdateKind.INCREASE_WEIGHT for u in stream)
        assert all(u.key in forest.marked_edges for u in stream)

    def test_rejects_bad_delta(self, graph_with_mst):
        from repro.dynamic.workloads import tree_weight_increases

        graph, forest = graph_with_mst(seed=7)
        with pytest.raises(AlgorithmError):
            tree_weight_increases(graph, forest, count=3, seed=7, max_delta=0)

    def test_seeded_streams_are_reproducible(self, graph_with_mst):
        from repro.dynamic.workloads import tree_weight_increases

        graph, forest = graph_with_mst(seed=8)
        first = tree_weight_increases(graph, forest, count=6, seed=8)
        second = tree_weight_increases(graph, forest, count=6, seed=8)
        assert list(first) == list(second)
