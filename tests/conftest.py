"""Shared fixtures for the test suite.

Fixtures build small graphs and maintained forests that many tests reuse.
Randomized fixtures are always seeded so failures are reproducible.
"""

from __future__ import annotations

import pytest

from repro.baselines.sequential import kruskal_mst
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_spanning_tree_forest,
)
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


@pytest.fixture
def triangle_graph() -> Graph:
    """The smallest interesting graph: a weighted triangle."""
    graph = Graph(id_bits=4)
    graph.add_edge(1, 2, 5)
    graph.add_edge(2, 3, 3)
    graph.add_edge(1, 3, 7)
    return graph


@pytest.fixture
def small_weighted_graph() -> Graph:
    """A hand-built 6-node graph with a known unique MST.

    MST edges: (1,2,w1), (2,3,w2), (3,4,w3), (4,5,w4), (5,6,w5); the heavier
    chords (1,3), (2,5), (3,6), (1,6) are non-tree edges.
    """
    graph = Graph(id_bits=4)
    graph.add_edge(1, 2, 1)
    graph.add_edge(2, 3, 2)
    graph.add_edge(3, 4, 3)
    graph.add_edge(4, 5, 4)
    graph.add_edge(5, 6, 5)
    graph.add_edge(1, 3, 10)
    graph.add_edge(2, 5, 11)
    graph.add_edge(3, 6, 12)
    graph.add_edge(1, 6, 13)
    return graph


@pytest.fixture
def small_mst_keys():
    """The edge keys of small_weighted_graph's unique MST."""
    return {(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)}


@pytest.fixture
def random_graph_24() -> Graph:
    """A seeded connected random graph on 24 nodes / 70 edges."""
    return random_connected_graph(24, 70, seed=1234)


@pytest.fixture
def random_forest_24(random_graph_24: Graph) -> SpanningForest:
    """A (non-minimum) spanning tree of random_graph_24."""
    return random_spanning_tree_forest(random_graph_24, seed=99)


@pytest.fixture
def config_24() -> AlgorithmConfig:
    return AlgorithmConfig(n=24, seed=2024)


@pytest.fixture
def grid_5x5() -> Graph:
    return grid_graph(5, 5, seed=7)


@pytest.fixture
def path_10() -> Graph:
    return path_graph(10, seed=3)


@pytest.fixture
def complete_12() -> Graph:
    return complete_graph(12, seed=5)


# ---------------------------------------------------------------------- #
# shared builder factories (deduplicated from the per-package helpers)
# ---------------------------------------------------------------------- #
@pytest.fixture
def two_fragment_graph():
    """Factory: two maintained trees {1,2,3} / {4,5,6} plus cut edges.

    This is the canonical search-procedure fixture (TestOut / FindMin /
    FindAny / SuperpolyFindMin all exercise the cut between the two trees);
    ``cut_edges`` customises the crossing edges — pass ``()`` for two
    isolated fragments.
    """

    def build(cut_edges=((3, 4, 10), (1, 6, 20), (2, 5, 15))):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(4, 5, 3)
        graph.add_edge(5, 6, 4)
        for u, v, weight in cut_edges:
            graph.add_edge(u, v, weight)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (4, 5), (5, 6)])
        return graph, forest

    return build


@pytest.fixture
def graph_with_mst():
    """Factory: a seeded random connected graph plus its built MST forest."""

    def build(n=16, m=40, seed=0):
        graph = random_connected_graph(n, m, seed=seed)
        report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
        return graph, report.forest

    return build


@pytest.fixture
def mst_forest():
    """Factory: the (unique) Kruskal minimum spanning forest of a graph."""

    def build(graph: Graph) -> SpanningForest:
        forest = SpanningForest(graph)
        for edge in kruskal_mst(graph):
            forest.mark(edge.u, edge.v)
        return forest

    return build


@pytest.fixture
def unit_line_graph():
    """Factory: the unit-weight path 1-2-...-n the simulator tests relay on."""

    def build(n=5):
        graph = Graph()
        for i in range(1, n):
            graph.add_edge(i, i + 1, 1)
        return graph

    return build
