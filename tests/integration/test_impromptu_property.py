"""Tests pinning down the *impromptu* property of the repair algorithms.

"Impromptu" (paper, Section 1) means: between updates, the only state kept in
the network is, per node, the names and weights of its incident edges and
which of them are marked.  We test this operationally:

* a repair driven from a freshly reconstructed (graph, marked-edge-set) pair
  behaves identically to one driven from the long-lived objects — nothing a
  previous update computed is needed;
* after an update completes, the repairer object can be thrown away entirely;
* the cost of an update does not depend on how many updates preceded it.
"""

import pytest

from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.core.repair import TreeRepairer
from repro.dynamic import EdgeUpdate, TreeMaintainer, tree_edge_deletions
from repro.generators import random_connected_graph
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.verify import is_minimum_spanning_forest


def _rebuild_state(graph, forest):
    """Clone the impromptu state: graph copy + marked-edge set only."""
    new_graph = graph.copy()
    new_forest = SpanningForest(new_graph, marked=forest.marked_edges)
    return new_graph, new_forest


class TestStateReconstruction:
    def test_repair_from_reconstructed_state_matches(self):
        graph = random_connected_graph(20, 70, seed=1)
        report = BuildMST(graph, config=AlgorithmConfig(n=20, seed=1)).run()
        key = sorted(report.forest.marked_edges)[4]

        # Repair on the live objects.
        live_graph, live_forest = _rebuild_state(graph, report.forest)
        live_repairer = TreeRepairer(
            live_graph, live_forest, AlgorithmConfig(n=20, seed=99), mode="mst"
        )
        live_report = live_repairer.delete_edge(*key)

        # Repair on state reconstructed from nothing but incident edges + marks.
        fresh_graph, fresh_forest = _rebuild_state(graph, report.forest)
        fresh_repairer = TreeRepairer(
            fresh_graph, fresh_forest, AlgorithmConfig(n=20, seed=99), mode="mst"
        )
        fresh_report = fresh_repairer.delete_edge(*key)

        assert live_report.replacement == fresh_report.replacement
        assert live_report.cost.messages == fresh_report.cost.messages
        assert live_forest.marked_edges == fresh_forest.marked_edges

    def test_repairer_is_disposable_between_updates(self):
        graph = random_connected_graph(18, 60, seed=2)
        report = BuildMST(graph, config=AlgorithmConfig(n=18, seed=2)).run()
        forest = report.forest
        for index, key in enumerate(sorted(forest.marked_edges)[:4]):
            if not graph.has_edge(*key) or not forest.is_marked(*key):
                continue
            repairer = TreeRepairer(
                graph, forest, AlgorithmConfig(n=18, seed=100 + index), mode="mst"
            )
            repairer.delete_edge(*key)
            del repairer
            assert is_minimum_spanning_forest(forest)

    def test_update_cost_independent_of_history_length(self):
        """The k-th update costs about the same as the 1st (no amortization)."""
        graph = random_connected_graph(24, 80, seed=3)
        report = BuildMST(graph, config=AlgorithmConfig(n=24, seed=3)).run()
        maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=3)
        stream = tree_edge_deletions(graph, report.forest, count=12, seed=3)
        maintainer.apply_stream(stream)
        delete_costs = [
            outcome.messages
            for outcome in maintainer.history
            if outcome.update.kind.value == "delete" and outcome.report.was_tree_edge
        ]
        assert len(delete_costs) >= 6
        early = sum(delete_costs[:3]) / 3
        late = sum(delete_costs[-3:]) / 3
        # No trend either way beyond noise: late updates may be cheaper or
        # dearer by a small factor, but nothing accumulates.
        assert late <= 5 * early + 50
        assert early <= 5 * late + 50

    def test_maintainer_uses_fresh_repairer_each_update(self):
        graph = random_connected_graph(16, 50, seed=4)
        report = BuildMST(graph, config=AlgorithmConfig(n=16, seed=4)).run()
        maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=4)
        first = maintainer._fresh_repairer()
        second = maintainer._fresh_repairer()
        assert first is not second
        assert first.config is not second.config
