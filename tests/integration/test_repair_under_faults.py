"""Repair correctness under fault programs (Theorem 1.2, adversarial flavour).

The paper's impromptu repair must survive *any* sequence of deletions —
including the bursts a fault model produces.  These tests drive the
``partition-heal`` and ``link-storm`` programs into ``kkt-repair`` on dense
and sparse graphs over seeds 0–2 and check the maintained forest with
:func:`repro.verify.is_minimum_weight_forest` (total-weight minimality, the
check that stays meaningful even when a workload has broken the
distinct-weight assumption), plus spanning-forest validity.
"""

import pytest

from repro.api import ExperimentSpec, FaultSpec, GraphSpec, WorkloadSpec, run
from repro.api.runners import _reference_forest
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic import TreeMaintainer
from repro.verify import is_minimum_weight_forest, is_spanning_forest

DENSITIES = ["dense", "sparse"]
SEEDS = [0, 1, 2]
NODES = 24
PROGRAMS = ["partition-heal", "link-storm"]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("program", PROGRAMS)
def test_kkt_repair_is_minimum_weight_after_fault_program(program, density, seed):
    graph = GraphSpec(nodes=NODES, density=density, seed=seed).build()
    config = AlgorithmConfig(n=NODES, seed=seed)
    report = BuildMST(graph, config=config).run()
    fault_program = FaultSpec(name=program, seed=seed).build(graph, report.forest)
    assert len(fault_program.stream) > 0

    maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=seed)
    maintainer.apply_stream(fault_program.stream)

    assert is_spanning_forest(report.forest)
    assert is_minimum_weight_forest(report.forest)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("program", PROGRAMS)
def test_runner_invariant_holds_under_fault_scenarios(program, seed):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="sparse", seed=seed),
        workload=WorkloadSpec(name="churn", updates=4),
        faults=FaultSpec(name=program),
    )
    result = run("kkt-repair", spec)
    assert result.ok, result.checks
    assert result.extra["fault_updates_applied"] > 0


@pytest.mark.parametrize("program", PROGRAMS)
def test_kkt_and_recompute_agree_on_final_weight(program):
    """Both repair strategies must end on a minimum-weight forest."""
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="dense", seed=1),
        faults=FaultSpec(name=program),
    )
    kkt = run("kkt-repair", spec, updates=4)
    baseline = run("recompute-repair", spec, updates=4)
    assert kkt.ok and baseline.ok
    assert kkt.extra["fault_events"] == baseline.extra["fault_events"]


def test_fault_deletions_reach_the_repairer_as_updates():
    """The fault program's link failures are genuine repair events: the
    maintainer's history grows by exactly the program's stream length."""
    graph = GraphSpec(nodes=NODES, density="sparse", seed=0).build()
    forest = _reference_forest(graph)
    program = FaultSpec(name="link-storm", seed=0, params={"count": 4}).build(
        graph, forest
    )
    maintainer = TreeMaintainer(graph, forest, mode="mst", seed=0)
    maintainer.apply_stream(program.stream)
    assert len(maintainer.history) == 4
    assert all(outcome.update.kind.value == "delete" for outcome in maintainer.history)
