"""Equivalence suite: fast path counters == reference path counters.

The fast-path machinery (cached tree structures, one-pass word-batched
sketch kernels, per-node incident arrays) must be *observably invisible*:
for every registered algorithm, every density profile and every seed, the
messages / bits / rounds / phases reported by a run with the fast path on
must be bit-identical to a run with the reference implementations.  This is
the contract ``repro bench`` relies on when it reports speedups.
"""

import pytest

from repro import fastpath
from repro.api import FaultSpec, GraphSpec, get_runner, list_algorithms
from repro.api.scenario import ExperimentSpec, ScheduleSpec, WorkloadSpec

ALGORITHMS = list_algorithms()
DENSITIES = ["sparse", "dense"]
SEEDS = [0, 1, 2]
NODES = 24


def _counters(result):
    """Everything observable except wall-clock."""
    payload = {
        "algorithm": result.algorithm,
        "n": result.n,
        "m": result.m,
        "messages": result.messages,
        "bits": result.bits,
        "rounds": result.rounds,
        "phases": result.phases,
        "checks": result.checks,
        "extra": result.extra,
    }
    return payload


def _run(algorithm, spec, **options):
    return _counters(get_runner(algorithm).run(spec, **options))


def test_all_six_algorithms_are_covered():
    assert ALGORITHMS == [
        "flooding",
        "ghs",
        "kkt-mst",
        "kkt-repair",
        "kkt-st",
        "recompute-repair",
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_counters_bit_identical(algorithm, density, seed):
    spec = GraphSpec(nodes=NODES, density=density, seed=seed)
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("algorithm", ["kkt-repair", "recompute-repair"])
def test_churn_workload_counters_bit_identical(algorithm, density, seed):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density=density, seed=seed),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


@pytest.mark.parametrize("algorithm", ["kkt-mst", "kkt-st"])
def test_churn_prechurned_construction_counters_bit_identical(algorithm):
    # Constructions under a workload run on the pre-churned topology; the
    # graph mutations exercise the version-stamped caches directly.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="sparse", seed=1),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


def test_st_mode_repair_counters_bit_identical():
    # Build-ST + ST repair exercise the cycle-breaking (non-patchable) path.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="dense", seed=2),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run("kkt-repair", spec, mode="st")
    with fastpath.fast_path():
        fast = _run("kkt-repair", spec, mode="st")
    assert fast == reference


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("program", ["link-storm", "partition-heal", "crash-leaves"])
@pytest.mark.parametrize("algorithm", ["kkt-repair", "recompute-repair"])
def test_fault_scenario_counters_bit_identical(algorithm, program, seed):
    # Fault programs (the fourth ExperimentSpec axis) run through the same
    # repair machinery: the fast path must stay observably invisible there
    # too, fault event log included.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="sparse", seed=seed),
        workload=WorkloadSpec(name="churn", updates=6),
        faults=FaultSpec(name=program),
    )
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference
    assert fast["extra"]["fault_events"]


@pytest.mark.parametrize(
    "program", ["byz-corrupt", "byz-equivocate", "byz-replay", "byz-silent"]
)
def test_byzantine_flooding_on_kernel_counters_bit_identical(program):
    # The Byzantine tier tampers at the same delivery boundary the benign
    # faults use; the fast path must reproduce the identical attack history.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="dense", seed=2),
        schedule=ScheduleSpec(scheduler="random"),
        faults=FaultSpec(name=program),
    )
    with fastpath.reference_path():
        reference = _run("flooding", spec)
    with fastpath.fast_path():
        fast = _run("flooding", spec)
    assert fast == reference
    assert fast["extra"]["fault_events"]  # at least the compromised-set plan


@pytest.mark.parametrize("algorithm", ["kkt-mst", "kkt-st", "kkt-repair"])
def test_bracha_substrate_counters_bit_identical(algorithm):
    # Substrate charging branches inside the broadcast executor, which both
    # paths share — hardened runs must stay observably equivalent too.
    spec = GraphSpec(nodes=NODES, density="sparse", seed=1)
    with fastpath.reference_path():
        reference = _run(algorithm, spec, substrate="bracha")
    with fastpath.fast_path():
        fast = _run(algorithm, spec, substrate="bracha")
    assert fast == reference
    assert fast["extra"]["substrate"] == "bracha"


def test_faulty_flooding_on_kernel_counters_bit_identical():
    # Flooding is the runner that executes on the event kernel itself, with
    # the fault injector installed at the delivery boundary — under an
    # adversarial schedule the delivery order, drops and duplicates must be
    # identical on both paths.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="dense", seed=1),
        schedule=ScheduleSpec(scheduler="random"),
        faults=FaultSpec(name="lossy-uniform", params={"drop": 0.2, "duplicate": 0.1}),
    )
    with fastpath.reference_path():
        reference = _run("flooding", spec)
    with fastpath.fast_path():
        fast = _run("flooding", spec)
    assert fast == reference
