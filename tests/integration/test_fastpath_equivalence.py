"""Equivalence suite: fast path counters == reference path counters.

The fast-path machinery (cached tree structures, one-pass word-batched
sketch kernels, per-node incident arrays) must be *observably invisible*:
for every registered algorithm, every density profile and every seed, the
messages / bits / rounds / phases reported by a run with the fast path on
must be bit-identical to a run with the reference implementations.  This is
the contract ``repro bench`` relies on when it reports speedups.
"""

import pytest

from repro import fastpath
from repro.api import GraphSpec, get_runner, list_algorithms
from repro.api.scenario import ExperimentSpec, WorkloadSpec

ALGORITHMS = list_algorithms()
DENSITIES = ["sparse", "dense"]
SEEDS = [0, 1, 2]
NODES = 24


def _counters(result):
    """Everything observable except wall-clock."""
    payload = {
        "algorithm": result.algorithm,
        "n": result.n,
        "m": result.m,
        "messages": result.messages,
        "bits": result.bits,
        "rounds": result.rounds,
        "phases": result.phases,
        "checks": result.checks,
        "extra": result.extra,
    }
    return payload


def _run(algorithm, spec, **options):
    return _counters(get_runner(algorithm).run(spec, **options))


def test_all_six_algorithms_are_covered():
    assert ALGORITHMS == [
        "flooding",
        "ghs",
        "kkt-mst",
        "kkt-repair",
        "kkt-st",
        "recompute-repair",
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_counters_bit_identical(algorithm, density, seed):
    spec = GraphSpec(nodes=NODES, density=density, seed=seed)
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("algorithm", ["kkt-repair", "recompute-repair"])
def test_churn_workload_counters_bit_identical(algorithm, density, seed):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density=density, seed=seed),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


@pytest.mark.parametrize("algorithm", ["kkt-mst", "kkt-st"])
def test_churn_prechurned_construction_counters_bit_identical(algorithm):
    # Constructions under a workload run on the pre-churned topology; the
    # graph mutations exercise the version-stamped caches directly.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="sparse", seed=1),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run(algorithm, spec)
    with fastpath.fast_path():
        fast = _run(algorithm, spec)
    assert fast == reference


def test_st_mode_repair_counters_bit_identical():
    # Build-ST + ST repair exercise the cycle-breaking (non-patchable) path.
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=NODES, density="dense", seed=2),
        workload=WorkloadSpec(name="churn", updates=8),
    )
    with fastpath.reference_path():
        reference = _run("kkt-repair", spec, mode="st")
    with fastpath.fast_path():
        fast = _run("kkt-repair", spec, mode="st")
    assert fast == reference
