"""Asynchrony integration tests.

Theorem 1.2 is stated for asynchronous networks.  The repair algorithms are
sequences of broadcast-and-echoes, which are self-synchronizing; these tests
run the underlying message-level primitives and the flooding baseline under
adversarial delivery schedules and check that results (and message counts,
where deterministic) do not depend on the schedule.
"""

import pytest

from repro.baselines.flooding_st import flooding_spanning_tree
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.broadcast import run_reference_broadcast_echo
from repro.network.scheduler import (
    EdgeDelayScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
)
from repro.verify import is_spanning_forest

SCHEDULERS = [
    ("fifo", FifoScheduler),
    ("lifo", LifoScheduler),
    ("random", lambda: RandomScheduler(seed=13)),
    ("edge-delay", lambda: EdgeDelayScheduler(default_delay=3)),
]


class TestBroadcastEchoUnderAdversaries:
    @pytest.mark.parametrize("name,factory", SCHEDULERS, ids=[s[0] for s in SCHEDULERS])
    def test_aggregate_independent_of_schedule(self, name, factory):
        graph = random_connected_graph(20, 45, seed=3)
        forest = random_spanning_tree_forest(graph, seed=3)
        local_values = {node: node * 3 for node in graph.nodes()}

        def combine(local, children):
            return (local or 0) + sum(children)

        value, acct = run_reference_broadcast_echo(
            graph,
            forest,
            root=1,
            local_values=local_values,
            combine=combine,
            broadcast_bits=8,
            echo_bits=8,
            engine="async",
            scheduler=factory(),
        )
        assert value == sum(local_values.values())
        # Exactly one broadcast + one echo per tree edge, whatever the order.
        assert acct.messages == 2 * (graph.num_nodes - 1)

    @pytest.mark.parametrize("name,factory", SCHEDULERS, ids=[s[0] for s in SCHEDULERS])
    def test_min_aggregation_under_adversaries(self, name, factory):
        graph = random_connected_graph(16, 40, seed=4)
        forest = random_spanning_tree_forest(graph, seed=4)
        local_values = {node: 1000 - node for node in graph.nodes()}

        def combine(local, children):
            values = [local] + list(children) if local is not None else list(children)
            return min(values)

        value, _ = run_reference_broadcast_echo(
            graph, forest, root=2, local_values=local_values, combine=combine,
            broadcast_bits=4, echo_bits=12, engine="async", scheduler=factory(),
        )
        assert value == min(local_values.values())


class TestFloodingUnderAdversaries:
    @pytest.mark.parametrize("name,factory", SCHEDULERS, ids=[s[0] for s in SCHEDULERS])
    def test_flooding_always_spans(self, name, factory):
        graph = random_connected_graph(22, 70, seed=5)
        forest, acct = flooding_spanning_tree(
            graph, engine="async", scheduler=factory()
        )
        assert is_spanning_forest(forest)
        m = graph.num_edges
        assert m <= acct.messages <= 2 * m
