"""Smoke tests: every example script runs end to end with small parameters."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def _run(script: str, *args: str, timeout: int = 240) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (str(SRC_DIR), env.get("PYTHONPATH")) if path
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestExampleScripts:
    def test_examples_directory_contents(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    def test_registry_sweep(self):
        result = _run("registry_sweep.py", "24", "2")
        assert result.returncode == 0, result.stderr
        assert "Registered algorithms" in result.stdout
        assert "parallel counters identical to serial: True" in result.stdout

    def test_quickstart(self):
        result = _run("quickstart.py", "24", "80", "3")
        assert result.returncode == 0, result.stderr
        assert "Build-MST" in result.stdout
        assert "Construction cost comparison" in result.stdout

    def test_dynamic_repair(self):
        result = _run("dynamic_repair.py", "24", "90", "6", "4")
        assert result.returncode == 0, result.stderr
        assert "Impromptu repair" in result.stdout
        assert "cheaper per update" in result.stdout

    def test_broadcast_tree_vs_flooding(self):
        result = _run("broadcast_tree_vs_flooding.py", "48")
        assert result.returncode == 0, result.stderr
        assert "Broadcast-tree construction" in result.stdout
        assert "one broadcast costs" in result.stdout

    def test_superpolynomial_weights(self):
        result = _run("superpolynomial_weights.py", "20", "80", "3")
        assert result.returncode == 0, result.stderr
        assert "sampled" in result.stdout

    def test_message_complexity_study_rejects_unknown_experiment(self):
        result = _run("message_complexity_study.py", "E99")
        assert result.returncode == 1
        assert "unknown experiment" in result.stdout

    def test_fault_scenarios(self):
        result = _run("fault_scenarios.py", "24", "4", "2")
        assert result.returncode == 0, result.stderr
        assert "Repair under faults" in result.stdout
        assert "partition-heal" in result.stdout
        assert "all repair invariants held under every fault program: True" in result.stdout
        assert '"faults"' in result.stdout

    def test_fuzz_campaign(self):
        result = _run("fuzz_campaign.py", "4", "1")
        assert result.returncode == 0, result.stderr
        assert "violations: 0" in result.stdout
        assert "caught by 'planted'" in result.stdout
        assert "clean campaign passed and planted bug was caught: True" in result.stdout
