"""End-to-end integration: construct, then repair, across graph families.

These tests exercise the whole stack the way the examples and benchmarks do:
generate a graph, build the tree with the paper's construction, verify it
against the sequential ground truth, then push an update stream through the
impromptu maintainer and verify again — comparing costs against the baselines
along the way.
"""

import pytest

from repro import build_mst, build_st
from repro.baselines import flooding_spanning_tree, ghs_build_mst
from repro.core.config import AlgorithmConfig
from repro.dynamic import EdgeUpdate, TreeMaintainer, random_churn, tree_edge_deletions
from repro.generators import (
    circulant_expander,
    complete_graph,
    grid_graph,
    hypercube_graph,
    random_connected_graph,
)
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


class TestConstructThenRepair:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_mst_lifecycle(self, seed):
        graph = random_connected_graph(28, 110, seed=seed)
        report = build_mst(graph, seed=seed)
        assert is_minimum_spanning_forest(report.forest)

        maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=seed)
        stream = tree_edge_deletions(graph, report.forest, count=5, seed=seed)
        maintainer.apply_stream(stream)
        assert is_minimum_spanning_forest(report.forest)

        churn = random_churn(graph, count=15, seed=seed + 1)
        maintainer.apply_stream(churn)
        assert is_minimum_spanning_forest(report.forest)

    def test_st_lifecycle(self):
        graph = random_connected_graph(28, 110, seed=5)
        report = build_st(graph, seed=5)
        assert is_spanning_forest(report.forest)
        maintainer = TreeMaintainer(graph, report.forest, mode="st", seed=5)
        churn = random_churn(graph, count=20, seed=6)
        maintainer.apply_stream(churn)
        assert is_spanning_forest(report.forest)


class TestGraphFamilies:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: grid_graph(5, 6, seed=1),
            lambda: hypercube_graph(4, seed=1),
            lambda: circulant_expander(30, seed=1),
            lambda: complete_graph(16, seed=1),
        ],
        ids=["grid", "hypercube", "circulant", "complete"],
    )
    def test_construction_correct_on_family(self, factory):
        graph = factory()
        mst_report = build_mst(graph, seed=3)
        assert is_minimum_spanning_forest(mst_report.forest)
        st_graph = factory()
        st_report = build_st(st_graph, seed=3)
        assert is_spanning_forest(st_report.forest)


class TestAgainstBaselines:
    def test_kkt_and_ghs_agree_on_the_mst(self):
        graph_a = random_connected_graph(32, 180, seed=7)
        graph_b = random_connected_graph(32, 180, seed=7)
        kkt = build_mst(graph_a, seed=1)
        ghs = ghs_build_mst(graph_b)
        assert kkt.marked_edges == ghs.marked_edges

    def test_st_beats_flooding_on_dense_graph(self):
        """The headline o(m) claim, at a size where the crossover already shows."""
        n = 96
        graph_a = complete_graph(n, seed=8)
        graph_b = complete_graph(n, seed=8)
        st = build_st(graph_a, seed=2)
        _, flood_acct = flooding_spanning_tree(graph_b)
        assert is_spanning_forest(st.forest)
        assert flood_acct.messages >= graph_b.num_edges
        # ST construction messages grow ~ n log n while m = n(n-1)/2; at
        # n = 96 the Θ(m) flooding baseline is already more expensive.
        assert st.messages < flood_acct.messages

    def test_mst_messages_are_sublinear_in_m(self):
        """o(m) shape for Build-MST: messages / m falls as density grows.

        The MST construction carries larger constants than ST, so the
        absolute crossover against GHS lies beyond laptop-simulable sizes;
        the sub-linearity of messages in m — the paper's asymptotic claim —
        is already clearly visible.
        """
        ratios = []
        for n in (24, 128):
            graph = complete_graph(n, seed=8)
            report = build_mst(graph, seed=2)
            assert is_minimum_spanning_forest(report.forest)
            ratios.append(report.messages / graph.num_edges)
        assert ratios[-1] < 0.75 * ratios[0]

    def test_st_repair_beats_recompute_per_update(self):
        from repro.baselines import RecomputeMaintainer

        n, m = 24, 200
        graph_a = random_connected_graph(n, m, seed=9)
        report = build_st(graph_a, seed=9)
        impromptu = TreeMaintainer(graph_a, report.forest, mode="st", seed=9)
        key = sorted(report.forest.marked_edges)[2]
        outcome = impromptu.apply(EdgeUpdate.delete(*key))

        graph_b = random_connected_graph(n, m, seed=9)
        recompute = RecomputeMaintainer(graph_b, mode="st")
        recompute_cost = recompute.delete_edge(*key)

        assert outcome.report.cost.messages < recompute_cost.messages

    def test_mst_repair_beats_recompute_on_dense_graph(self):
        from repro.baselines import RecomputeMaintainer

        n, m = 64, 1800
        graph_a = random_connected_graph(n, m, seed=9)
        report = build_mst(graph_a, seed=9)
        impromptu = TreeMaintainer(graph_a, report.forest, mode="mst", seed=9)
        key = sorted(report.forest.marked_edges)[2]
        outcome = impromptu.apply(EdgeUpdate.delete(*key))
        assert is_minimum_spanning_forest(report.forest)

        graph_b = random_connected_graph(n, m, seed=9)
        recompute = RecomputeMaintainer(graph_b, mode="mst")
        recompute_cost = recompute.delete_edge(*key)

        assert outcome.report.cost.messages < recompute_cost.messages


class TestImpromptuMemoryBound:
    def test_per_node_persistent_state_is_logarithmic(self):
        """Between updates a node stores only incident edges + marks.

        The paper's impromptu claim bounds *extra* storage; here we check that
        the maintained state exposed to a node (its marked incident edges) is
        bounded by its degree and that no auxiliary structures survive on the
        maintainer after an update completes.
        """
        graph = random_connected_graph(20, 60, seed=11)
        report = build_mst(graph, seed=11)
        maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=11)
        stream = tree_edge_deletions(graph, report.forest, count=3, seed=11)
        maintainer.apply_stream(stream)
        # The maintainer keeps only graph + forest (+ a history list for the
        # experiment harness, which is not node state).
        for node in graph.nodes():
            assert len(report.forest.marked_neighbors(node)) <= graph.degree(node)
        assert not hasattr(maintainer, "_cached_repairer")
