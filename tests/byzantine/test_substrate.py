"""The Bracha delivery substrate: closed form == kernel run, same-tree runs."""

import pytest

from repro.api import ExperimentSpec, GraphSpec, get_runner
from repro.byzantine import (
    BrachaSubstrate,
    default_resilience,
    run_bracha_broadcast,
)
from repro.network.accounting import MessageAccountant
from repro.network.broadcast import (
    delivery_substrate,
    list_substrates,
    make_substrate,
    register_substrate,
)
from repro.network.errors import AlgorithmError, ProtocolError


class TestRegistry:
    def test_builtin_substrates(self):
        assert list_substrates() == ["bracha", "plain"]

    def test_plain_builds_to_none(self):
        assert make_substrate("plain") is None
        assert make_substrate("plain", n=64) is None  # extra params ignored

    def test_bracha_defaults_to_the_maximum_resilience(self):
        substrate = make_substrate("bracha", n=10)
        assert isinstance(substrate, BrachaSubstrate)
        assert substrate.config.t == default_resilience(10) == 3
        assert make_substrate("bracha", n=10, t=1).config.t == 1

    def test_unsound_resilience_is_rejected_at_build_time(self):
        with pytest.raises(AlgorithmError, match="n > 3t"):
            make_substrate("bracha", n=6, t=2)

    def test_unknown_substrate_lists_the_registry(self):
        with pytest.raises(ProtocolError, match="registered substrates"):
            make_substrate("pigeon")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ProtocolError, match="already registered"):

            @register_substrate("bracha")
            def impostor(**params):  # pragma: no cover
                return None


class TestClosedFormCrossValidation:
    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    def test_hop_messages_equals_an_executed_bracha_instance(self, n):
        """The accounting model and the protocol are the same object."""
        substrate = make_substrate("bracha", n=n)
        run = run_bracha_broadcast(n, substrate.config.t, value=1)
        assert substrate.hop_messages == run.accountant.messages

    @pytest.mark.parametrize("n", [4, 9])
    def test_charge_messages_bills_all_three_waves(self, n):
        substrate = make_substrate("bracha", n=n)
        accountant = MessageAccountant()
        substrate.charge_messages(accountant, count=5, size_bits=8, kind="probe")
        assert accountant.messages == 5 * substrate.hop_messages
        # Every Bracha message carries the value plus the 2-bit wave tag.
        assert accountant.bits == accountant.messages * (8 + 2)

    def test_three_causal_waves_per_hop(self):
        assert make_substrate("bracha", n=4).rounds_per_hop == 3


class TestHardenedRuns:
    """`run --substrate bracha`: same tree, higher (quantified) cost."""

    @pytest.mark.parametrize("algorithm", ["kkt-mst", "kkt-st"])
    def test_zero_byzantine_bracha_run_builds_the_same_tree(self, algorithm):
        spec = ExperimentSpec(graph=GraphSpec(nodes=24, density="sparse", seed=3))
        runner = get_runner(algorithm)
        plain = runner.run(spec, record_state=True)
        hardened = runner.run(spec, record_state=True, substrate="bracha")
        assert plain.checks == hardened.checks and all(plain.checks.values())
        assert sorted(map(tuple, plain.extra["tree_edges"])) == sorted(
            map(tuple, hardened.extra["tree_edges"])
        )
        assert hardened.extra["substrate"] == "bracha"
        assert "substrate" not in plain.extra  # the plain path is unmarked
        assert hardened.messages > plain.messages
        # Every executor hop takes three waves instead of one; rounds charged
        # outside the broadcast executor are unaffected, so the total sits
        # strictly between the plain cost and a uniform tripling.
        assert plain.rounds < hardened.rounds <= 3 * plain.rounds

    def test_plain_substrate_is_bit_identical_to_the_default(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=24, density="sparse", seed=3))
        runner = get_runner("kkt-mst")
        default = runner.run(spec)
        plain = runner.run(spec, substrate="plain")
        assert default.counters() == plain.counters()
        assert default.checks == plain.checks

    def test_repair_runner_supports_the_substrate_too(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=20, density="sparse", seed=6))
        runner = get_runner("kkt-repair")
        plain = runner.run(spec, updates=4)
        hardened = runner.run(spec, updates=4, substrate="bracha")
        assert plain.checks == hardened.checks
        assert hardened.messages > plain.messages
        assert hardened.extra["substrate"] == "bracha"

    def test_delivery_substrate_context_restores_the_previous_default(self):
        from repro.network.broadcast import active_substrate

        substrate = make_substrate("bracha", n=4)
        assert active_substrate() is None
        with delivery_substrate(substrate):
            assert active_substrate() is substrate
            with delivery_substrate(None):
                assert active_substrate() is None
            assert active_substrate() is substrate
        assert active_substrate() is None
