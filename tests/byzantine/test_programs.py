"""The ``byz-*`` fault programs: registry wiring, caps, provenance, errors."""

import json

import pytest

from repro.api import (
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    fault_adversarial,
    get_fault,
    list_faults,
    register_fault,
    run,
)
from repro.api.runners import _reference_forest
from repro.byzantine import ByzantineInjector, choose_byzantine_nodes, max_tolerated
from repro.cli import _fault_names
from repro.network.errors import AlgorithmError
from repro.network.faults import FaultEvent

BYZ_PROGRAMS = ["byz-corrupt", "byz-equivocate", "byz-replay", "byz-silent"]


def _graph_and_forest(nodes=16, seed=3):
    graph = GraphSpec(nodes=nodes, density="sparse", seed=seed).build()
    return graph, _reference_forest(graph)


class TestRegistryWiring:
    def test_all_four_programs_are_registered(self):
        assert set(BYZ_PROGRAMS) <= set(list_faults())

    @pytest.mark.parametrize("name", BYZ_PROGRAMS)
    def test_byzantine_programs_are_adversarial(self, name):
        assert fault_adversarial(name) is True

    @pytest.mark.parametrize("name", ["none", "crash-leaves", "lossy-uniform"])
    def test_benign_programs_are_not(self, name):
        assert fault_adversarial(name) is False

    @pytest.mark.parametrize("name", BYZ_PROGRAMS)
    def test_duplicate_registration_is_rejected(self, name):
        with pytest.raises(
            AlgorithmError, match=f"fault program '{name}' is already registered"
        ):

            @register_fault(name)
            def impostor(graph, forest, seed=None):  # pragma: no cover
                return None

    def test_unknown_byzantine_name_from_the_api(self):
        with pytest.raises(AlgorithmError, match="registered fault programs"):
            get_fault("byz-bribe")

    def test_unknown_byzantine_name_from_the_cli(self):
        with pytest.raises(
            AlgorithmError, match="unknown fault program 'byz-bribe'; choose from"
        ):
            _fault_names(["none,byz-bribe"])

    def test_cli_flattening_accepts_the_byzantine_tier(self):
        assert _fault_names(["byz-silent,byz-replay", "none"]) == [
            "byz-silent",
            "byz-replay",
            "none",
        ]


class TestHonestMajorityCap:
    def test_max_tolerated_is_the_bracha_bound(self):
        assert [max_tolerated(n) for n in range(1, 9)] == [0, 0, 0, 1, 1, 1, 2, 2]

    def test_default_count_takes_the_whole_budget(self):
        graph, _ = _graph_and_forest(nodes=16)
        assert len(choose_byzantine_nodes(graph, seed=0, count=None)) == 5

    def test_explicit_counts_are_clamped_not_rejected(self):
        graph, _ = _graph_and_forest(nodes=5)
        assert len(choose_byzantine_nodes(graph, seed=0, count=4)) == 1

    def test_negative_counts_are_rejected(self):
        graph, _ = _graph_and_forest()
        with pytest.raises(AlgorithmError, match="cannot be negative"):
            choose_byzantine_nodes(graph, seed=0, count=-1)

    def test_tiny_graphs_get_an_inert_adversary(self):
        graph = GraphSpec(nodes=3, density="dense", seed=0).build()
        assert choose_byzantine_nodes(graph, seed=0, count=None) == []
        program = FaultSpec(name="byz-silent", seed=0).build(
            graph, _reference_forest(graph)
        )
        assert program.planned == []
        assert program.injector.byzantine_nodes == []

    def test_choice_is_seed_deterministic(self):
        graph, _ = _graph_and_forest()
        first = choose_byzantine_nodes(graph, seed=7, count=3)
        assert first == choose_byzantine_nodes(graph, seed=7, count=3)
        assert first == sorted(first)
        assert set(first) <= set(graph.nodes())
        assert first != choose_byzantine_nodes(graph, seed=8, count=3)


class TestProgramBuilds:
    @pytest.mark.parametrize("name", BYZ_PROGRAMS)
    def test_build_plans_one_row_per_compromised_node(self, name):
        graph, forest = _graph_and_forest()
        program = FaultSpec(name=name, seed=4).build(graph, forest)
        assert isinstance(program.injector, ByzantineInjector)
        nodes = program.injector.byzantine_nodes
        assert nodes  # 16 nodes tolerate 5 compromised ones
        assert program.planned == [[0, name, node, None] for node in nodes]
        assert len(program.stream) == 0  # no topology changes, only lies

    def test_at_parameter_shifts_the_plan_and_rejects_negatives(self):
        graph, forest = _graph_and_forest()
        program = FaultSpec(name="byz-silent", seed=4, params={"at": 7}).build(
            graph, forest
        )
        assert all(row[0] == 7 for row in program.planned)
        with pytest.raises(AlgorithmError, match="non-negative"):
            FaultSpec(name="byz-silent", params={"at": -1}).build(graph, forest)


class TestProvenance:
    def test_fault_event_rows_round_trip_through_json(self):
        event = FaultEvent(time=3, kind="byz-equivocate", u=1, v=2)
        row = event.to_list()
        assert row == [3, "byz-equivocate", 1, 2]
        assert json.loads(json.dumps(row)) == row
        assert FaultEvent(*json.loads(json.dumps(row))) == event

    def test_flooding_run_records_the_full_adversarial_history(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="dense", seed=2),
            faults=FaultSpec(name="byz-silent"),
        )
        result = run("flooding", spec)
        assert result.faults is not None and result.faults.name == "byz-silent"
        assert result.faults.seed == 2  # resolved against the graph seed
        events = result.extra["fault_events"]
        planned = [event for event in events if event[1] == "byz-silent" and event[3] is None]
        fired = [event for event in events if event[3] is not None]
        assert planned and fired  # compromised set + the attacks that landed
        payload = json.loads(result.to_json())
        assert payload["extra"]["fault_events"] == events
        again = type(result).from_json(result.to_json())
        assert again.to_dict() == result.to_dict()

    def test_byzantine_runs_are_deterministic(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="dense", seed=5),
            faults=FaultSpec(name="byz-replay", params={"rate": 0.5}),
        )
        first = run("flooding", spec)
        second = run("flooding", spec)
        assert first.extra["fault_events"] == second.extra["fault_events"]
        assert first.counters() == second.counters()
