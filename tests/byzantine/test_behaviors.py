"""Unit tests for the Byzantine behaviours and their kernel-boundary injector."""

import pytest

from repro.byzantine import (
    BYZANTINE_PROGRAMS,
    ByzantineBehavior,
    ByzantineInjector,
    corrupt_value,
)
from repro.network.faults import DELIVER, DROP
from repro.network.errors import SimulationError
from repro.network.message import Message


def _message(sender=1, receiver=2, payload=None, kind="DATA"):
    return Message(sender=sender, receiver=receiver, kind=kind, payload=payload,
                   size_bits=8)


class TestCorruptValue:
    def test_booleans_flip(self):
        assert corrupt_value(True, 0) is False
        assert corrupt_value(False, 5) is True

    @pytest.mark.parametrize("value", [0, 1, 7, 255, 2 ** 40 + 3])
    @pytest.mark.parametrize("salt", [0, 1, 17])
    def test_integers_change_but_stay_nonnegative(self, value, salt):
        corrupted = corrupt_value(value, salt)
        assert corrupted != value
        assert corrupted >= 0
        # Deterministic: the same (value, salt) always lies the same way.
        assert corrupt_value(value, salt) == corrupted

    def test_negative_integers_flip_sign(self):
        assert corrupt_value(-3, 0) == 3

    def test_sequences_corrupt_their_first_corruptible_element(self):
        assert corrupt_value((None, 4, 5), 0) == (None, corrupt_value(4, 1), 5)
        assert corrupt_value([2, 3], 7) == [corrupt_value(2, 7), 3]

    @pytest.mark.parametrize("value", [None, "text", ("a", None), object()])
    def test_uncorruptible_values_return_none(self, value):
        assert corrupt_value(value, 0) is None


class TestByzantineBehavior:
    def test_rejects_unknown_program(self):
        with pytest.raises(SimulationError, match="known programs"):
            ByzantineBehavior({1}, "bribe")

    def test_rejects_bad_rate_and_start(self):
        with pytest.raises(SimulationError):
            ByzantineBehavior({1}, "corrupt", rate=1.5)
        with pytest.raises(SimulationError):
            ByzantineBehavior({1}, "corrupt", at=-1)

    def test_none_seed_means_seed_zero(self):
        assert ByzantineBehavior({1}, "silent", seed=None).seed == 0

    def test_acts_on_gates_by_sender_and_time(self):
        behavior = ByzantineBehavior({1, 3}, "silent", at=5)
        assert behavior.acts_on(_message(sender=1), 5)
        assert not behavior.acts_on(_message(sender=1), 4)  # before `at`
        assert not behavior.acts_on(_message(sender=2), 9)  # honest sender

    def test_lies_to_is_a_fixed_function_of_the_edge(self):
        behavior = ByzantineBehavior({1}, "equivocate", seed=4)
        first = [behavior.lies_to(1, receiver) for receiver in range(2, 40)]
        second = [behavior.lies_to(1, receiver) for receiver in range(2, 40)]
        assert first == second  # independent of call order / history
        assert any(first) and not all(first)  # a genuine split, not all/none

    def test_programs_tuple_is_the_public_contract(self):
        assert BYZANTINE_PROGRAMS == ("corrupt", "equivocate", "replay", "silent")


class TestSilentInjector:
    def test_suppresses_and_logs_compromised_sends(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "silent"))
        assert injector.verdict(_message(sender=1), 0) == DROP
        assert injector.verdict(_message(sender=3), 0) == DELIVER
        assert injector.event_log() == [[0, "byz-silent", 1, 2]]


class TestCorruptInjector:
    def test_mutates_payload_in_place_and_logs(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "corrupt", seed=2))
        message = _message(payload=40)
        assert injector.on_deliver(message, 3) is None
        assert message.payload == corrupt_value(40, salt=3)  # seed + 1
        assert injector.event_log() == [[3, "byz-corrupt", 1, 2]]

    def test_uncorruptible_payload_passes_unlogged(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "corrupt"))
        message = _message(payload="hello")
        assert injector.on_deliver(message, 0) is None
        assert message.payload == "hello"
        assert injector.event_log() == []

    def test_rate_zero_never_fires(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "corrupt", rate=0.0))
        message = _message(payload=9)
        injector.on_deliver(message, 0)
        assert message.payload == 9


class TestEquivocateInjector:
    def test_split_is_stable_per_receiver(self):
        behavior = ByzantineBehavior({1}, "equivocate", seed=6)
        injector = ByzantineInjector(behavior)
        for receiver in range(2, 30):
            outcomes = set()
            for _ in range(3):
                message = _message(receiver=receiver, payload=32)
                injector.on_deliver(message, 0)
                outcomes.add(message.payload)
            # The same edge always sees the same (true or false) value.
            assert len(outcomes) == 1
            assert (outcomes == {32}) != behavior.lies_to(1, receiver)

    def test_some_receivers_are_lied_to_and_some_are_not(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "equivocate", seed=6))
        payloads = set()
        for receiver in range(2, 30):
            message = _message(receiver=receiver, payload=32)
            injector.on_deliver(message, 0)
            payloads.add(message.payload)
        assert len(payloads) == 2  # the truth and one consistent lie


class TestReplayInjector:
    def test_first_message_becomes_the_stale_template(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "replay", rate=1.0))
        first = _message(payload=5, kind="A")
        assert injector.on_deliver(first, 0) is None  # observed, not replayed
        second = _message(payload=6, kind="B")
        replay = injector.on_deliver(second, 1)
        assert replay is not None
        assert (replay.kind, replay.payload) == ("A", 5)  # the stale content
        assert replay.sequence != first.sequence  # a fresh wire send
        assert injector.event_log() == [[1, "byz-replay", 1, 2]]

    def test_replayed_clones_are_never_re_tampered(self):
        injector = ByzantineInjector(ByzantineBehavior({1}, "replay", rate=1.0))
        injector.on_deliver(_message(payload=5), 0)
        replay = injector.on_deliver(_message(payload=6), 1)
        # When the kernel later delivers the clone, the injector must not
        # spawn a replay of the replay (bounded chains).
        assert injector.on_deliver(replay, 2) is None
        assert len(injector.event_log()) == 1


class TestInertAdversary:
    def test_empty_node_set_is_bit_identical_to_the_base_injector(self):
        injector = ByzantineInjector(ByzantineBehavior((), "equivocate"))
        message = _message(payload=7)
        assert injector.verdict(message, 0) == DELIVER
        assert injector.on_deliver(message, 0) is None
        assert message.payload == 7
        assert injector.event_log() == []
        assert injector.byzantine_nodes == []

    def test_injector_inherits_the_behavior_seed(self):
        injector = ByzantineInjector(ByzantineBehavior({2}, "silent", seed=9))
        assert injector.byzantine_nodes == [2]
