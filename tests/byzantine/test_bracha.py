"""Unit tests for Bracha reliable broadcast: thresholds, runs, rejection."""

import math

import pytest

from repro.byzantine import (
    BrachaConfig,
    BrachaRun,
    ByzantineBehavior,
    ByzantineInjector,
    complete_graph,
    run_bracha_broadcast,
)
from repro.network.errors import AlgorithmError, SimulationError


class TestBrachaConfig:
    def test_textbook_thresholds_for_n4_t1(self):
        config = BrachaConfig(n=4, t=1)
        assert config.echo_threshold == 3  # ceil((4 + 1 + 1) / 2)
        assert config.ready_support == 2  # t + 1
        assert config.ready_threshold == 3  # 2t + 1

    @pytest.mark.parametrize("n", range(1, 20))
    def test_echo_threshold_is_the_paper_ceiling(self, n):
        for t in range((n - 1) // 3 + 1):
            config = BrachaConfig(n=n, t=t)
            assert config.echo_threshold == math.ceil((n + t + 1) / 2)

    @pytest.mark.parametrize(
        ("n", "t"), [(3, 1), (4, 2), (6, 2), (9, 3), (12, 4), (1, 1)]
    )
    def test_rejects_t_at_or_above_a_third(self, n, t):
        with pytest.raises(AlgorithmError, match="n > 3t"):
            BrachaConfig(n=n, t=t)

    def test_rejection_message_names_the_tolerated_bound(self):
        with pytest.raises(AlgorithmError, match="at most t=1"):
            BrachaConfig(n=4, t=2)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(AlgorithmError):
            BrachaConfig(n=0, t=0)
        with pytest.raises(AlgorithmError):
            BrachaConfig(n=4, t=-1)

    def test_message_bits_adds_the_wave_tag(self):
        assert BrachaConfig(n=4, t=1).message_bits(8) == 10


class TestCompleteGraph:
    def test_shape(self):
        graph = complete_graph(5)
        assert sorted(graph.nodes()) == [1, 2, 3, 4, 5]
        assert graph.num_edges == 10

    def test_rejects_empty_group(self):
        with pytest.raises(AlgorithmError):
            complete_graph(0)


class TestFaultFreeRuns:
    @pytest.mark.parametrize("engine", ["sync", "async"])
    @pytest.mark.parametrize(("n", "t"), [(4, 1), (7, 2), (10, 3)])
    def test_every_node_delivers_the_senders_value(self, n, t, engine):
        run = run_bracha_broadcast(n, t, value=42, engine=engine)
        assert run.delivered == {node: 42 for node in range(1, n + 1)}
        assert run.fault_events == []

    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    def test_message_count_matches_the_closed_form(self, n):
        run = run_bracha_broadcast(n, (n - 1) // 3, value=9)
        # One INIT wave (n-1) plus full ECHO and READY waves (n(n-1) each).
        assert run.accountant.messages == (n - 1) * (2 * n + 1)
        assert run.accountant.bits == run.accountant.messages * (8 + 2)

    def test_single_node_group_delivers_to_itself(self):
        run = run_bracha_broadcast(1, 0, value=7)
        assert run.delivered == {1: 7}
        assert run.accountant.messages == 0

    def test_non_default_sender(self):
        run = run_bracha_broadcast(4, 1, value=3, sender=4)
        assert run.delivered == {node: 3 for node in range(1, 5)}

    def test_rejects_sender_outside_the_group(self):
        with pytest.raises(AlgorithmError, match="sender"):
            run_bracha_broadcast(4, 1, value=0, sender=5)

    def test_rejects_unknown_engine(self):
        with pytest.raises(SimulationError, match="engine"):
            run_bracha_broadcast(4, 1, value=0, engine="quantum")

    def test_runs_are_deterministic(self):
        first = run_bracha_broadcast(7, 2, value=11)
        second = run_bracha_broadcast(7, 2, value=11)
        assert first.delivered == second.delivered
        assert first.accountant.summary() == second.accountant.summary()


class TestUnderAttack:
    def test_silent_sender_delivers_nothing_anywhere(self):
        behavior = ByzantineBehavior({1}, "silent")
        run = run_bracha_broadcast(4, 1, value=5, faults=ByzantineInjector(behavior))
        assert run.honest_delivered({1}) == {2: None, 3: None, 4: None}
        assert all(event[1] == "byz-silent" for event in run.fault_events)
        assert run.fault_events  # the suppressed sends are on the record

    def test_honest_sender_survives_a_silent_minority(self):
        behavior = ByzantineBehavior({3}, "silent")
        run = run_bracha_broadcast(4, 1, value=5, faults=ByzantineInjector(behavior))
        assert run.honest_delivered({3}) == {1: 5, 2: 5, 4: 5}

    def test_equivocating_sender_cannot_split_the_honest_nodes(self):
        behavior = ByzantineBehavior({1}, "equivocate", seed=3)
        run = run_bracha_broadcast(7, 2, value=64, faults=ByzantineInjector(behavior))
        delivered = {
            value for value in run.honest_delivered({1}).values() if value is not None
        }
        assert len(delivered) <= 1  # agreement: at most one value group-wide

    def test_honest_delivered_filters_the_compromised_nodes(self):
        run = BrachaRun(
            config=BrachaConfig(n=4, t=1),
            sender=1,
            delivered={1: 9, 2: 9, 3: None, 4: 9},
            accountant=None,
        )
        assert run.honest_delivered({1, 3}) == {2: 9, 4: 9}
