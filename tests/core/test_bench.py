"""Tests for the benchmark trajectory harness (``repro bench``)."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    list_benchmarks,
    run_benchmark,
    run_benchmarks,
    write_report,
)
from repro.cli import build_parser, main
from repro.network.errors import AlgorithmError


class TestRegistry:
    def test_expected_benchmarks_registered(self):
        assert list_benchmarks() == [
            "bench_build_mst",
            "bench_build_st",
            "bench_findany",
            "bench_findmin",
            "bench_repair",
            "bench_testout",
        ]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(AlgorithmError):
            run_benchmark("bench_nonsense", 16)
        with pytest.raises(AlgorithmError):
            run_benchmarks(names=["bench_nonsense"], sizes=[16])


class TestRunBenchmark:
    def test_counters_pinned_and_record_shape(self):
        record = run_benchmark("bench_findany", 32, seed=5)
        assert record.counters_equal
        assert record.reference_counters is None
        assert record.n == 32 and record.m > 0
        assert record.wall_s_fast > 0 and record.wall_s_reference > 0
        assert set(record.counters) == {
            "messages",
            "bits",
            "rounds",
            "broadcast_echoes",
        }
        payload = record.to_dict()
        assert "reference_counters" not in payload

    def test_report_structure(self, tmp_path):
        report = run_benchmarks(
            names=["bench_testout", "bench_repair"], sizes=[24], seed=3
        )
        assert report["schema"] == SCHEMA
        assert report["counters_equal"] is True
        assert [r["benchmark"] for r in report["results"]] == [
            "bench_testout",
            "bench_repair",
        ]
        path = write_report(report, str(tmp_path / "bench.json"))
        assert json.load(open(path)) == report

    def test_sizes_override_applies_to_all(self):
        report = run_benchmarks(names=["bench_build_st"], sizes=[16, 20])
        assert [r["n"] for r in report["results"]] == [16, 20]


class TestBenchCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick is True
        assert args.out == "BENCH_PR4.json"
        assert args.benchmarks is None
        assert args.baseline is None

    def test_bench_command_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "--benchmarks",
                "bench_findany",
                "--sizes",
                "24",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters_equal"] is True
        assert json.load(open(out)) == report

    def test_bench_command_table_without_file(self, capsys):
        code = main(
            ["bench", "--benchmarks", "bench_testout", "--sizes", "20", "--out", "-"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bench_testout" in out
        assert "speedup" in out
