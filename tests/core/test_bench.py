"""Tests for the benchmark trajectory harness (``repro bench``)."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    compare_to_baseline,
    list_benchmarks,
    run_benchmark,
    run_benchmarks,
    write_report,
)
from repro.cli import build_parser, main
from repro.network.errors import AlgorithmError


class TestRegistry:
    def test_expected_benchmarks_registered(self):
        assert list_benchmarks() == [
            "bench_broadcast_byzantine",
            "bench_broadcast_byzantine_sparse",
            "bench_build_mst",
            "bench_build_st",
            "bench_findany",
            "bench_findmin",
            "bench_repair",
            "bench_repair_batched",
            "bench_service_throughput",
            "bench_sketch_pass",
            "bench_testout",
        ]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(AlgorithmError):
            run_benchmark("bench_nonsense", 16)
        with pytest.raises(AlgorithmError):
            run_benchmarks(names=["bench_nonsense"], sizes=[16])


class TestRunBenchmark:
    def test_counters_pinned_and_record_shape(self):
        record = run_benchmark("bench_findany", 32, seed=5)
        assert record.counters_equal
        assert record.reference_counters is None
        assert record.n == 32 and record.m > 0
        assert record.wall_s_fast > 0 and record.wall_s_reference > 0
        assert set(record.counters) == {
            "messages",
            "bits",
            "rounds",
            "broadcast_echoes",
        }
        payload = record.to_dict()
        assert "reference_counters" not in payload

    def test_report_structure(self, tmp_path):
        report = run_benchmarks(
            names=["bench_testout", "bench_repair"], sizes=[24], seed=3
        )
        assert report["schema"] == SCHEMA
        assert report["counters_equal"] is True
        assert [r["benchmark"] for r in report["results"]] == [
            "bench_testout",
            "bench_repair",
        ]
        path = write_report(report, str(tmp_path / "bench.json"))
        assert json.load(open(path)) == report

    def test_sizes_override_applies_to_all(self):
        report = run_benchmarks(names=["bench_build_st"], sizes=[16, 20])
        assert [r["n"] for r in report["results"]] == [16, 20]

    def test_mem_flag_records_tracemalloc_peaks(self):
        record = run_benchmark("bench_testout", 20, seed=1, mem=True)
        assert record.counters_equal
        assert record.peak_kb_fast is not None and record.peak_kb_fast > 0
        assert record.peak_kb_reference is not None
        payload = record.to_dict()
        assert payload["peak_kb_fast"] == record.peak_kb_fast
        # Without --mem the memory fields stay out of the report entirely.
        lean = run_benchmark("bench_testout", 20, seed=1).to_dict()
        assert "peak_kb_fast" not in lean and "peak_kb_reference" not in lean

    def test_reference_cutoff_skips_reference_pass(self, monkeypatch):
        from repro.bench import BENCHMARKS

        monkeypatch.setattr(BENCHMARKS["bench_sketch_pass"], "reference_cutoff", 16)
        record = run_benchmark("bench_sketch_pass", 24, seed=4)
        assert record.wall_s_reference is None
        assert record.speedup is None
        assert record.counters_equal  # vacuous: nothing to compare
        payload = record.to_dict()
        assert payload["speedup"] is None and payload["wall_s_reference"] is None

    def test_large_profile_appends_scaling_sizes(self, monkeypatch):
        from repro.bench import BENCHMARKS

        bench = BENCHMARKS["bench_sketch_pass"]
        monkeypatch.setattr(bench, "sizes", (16,))
        monkeypatch.setattr(bench, "large_sizes", (24,))
        monkeypatch.setattr(bench, "reference_cutoff", 16)
        report = run_benchmarks(names=["bench_sketch_pass"], profile="large")
        assert [r["n"] for r in report["results"]] == [16, 24]
        assert report["results"][0]["speedup"] is not None
        assert report["results"][1]["speedup"] is None
        assert report["profile"] == "large"
        with pytest.raises(AlgorithmError):
            run_benchmarks(names=["bench_sketch_pass"], profile="huge")

    def test_byzantine_overhead_counters(self):
        record = run_benchmark("bench_broadcast_byzantine", 32, seed=2)
        assert record.counters_equal  # substrate charging is path-invariant
        counters = record.counters
        assert counters["bracha_messages"] > counters["plain_messages"]
        assert counters["bracha_rounds"] == 3 * counters["plain_rounds"]
        assert counters["overhead_x100"] > 100  # hardening is never free
        assert all(isinstance(value, int) for value in counters.values())


def _report(*rows):
    return {
        "schema": SCHEMA,
        "results": [
            {"benchmark": name, "n": n, "speedup": speedup}
            for name, n, speedup in rows
        ],
    }


class TestCompareToBaseline:
    def test_single_row_noise_within_floor_passes(self):
        # A one-sample -31% wobble on one benchmark (the same commit scores
        # 3.0x or 4.3x on a loaded machine) must not fail the gate while the
        # aggregate trajectory is healthy.
        baseline = _report(("a", 64, 4.32), ("b", 64, 10.0), ("c", 64, 2.0))
        current = _report(("a", 64, 3.0), ("b", 64, 10.5), ("c", 64, 2.1))
        comparison = compare_to_baseline(current, baseline)
        assert comparison["regressions"] == []
        assert not comparison["aggregate_regressed"]
        flagged = [r["benchmark"] for r in comparison["rows"] if r["regressed"]]
        assert flagged == []

    def test_aggregate_decline_fails(self):
        baseline = _report(("a", 64, 4.0), ("b", 64, 10.0), ("c", 64, 2.0))
        current = _report(("a", 64, 2.8), ("b", 64, 7.0), ("c", 64, 1.4))
        comparison = compare_to_baseline(current, baseline)
        assert comparison["aggregate_regressed"]
        assert comparison["aggregate_ratio"] == 0.7

    def test_single_crater_fails_even_with_healthy_aggregate(self):
        baseline = _report(("a", 64, 10.0), ("b", 64, 2.0), ("c", 64, 2.0))
        current = _report(("a", 64, 3.0), ("b", 64, 4.0), ("c", 64, 4.0))
        comparison = compare_to_baseline(current, baseline)
        assert not comparison["aggregate_regressed"]
        assert comparison["regressions"] == ["a@n=64"]

    def test_partial_run_is_reported_not_silently_passed(self):
        baseline = _report(("a", 64, 4.0), ("b", 64, 2.0))
        current = _report(("a", 64, 4.0), ("z", 64, 1.0))
        comparison = compare_to_baseline(current, baseline)
        assert comparison["missing"] == ["z@n=64"]
        assert comparison["uncompared"] == ["b@n=64"]

    def test_fast_only_rows_are_visible_but_ungated(self):
        # Rows above the reference cutoff carry speedup=None on either side;
        # they must neither crash the comparison nor count as regressions.
        baseline = _report(("a", 64, 4.0), ("big", 100_000, None))
        current = _report(("a", 64, 4.0), ("big", 100_000, None))
        comparison = compare_to_baseline(current, baseline)
        assert comparison["regressions"] == []
        assert not comparison["aggregate_regressed"]
        big = next(r for r in comparison["rows"] if r["benchmark"] == "big")
        assert big["delta_pct"] is None and big["regressed"] is False


class TestBenchCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick is True
        assert args.out == "BENCH_PR10.json"
        assert args.benchmarks is None
        assert args.baseline is None
        assert args.profile == "default"
        assert args.mem is False

    def test_bench_command_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "--benchmarks",
                "bench_findany",
                "--sizes",
                "24",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters_equal"] is True
        assert json.load(open(out)) == report

    def test_bench_command_table_without_file(self, capsys):
        code = main(
            ["bench", "--benchmarks", "bench_testout", "--sizes", "20", "--out", "-"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bench_testout" in out
        assert "speedup" in out

    def test_bench_table_renders_substrate_counters(self, capsys):
        # The byzantine benchmarks carry plain_*/bracha_* counters with no
        # bare "messages" key; the table view must not choke on them.
        code = main(
            [
                "bench",
                "--benchmarks",
                "bench_broadcast_byzantine",
                "--sizes",
                "16",
                "--out",
                "-",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bench_broadcast_byzantine" in out
