"""Tests for TestOut / HP-TestOut (Lemma 1 and Section 2 semantics)."""

import pytest

from repro.core.config import AlgorithmConfig
from repro.core.testout import CutTester
from repro.network.accounting import MessageAccountant
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph

#: The two crossing edges these tests reason about ((3,4) light, (1,6) heavy);
#: the shared ``two_fragment_graph`` fixture builds the rest.
CUT_EDGES = ((3, 4, 10), (1, 6, 20))


def _tester(graph, forest, seed=0, c=1.0):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=c)
    acct = MessageAccountant()
    return CutTester(graph, forest, config, acct), acct


class TestTreeStatistics:
    def test_statistics_values(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest)
        stats = tester.tree_statistics(1)
        assert stats.size == 3
        # endpoints incident to {1,2,3}: edges (1,2),(2,3) twice + (3,4),(1,6) once
        assert stats.num_endpoints == 2 + 2 + 1 + 1
        # Largest edge number incident to {1,2,3} is (3,4); largest augmented
        # weight is the heaviest incident edge (1,6) with weight 20.
        assert stats.max_edge_number == graph.edge_number(3, 4)
        assert stats.max_augmented_weight == graph.augmented_weight(1, 6)
        assert stats.has_incident_edges

    def test_isolated_node_statistics(self):
        graph = Graph()
        graph.add_node(1)
        graph.add_node(2)
        forest = SpanningForest(graph)
        tester, _ = _tester(graph, forest)
        stats = tester.tree_statistics(1)
        assert stats.size == 1
        assert not stats.has_incident_edges

    def test_statistics_cost_is_one_broadcast_echo(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, acct = _tester(graph, forest)
        tester.tree_statistics(1)
        assert acct.broadcast_echoes == 1
        assert acct.messages == 2 * 2  # 2 tree edges in {1,2,3}


class TestTestOut:
    def test_never_false_positive_on_empty_cut(self, two_fragment_graph):
        graph, forest = two_fragment_graph(())
        tester, _ = _tester(graph, forest, seed=1)
        # No edge leaves {1,2,3}: TestOut must return False every time.
        assert all(not tester.test_out(1) for _ in range(40))

    def test_detects_cut_with_constant_probability(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest, seed=2)
        hits = sum(tester.test_out(1) for _ in range(200))
        # q >= 1/8; demand at least a 6% hit rate to keep flakiness negligible.
        assert hits >= 12

    def test_respects_weight_range(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest, seed=3)
        # Only cut edges have weight 10 ((3,4)) and 20 ((1,6)); restrict to a
        # range that excludes both -> always False.
        low = graph.augmented_weight(1, 2)
        high = graph.augmented_weight(5, 6)
        assert all(
            not tester.test_out(1, low=0, high=min(low, high) - 1) for _ in range(30)
        )

    def test_cost_is_one_broadcast_echo_with_one_bit_echo(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, acct = _tester(graph, forest, seed=4)
        before = acct.snapshot()
        tester.test_out(1)
        delta = acct.since(before)
        assert delta.broadcast_echoes == 1
        assert delta.messages == 2 * 2
        # echo messages carry exactly 1 bit each: total bits = 2 broadcasts
        # (hash description) + 2 echoes (1 bit each)
        per_kind = acct.per_kind()
        assert per_kind.get("testout:echo") == 2

    def test_word_tests_multiple_ranges_in_one_broadcast_echo(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, acct = _tester(graph, forest, seed=5)
        ranges = [(0, 10), (11, 10 ** 6), (None, None)]
        before = acct.snapshot()
        word = tester.test_out_word(1, ranges=ranges)
        delta = acct.since(before)
        assert delta.broadcast_echoes == 1
        assert 0 <= word < 2 ** len(ranges)

    def test_singleton_tree_with_incident_edges(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        forest.unmark(1, 2)
        forest.unmark(2, 3)
        tester, acct = _tester(graph, forest, seed=6)
        # Node 1 alone: its incident edges (1,2) and (1,6) all leave the tree.
        hits = sum(tester.test_out(1) for _ in range(120))
        assert hits >= 8
        assert acct.messages == 0  # singleton tree: purely local computation


class TestHPTestOut:
    def test_always_correct_on_empty_cut(self, two_fragment_graph):
        graph, forest = two_fragment_graph(())
        tester, _ = _tester(graph, forest, seed=7)
        assert all(not tester.hp_test_out(1) for _ in range(30))

    def test_detects_cut_whp(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest, seed=8, c=2.0)
        assert all(tester.hp_test_out(1) for _ in range(30))

    def test_weight_range_restriction(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest, seed=9)
        cut_low = graph.augmented_weight(3, 4)
        cut_high = graph.augmented_weight(1, 6)
        # Range containing only the lighter cut edge.
        assert tester.hp_test_out(1, low=cut_low, high=cut_low)
        # Range strictly between the two cut edges: empty.
        assert not tester.hp_test_out(1, low=cut_low + 1, high=cut_high - 1)

    def test_reuses_supplied_prime_in_single_broadcast_echo(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, acct = _tester(graph, forest, seed=10)
        stats = tester.tree_statistics(1)
        from repro.core.primes import prime_for_field

        p = prime_for_field(stats.max_edge_number, stats.num_endpoints, 0.001)
        before = acct.snapshot()
        tester.hp_test_out(1, field_prime=p)
        delta = acct.since(before)
        assert delta.broadcast_echoes == 1

    def test_runs_statistics_when_prime_not_supplied(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, acct = _tester(graph, forest, seed=11)
        before = acct.snapshot()
        tester.hp_test_out(1)
        delta = acct.since(before)
        assert delta.broadcast_echoes == 2  # stats + the test itself

    def test_symmetric_from_other_fragment(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest, seed=12)
        assert tester.hp_test_out(4)
        assert tester.hp_test_out(6)


class TestTrueCutEdges:
    def test_ground_truth_helper(self, two_fragment_graph):
        graph, forest = two_fragment_graph(CUT_EDGES)
        tester, _ = _tester(graph, forest)
        cut = tester.true_cut_edges(1)
        assert {(e.u, e.v) for e in cut} == {(3, 4), (1, 6)}
        restricted = tester.true_cut_edges(
            1, low=graph.augmented_weight(3, 4), high=graph.augmented_weight(3, 4)
        )
        assert [(e.u, e.v) for e in restricted] == [(3, 4)]
