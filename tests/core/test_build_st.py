"""Tests for Build-ST (Lemma 6 / Theorem 1.1) including cycle breaking."""

import pytest

from repro.core.build_mst import BuildMST
from repro.core.build_st import BuildST
from repro.core.config import AlgorithmConfig
from repro.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
)
from repro.network.graph import Graph
from repro.verify import is_spanning_forest


def _build(graph, seed=0, **kwargs):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, **kwargs)
    return BuildST(graph, config=config).run()


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_spanning(self, seed):
        graph = random_connected_graph(24, 80, seed=seed)
        report = _build(graph, seed=seed)
        assert is_spanning_forest(report.forest)
        assert report.forest.is_forest()

    def test_cycle_graph(self):
        graph = cycle_graph(9, seed=1)
        report = _build(graph, seed=1)
        assert is_spanning_forest(report.forest)
        # A spanning tree of an n-cycle has exactly n-1 edges.
        assert len(report.marked_edges) == 8

    def test_grid(self):
        graph = grid_graph(4, 5, seed=2)
        report = _build(graph, seed=2)
        assert is_spanning_forest(report.forest)

    def test_complete_graph(self):
        graph = complete_graph(12, seed=3)
        report = _build(graph, seed=3)
        assert is_spanning_forest(report.forest)
        assert len(report.marked_edges) == 11

    def test_disconnected_graph(self):
        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 1)
        graph.add_edge(1, 3, 1)
        graph.add_edge(10, 11, 1)
        graph.add_node(15)
        report = _build(graph, seed=4)
        assert is_spanning_forest(report.forest)
        assert len(report.marked_edges) == 3

    def test_tree_input_marks_every_edge(self):
        from repro.generators import path_graph

        graph = path_graph(10, seed=5)
        report = _build(graph, seed=5)
        assert len(report.marked_edges) == 9

    @pytest.mark.parametrize("seed", range(6))
    def test_cycle_breaking_never_leaves_a_cycle(self, seed):
        """Across many seeds the final marked subgraph must be acyclic."""
        graph = random_connected_graph(18, 60, seed=seed + 40)
        report = _build(graph, seed=seed)
        report.forest.check_forest()


class TestCost:
    def test_st_cheaper_than_mst_on_same_graph(self):
        graph_a = random_connected_graph(28, 120, seed=6)
        graph_b = random_connected_graph(28, 120, seed=6)
        st_report = _build(graph_a, seed=7)
        mst_config = AlgorithmConfig(n=28, seed=7)
        mst_report = BuildMST(graph_b, config=mst_config).run()
        # Lemma 6 vs Lemma 3: ST construction saves a log n / log log n factor.
        assert st_report.messages < mst_report.messages

    def test_messages_positive_and_phases_bounded(self):
        graph = random_connected_graph(24, 100, seed=8)
        report = _build(graph, seed=8)
        assert report.messages > 0
        assert report.phases <= AlgorithmConfig(n=24).build_phase_budget()

    def test_seed_reproducibility(self):
        graph_a = random_connected_graph(20, 70, seed=9)
        graph_b = random_connected_graph(20, 70, seed=9)
        a = _build(graph_a, seed=11)
        b = _build(graph_b, seed=11)
        assert a.messages == b.messages
        assert a.marked_edges == b.marked_edges
