"""Unit tests for the node-local sketch values carried by echoes."""

import random

import pytest

from repro.core.hashing import random_odd_hash, random_pairwise_hash
from repro.core.sketches import (
    local_parity,
    local_prefix_parities,
    local_range_parities,
    local_xor_below,
    pack_parity_word,
    prefix_flip_masks,
    prefix_parity_word,
    range_parity_word,
    ranges_are_disjoint_sorted,
    unpack_parity_word,
    xor_below_from_numbers,
    xor_combine,
    xor_vector_combine,
)


class TestParityWords:
    def test_pack_unpack_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        word = pack_parity_word(bits)
        assert unpack_parity_word(word, len(bits)) == bits

    def test_pack_empty(self):
        assert pack_parity_word([]) == 0

    def test_unpack_width(self):
        assert unpack_parity_word(0b101, 5) == [1, 0, 1, 0, 0]


class TestCombiners:
    def test_xor_combine(self):
        assert xor_combine(0b1100, [0b1010, 0b0001]) == 0b0111

    def test_xor_combine_no_children(self):
        assert xor_combine(7, []) == 7

    def test_xor_vector_combine(self):
        local = [1, 0, 1]
        children = [[1, 1, 0], [0, 1, 1]]
        assert xor_vector_combine(local, children) == [0, 0, 0]

    def test_xor_vector_combine_preserves_length(self):
        assert xor_vector_combine([0, 1], []) == [0, 1]


class TestLocalParity:
    def test_matches_hash_parity(self):
        rng = random.Random(0)
        h = random_odd_hash(1000, rng)
        edges = [3, 77, 400, 999]
        assert local_parity(edges, h) == sum(h(e) for e in edges) % 2


class TestRangeParities:
    def test_edges_counted_only_in_matching_ranges(self):
        rng = random.Random(1)
        h = random_odd_hash(10 ** 4, rng)
        # (augmented weight, edge number) pairs
        edges = [(5, 100), (15, 200), (25, 300)]
        ranges = [(0, 9), (10, 19), (20, 29)]
        parities = local_range_parities(edges, h, ranges)
        assert parities == [h(100), h(200), h(300)]

    def test_overlapping_ranges_count_twice(self):
        rng = random.Random(2)
        h = random_odd_hash(10 ** 4, rng)
        edges = [(5, 123)]
        ranges = [(0, 9), (0, 9)]
        parities = local_range_parities(edges, h, ranges)
        assert parities[0] == parities[1] == h(123)

    def test_same_hash_shared_across_ranges(self):
        """The same hash function is reused for every sub-range (Section 3.1)."""
        rng = random.Random(3)
        h = random_odd_hash(10 ** 4, rng)
        edges = [(5, 111), (6, 111)]
        # Same edge number listed twice inside one range -> parity cancels.
        parities = local_range_parities(edges, h, [(0, 10)])
        assert parities == [0]


class TestPrefixParities:
    def test_last_entry_counts_all_edges(self):
        rng = random.Random(4)
        h = random_pairwise_hash(10 ** 5, 64, rng)
        edges = [7, 19, 23, 54321]
        parities = local_prefix_parities(edges, h)
        assert len(parities) == h.log_range + 1
        assert parities[-1] == len(edges) % 2

    def test_prefix_monotonicity_of_counts(self):
        """Membership in [2^i] is monotone in i, so counts only grow."""
        rng = random.Random(5)
        h = random_pairwise_hash(10 ** 5, 32, rng)
        edges = [rng.randrange(1, 10 ** 5) for _ in range(10)]
        counts = [
            sum(1 for e in edges if h(e) < (1 << i)) for i in range(h.log_range + 1)
        ]
        assert counts == sorted(counts)
        parities = local_prefix_parities(edges, h)
        assert parities == [count % 2 for count in counts]

    def test_no_edges_gives_zero_vector(self):
        rng = random.Random(6)
        h = random_pairwise_hash(1000, 16, rng)
        assert local_prefix_parities([], h) == [0] * (h.log_range + 1)


class TestXorBelow:
    def test_xor_of_selected_edges(self):
        rng = random.Random(7)
        h = random_pairwise_hash(10 ** 5, 64, rng)
        edges = [rng.randrange(1, 10 ** 5) for _ in range(12)]
        for prefix in range(h.log_range + 1):
            expected = 0
            for e in edges:
                if h(e) < (1 << prefix):
                    expected ^= e
            assert local_xor_below(edges, h, prefix) == expected

    def test_single_selected_edge_is_recovered(self):
        rng = random.Random(8)
        h = random_pairwise_hash(10 ** 5, 64, rng)
        edges = [11111, 22222, 33333]
        # pick a prefix where exactly one edge lands (if any)
        for prefix in range(h.log_range + 1):
            selected = [e for e in edges if h(e) < (1 << prefix)]
            if len(selected) == 1:
                assert local_xor_below(edges, h, prefix) == selected[0]
                break


class TestFastKernelsMatchReference:
    """The one-pass word kernels must agree with the per-level reference."""

    def _random_incidence(self, rng, count=40, max_weight=10 ** 6):
        pairs = sorted(
            (rng.randrange(0, max_weight), rng.randrange(1, 10 ** 5))
            for _ in range(count)
        )
        weights = [w for w, _ in pairs]
        numbers = [e for _, e in pairs]
        return weights, numbers

    def test_range_parity_word_matches_reference(self):
        for seed in range(8):
            rng = random.Random(seed)
            h = random_odd_hash(10 ** 5, rng)
            weights, numbers = self._random_incidence(rng)
            cut = sorted(rng.sample(range(0, 10 ** 6), 6))
            ranges = list(zip([0] + [c + 1 for c in cut], cut + [10 ** 6]))
            ranges = [(low, high) for low, high in ranges if low <= high]
            assert ranges_are_disjoint_sorted(ranges)
            lows = [low for low, _ in ranges]
            highs = [high for _, high in ranges]
            word = range_parity_word(weights, numbers, h, lows, highs)
            reference = local_range_parities(list(zip(weights, numbers)), h, ranges)
            assert unpack_parity_word(word, len(ranges)) == reference

    def test_range_parity_word_narrow_window(self):
        rng = random.Random(99)
        h = random_odd_hash(10 ** 5, rng)
        weights, numbers = self._random_incidence(rng)
        lo, hi = weights[10], weights[20]
        word = range_parity_word(weights, numbers, h, [lo], [hi])
        reference = local_range_parities(
            list(zip(weights, numbers)), h, [(lo, hi)]
        )
        assert unpack_parity_word(word, 1) == reference

    def test_ranges_are_disjoint_sorted(self):
        assert ranges_are_disjoint_sorted([(0, 4), (5, 9), (10, 10)])
        assert not ranges_are_disjoint_sorted([(0, 5), (5, 9)])
        assert not ranges_are_disjoint_sorted([(5, 9), (0, 4)])
        assert ranges_are_disjoint_sorted([(3, 7)])
        assert ranges_are_disjoint_sorted([])

    def test_prefix_parity_word_matches_reference(self):
        for seed in range(8):
            rng = random.Random(seed)
            h = random_pairwise_hash(10 ** 5, 64, rng)
            numbers = [rng.randrange(1, 10 ** 5) for _ in range(30)]
            masks = prefix_flip_masks(h.log_range)
            word = prefix_parity_word(numbers, h, masks)
            assert unpack_parity_word(word, h.log_range + 1) == local_prefix_parities(
                numbers, h
            )

    def test_prefix_parity_word_empty(self):
        rng = random.Random(1)
        h = random_pairwise_hash(1000, 16, rng)
        assert prefix_parity_word([], h, prefix_flip_masks(h.log_range)) == 0

    def test_xor_below_from_numbers_matches_reference(self):
        rng = random.Random(13)
        h = random_pairwise_hash(10 ** 5, 64, rng)
        numbers = [rng.randrange(1, 10 ** 5) for _ in range(25)]
        for prefix in range(h.log_range + 1):
            assert xor_below_from_numbers(numbers, h, prefix) == local_xor_below(
                numbers, h, prefix
            )
