"""Tests for FindMin / FindMin-C (Lemma 2)."""

import pytest

from repro.core.config import AlgorithmConfig
from repro.core.findmin import FindMin
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.accounting import MessageAccountant
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


def _finder(graph, forest, seed=0, **kwargs):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, **kwargs)
    return FindMin(graph, forest, config, MessageAccountant())


class TestFindMinSmall:
    def test_finds_lightest_cut_edge(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        finder = _finder(graph, forest, seed=1)
        result = finder.find_min(1)
        assert result.edge is not None
        assert result.edge.endpoints == (3, 4)
        assert not result.verified_empty

    def test_same_answer_from_both_sides(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        for seed in range(3):
            left = _finder(graph, forest, seed=seed).find_min(1)
            right = _finder(graph, forest, seed=seed + 100).find_min(4)
            assert left.edge.endpoints == right.edge.endpoints == (3, 4)

    def test_verified_empty_when_no_cut_edge(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(3, 4, 2)
        forest = SpanningForest(graph, marked=[(1, 2), (3, 4)])
        finder = _finder(graph, forest, seed=2)
        result = finder.find_min(1)
        assert result.edge is None
        assert result.verified_empty

    def test_isolated_component_returns_empty_without_communication(self):
        graph = Graph(id_bits=4)
        graph.add_node(7)
        graph.add_edge(1, 2, 1)
        forest = SpanningForest(graph, marked=[(1, 2)])
        finder = _finder(graph, forest, seed=3)
        result = finder.find_min(7)
        assert result.edge is None
        assert result.verified_empty
        assert result.cost.messages == 0

    def test_singleton_fragment_with_neighbors(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        forest.unmark(1, 2)
        finder = _finder(graph, forest, seed=4)
        result = finder.find_min(1)
        # Node 1 alone: incident edges (1,2,w=1) and (1,6,w=20); minimum is (1,2).
        assert result.edge.endpoints == (1, 2)
        # A singleton tree never sends a message.
        assert result.cost.messages == 0

    def test_capped_variant_returns_correct_edge_or_empty(self, two_fragment_graph):
        # FindMin-C errs (returns a non-lightest edge) only when HP-TestOut
        # errs, i.e. with probability <= n^{-c-1} per call; use c=3 so that
        # across 20 seeded runs on this 6-node graph the correct behaviour is
        # overwhelmingly likely (and, being seeded, deterministic).
        graph, forest = two_fragment_graph()
        outcomes = set()
        for seed in range(20):
            finder = _finder(graph, forest, seed=seed, c=3.0)
            result = finder.find_min_capped(1)
            if result.edge is not None:
                assert result.edge.endpoints == (3, 4)
                outcomes.add("edge")
            else:
                outcomes.add("empty")
        # With probability >= 2/3 per run the edge is found; over 20 seeds we
        # should certainly see at least one success.
        assert "edge" in outcomes


class TestFindMinRandomGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_ground_truth_minimum(self, seed):
        graph = random_connected_graph(20, 60, seed=seed)
        forest = random_spanning_tree_forest(graph, seed=seed + 50)
        # Split the spanning tree into two fragments by removing one edge.
        key = sorted(forest.marked_edges)[seed]
        forest.unmark(*key)
        finder = _finder(graph, forest, seed=seed, c=2.0)
        root = key[0]
        component = forest.component_of(root)
        result = finder.find_min(root)
        cut = forest.outgoing_edges(component)
        assert cut, "test setup should leave a non-empty cut"
        true_min = min(cut, key=lambda e: e.augmented_weight(graph.id_bits))
        assert result.edge == true_min

    def test_cost_scales_with_fragment_size_not_graph_size(self):
        graph = random_connected_graph(40, 150, seed=9)
        forest = random_spanning_tree_forest(graph, seed=9)
        key = sorted(forest.marked_edges)[0]
        forest.unmark(*key)
        finder = _finder(graph, forest, seed=9)
        root = key[0]
        size = len(forest.component_of(root))
        result = finder.find_min(root)
        # Each broadcast-and-echo costs 2(size-1) messages; the number of
        # B&Es is O(log n / log log n) with moderate constants.
        assert result.cost.messages <= 2 * (size - 1) * (result.broadcast_echoes)

    def test_iterations_within_budget(self):
        graph = random_connected_graph(24, 80, seed=4)
        forest = random_spanning_tree_forest(graph, seed=4)
        key = sorted(forest.marked_edges)[2]
        forest.unmark(*key)
        config = AlgorithmConfig(n=24, seed=4)
        finder = FindMin(graph, forest, config, MessageAccountant())
        result = finder.run(key[0], capped=False)
        assert result.iterations <= config.findmin_budget(graph.max_augmented_weight())


class TestRangeSplitting:
    def test_split_covers_range_without_overlap(self):
        ranges = FindMin._split_range(0, 100, 8)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b + 1 == c
        assert len(ranges) <= 8

    def test_split_single_value(self):
        assert FindMin._split_range(5, 5, 8) == [(5, 5)]

    def test_split_range_smaller_than_word(self):
        ranges = FindMin._split_range(10, 13, 8)
        assert ranges == [(10, 10), (11, 11), (12, 12), (13, 13)]

    def test_split_rejects_inverted_range(self):
        from repro.network.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            FindMin._split_range(10, 5, 4)

    def test_lowest_set_bit(self):
        assert FindMin._lowest_set_bit(0b0, 4) is None
        assert FindMin._lowest_set_bit(0b1000, 4) == 3
        assert FindMin._lowest_set_bit(0b0110, 4) == 1
