"""Batched columnar kernels == per-node kernels, word for word.

The dispatch in :func:`repro.fastpath.should_batch` is wall-clock-only, so
every batched kernel (``*_words_all``, ``hp_products_all``) must return, for
every node of the graph, exactly the word its per-node counterpart computes
from that node's :class:`IncidentArrays` — over random graphs, random seeds,
both weight orderings, and with the numpy tier both active and forced off
(the tier gates in :mod:`repro.core.sketches` may only change wall clock,
never a word).
"""

import random

import pytest

import repro.accel as accel
from repro.core.hashing import (
    OddHashFunction,
    PairwiseIndependentHash,
    random_odd_hash,
    random_pairwise_hash,
)
from repro.core.sketches import (
    hp_products_all,
    prefix_flip_masks,
    prefix_parity_word,
    prefix_parity_words_all,
    range_parity_word,
    range_parity_words_all,
    xor_below_from_numbers,
    xor_below_words_all,
)
from repro.network.columnar import ColumnarGraph
from repro.network.errors import GraphError
from repro.network.graph import Graph


def random_graph(seed: int, n: int = 24, ordering: str = "random") -> Graph:
    """A random graph with isolated nodes and a controlled weight ordering.

    ``ordering`` pins the relationship between edge-number order and
    weight order: "ascending" makes heavier edges have larger numbers,
    "descending" inverts it (the aug-sorted mirrors then reverse the slot
    order), "random" decouples them.
    """
    rng = random.Random(seed)
    graph = Graph(id_bits=8)
    for node in range(1, n + 1):
        graph.add_node(node)  # keep some isolated nodes in every sample
    pairs = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
    chosen = rng.sample(pairs, k=min(3 * n, len(pairs)))
    chosen.sort()
    for index, (u, v) in enumerate(chosen):
        if ordering == "ascending":
            weight = index + 1
        elif ordering == "descending":
            weight = len(chosen) - index
        else:
            weight = rng.randrange(1, 1 << 10)
        graph.add_edge(u, v, weight=weight)
    return graph


def random_ranges(rng: random.Random, max_augmented: int, count: int):
    """Sorted, disjoint (lows, highs) covering random spans of the weights.

    Draws with ``randrange`` rather than ``sample`` so the bound space may
    exceed ``ssize_t`` (augmented weights past 64 bits when ``fits64`` is
    off); duplicate draws only make a span empty, never overlapping.
    """
    bounds = sorted(rng.randrange(max_augmented + 2) for _ in range(2 * count))
    lows = bounds[0::2]
    highs = [max(high - 1, low) for low, high in zip(lows, bounds[1::2])]
    return lows, highs


def assert_all_kernels_match(graph: Graph, rng: random.Random) -> None:
    """Every batched kernel equals its per-node counterpart on ``graph``."""
    cols = graph.columnar()
    nodes = graph.nodes()
    assert cols.ids == nodes

    max_number = max(cols.max_number, 2)
    odd_hash = random_odd_hash(max_number, rng)
    lows, highs = random_ranges(rng, cols.max_augmented, rng.randrange(1, 9))
    words = range_parity_words_all(cols, odd_hash, lows, highs)
    for node in nodes:
        arrays = graph.incident_arrays(node)
        assert words[cols.pos[node]] == range_parity_word(
            arrays.aug_sorted, arrays.numbers_by_aug, odd_hash, lows, highs
        )

    range_size = 1 << rng.randrange(2, 10)
    pairwise = random_pairwise_hash(max_number, range_size, rng)
    masks = prefix_flip_masks(pairwise.log_range)
    words = prefix_parity_words_all(cols, pairwise, masks)
    for node in nodes:
        arrays = graph.incident_arrays(node)
        assert words[cols.pos[node]] == prefix_parity_word(
            arrays.numbers, pairwise, masks
        )

    for prefix_exponent in (0, rng.randrange(0, pairwise.log_range + 1)):
        words = xor_below_words_all(cols, pairwise, prefix_exponent)
        for node in nodes:
            arrays = graph.incident_arrays(node)
            assert words[cols.pos[node]] == xor_below_from_numbers(
                arrays.numbers, pairwise, prefix_exponent
            )

    p = 2**31 - 1
    alpha = rng.randrange(1, p)
    low = rng.randrange(0, cols.max_augmented + 1)
    high = rng.randrange(low, cols.max_augmented + 1)
    products = hp_products_all(cols, alpha, p, low, high)
    for node in nodes:
        arrays = graph.incident_arrays(node)
        up_product = down_product = 1
        for weight, number, up in zip(
            arrays.aug_sorted, arrays.numbers_by_aug, arrays.up_by_aug
        ):
            if low <= weight <= high:
                if up:
                    up_product = (up_product * (alpha - number)) % p
                else:
                    down_product = (down_product * (alpha - number)) % p
        assert products[cols.pos[node]] == (up_product, down_product)


class TestColumnarGraph:
    def test_columns_match_incident_arrays(self):
        graph = random_graph(seed=1)
        cols = ColumnarGraph.from_graph(graph)
        assert cols.num_nodes == graph.num_nodes
        assert cols.num_slots == 2 * graph.num_edges
        assert cols.version == graph.version
        for node in graph.nodes():
            arrays = graph.incident_arrays(node)
            start, stop = cols.slice_of(node)
            assert stop - start == cols.degree(node) == graph.degree(node)
            assert tuple(cols.numbers[start:stop]) == arrays.numbers
            assert tuple(cols.augmented[start:stop]) == arrays.augmented
            assert tuple(cols.aug_sorted[start:stop]) == arrays.aug_sorted
            assert tuple(cols.numbers_by_aug[start:stop]) == arrays.numbers_by_aug
            assert (
                tuple(bool(flag) for flag in cols.up[start:stop]) == arrays.up
            )
            assert (
                tuple(bool(flag) for flag in cols.up_by_aug[start:stop])
                == arrays.up_by_aug
            )
            row = cols.pos[node]
            assert cols.node_max_number[row] == arrays.max_number
            assert cols.node_max_augmented[row] == arrays.max_augmented
        assert cols.max_number == max(cols.node_max_number)
        assert cols.max_augmented == max(cols.node_max_augmented)

    def test_unknown_node_rejected(self):
        cols = ColumnarGraph.from_graph(random_graph(seed=2))
        with pytest.raises(GraphError):
            cols.slice_of(999)

    def test_graph_accessor_caches_per_version(self):
        graph = random_graph(seed=3)
        cols = graph.columnar()
        assert graph.columnar() is cols  # no mutation: same snapshot
        edge = graph.edges()[0]
        graph.set_weight(edge.u, edge.v, weight=edge.weight + 1)
        fresh = graph.columnar()
        assert fresh is not cols and fresh.version == graph.version

    def test_fits64_false_falls_back_to_lists(self):
        # Default id_bits=32 pushes augmented weights past 64 bits: the
        # columns must degrade to plain lists and the numpy mirrors to None,
        # with every kernel still matching the per-node path.
        graph = Graph(id_bits=32)
        rng = random.Random(11)
        for node in range(1, 13):
            graph.add_node(node)
        for u in range(1, 12):
            graph.add_edge(u, u + 1, weight=rng.randrange(1, 10**9))
        cols = graph.columnar()
        assert not cols.fits64
        assert isinstance(cols.numbers, list)
        assert cols.numpy_columns() is None
        assert_all_kernels_match(graph, rng)


class TestBatchedKernelEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("ordering", ["random", "ascending", "descending"])
    def test_batched_equals_per_node(self, seed, ordering):
        graph = random_graph(seed=seed, ordering=ordering)
        assert_all_kernels_match(graph, random.Random(seed + 100))

    @pytest.mark.parametrize("seed", range(4))
    def test_stdlib_tier_identical_words(self, seed, monkeypatch):
        # Forcing the stdlib tier (as REPRO_NUMPY=0 does at import time)
        # must not change a single word.
        graph = random_graph(seed=seed)
        rng_state = random.Random(seed + 200).getstate()
        with_numpy = _kernel_words(graph, rng_state)
        monkeypatch.setattr(accel, "_np", None)
        graph._columnar_cache = None  # fresh snapshot without cached mirrors
        without_numpy = _kernel_words(graph, rng_state)
        assert with_numpy == without_numpy

    def test_numpy_gates_fall_back_exactly(self):
        # Inputs outside every numpy gate (word_bits > 64, > 64 ranges, a
        # pairwise hash whose products overflow int64) still match the
        # per-node kernels bit for bit.
        graph = random_graph(seed=42)
        cols = graph.columnar()
        wide = OddHashFunction(multiplier=(1 << 69) + 1, threshold=1 << 68, word_bits=70)
        lows = list(range(0, 140, 2))  # 70 ranges > the 64-bit word gate
        highs = [low + 1 for low in lows]
        words = range_parity_words_all(cols, wide, lows, highs)
        for node in graph.nodes():
            arrays = graph.incident_arrays(node)
            assert words[cols.pos[node]] == range_parity_word(
                arrays.aug_sorted, arrays.numbers_by_aug, wide, lows, highs
            )

        huge_p = 2**89 - 1  # a * max_number + b overflows int64
        pairwise = PairwiseIndependentHash(
            a=huge_p - 3, b=huge_p - 7, p=huge_p, range_size=64
        )
        masks = prefix_flip_masks(pairwise.log_range)
        words = prefix_parity_words_all(cols, pairwise, masks)
        xor_words = xor_below_words_all(cols, pairwise, 3)
        for node in graph.nodes():
            arrays = graph.incident_arrays(node)
            assert words[cols.pos[node]] == prefix_parity_word(
                arrays.numbers, pairwise, masks
            )
            assert xor_words[cols.pos[node]] == xor_below_from_numbers(
                arrays.numbers, pairwise, 3
            )


def _kernel_words(graph: Graph, rng_state) -> tuple:
    """A deterministic digest of every batched kernel's output on ``graph``."""
    rng = random.Random()
    rng.setstate(rng_state)
    cols = graph.columnar()
    odd_hash = random_odd_hash(max(cols.max_number, 2), rng)
    lows, highs = random_ranges(rng, cols.max_augmented, 5)
    pairwise = random_pairwise_hash(max(cols.max_number, 2), 256, rng)
    masks = prefix_flip_masks(pairwise.log_range)
    return (
        range_parity_words_all(cols, odd_hash, lows, highs),
        prefix_parity_words_all(cols, pairwise, masks),
        xor_below_words_all(cols, pairwise, 4),
        hp_products_all(cols, 12345, 2**31 - 1, 0, cols.max_augmented),
    )
