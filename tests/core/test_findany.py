"""Tests for FindAny / FindAny-C (Lemmas 4-5)."""

import pytest

from repro.core.config import AlgorithmConfig, FINDANY_SUCCESS_PROBABILITY
from repro.core.findany import FindAny
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.accounting import MessageAccountant
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


def _finder(graph, forest, seed=0, **kwargs):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, **kwargs)
    return FindAny(graph, forest, config, MessageAccountant())


class TestFindAnySmall:
    def test_returns_a_cut_edge(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        cut_keys = {(3, 4), (1, 6), (2, 5)}
        for seed in range(5):
            result = _finder(graph, forest, seed=seed).find_any(1)
            assert result.edge is not None
            assert result.edge.endpoints in cut_keys

    def test_single_cut_edge_is_found(self, two_fragment_graph):
        graph, forest = two_fragment_graph(cut_edges=((3, 4, 10),))
        result = _finder(graph, forest, seed=3).find_any(1)
        assert result.edge.endpoints == (3, 4)

    def test_verified_empty_when_no_cut(self, two_fragment_graph):
        graph, forest = two_fragment_graph(cut_edges=())
        result = _finder(graph, forest, seed=1).find_any(1)
        assert result.edge is None
        assert result.verified_empty

    def test_isolated_node(self):
        graph = Graph(id_bits=4)
        graph.add_node(3)
        graph.add_edge(1, 2, 1)
        forest = SpanningForest(graph, marked=[(1, 2)])
        result = _finder(graph, forest, seed=2).find_any(3)
        assert result.edge is None
        assert result.verified_empty
        assert result.cost.messages == 0

    def test_capped_success_rate_at_least_one_sixteenth(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        successes = 0
        trials = 80
        for seed in range(trials):
            result = _finder(graph, forest, seed=seed).find_any_capped(1)
            if result.edge is not None:
                successes += 1
        # Lemma 5: success probability >= 1/16.  Require at least half that
        # to keep the test robust to seed luck (expected ~ 5+ successes; in
        # practice the empirical rate is far higher).
        assert successes >= trials * FINDANY_SUCCESS_PROBABILITY / 2

    def test_capped_never_returns_non_cut_edge(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        cut_keys = {(3, 4), (1, 6), (2, 5)}
        for seed in range(40):
            result = _finder(graph, forest, seed=seed).find_any_capped(1)
            if result.edge is not None:
                assert result.edge.endpoints in cut_keys


class TestFindAnyRandomGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_returns_true_cut_edge(self, seed):
        graph = random_connected_graph(22, 70, seed=seed)
        forest = random_spanning_tree_forest(graph, seed=seed + 10)
        key = sorted(forest.marked_edges)[seed]
        forest.unmark(*key)
        root = key[0]
        component = forest.component_of(root)
        cut = {
            (e.u, e.v) for e in forest.outgoing_edges(component)
        }
        result = _finder(graph, forest, seed=seed, c=2.0).find_any(root)
        assert result.edge is not None
        assert result.edge.endpoints in cut

    def test_uses_constant_broadcast_echoes_in_expectation(self):
        graph = random_connected_graph(30, 120, seed=7)
        forest = random_spanning_tree_forest(graph, seed=7)
        key = sorted(forest.marked_edges)[1]
        forest.unmark(*key)
        root = key[0]
        total_be = 0
        runs = 10
        for seed in range(runs):
            result = _finder(graph, forest, seed=seed).find_any(root)
            assert result.edge is not None
            total_be += result.broadcast_echoes
        # Expected: stats + HP + ~(3 per attempt) * E[attempts <= 16];
        # empirically the average is well under 20.
        assert total_be / runs < 30

    def test_cheaper_than_findmin_on_same_cut(self):
        from repro.core.findmin import FindMin

        graph = random_connected_graph(30, 120, seed=11)
        forest = random_spanning_tree_forest(graph, seed=11)
        key = sorted(forest.marked_edges)[5]
        forest.unmark(*key)
        # Search from the endpoint whose fragment is larger so that the
        # broadcast-and-echoes actually cost messages.
        root = max(key, key=lambda node: len(forest.component_of(node)))
        assert len(forest.component_of(root)) > 1
        config_a = AlgorithmConfig(n=30, seed=1)
        config_b = AlgorithmConfig(n=30, seed=1)
        any_cost = FindAny(graph, forest, config_a, MessageAccountant()).find_any(root)
        min_cost = FindMin(graph, forest, config_b, MessageAccountant()).find_min(root)
        assert any_cost.edge is not None and min_cost.edge is not None
        assert any_cost.cost.messages < min_cost.cost.messages
        assert any_cost.broadcast_echoes < min_cost.broadcast_echoes


class TestPowerOfTwoHelper:
    def test_strictly_above(self):
        assert FindAny._power_of_two_above(1) == 2
        assert FindAny._power_of_two_above(2) == 4
        assert FindAny._power_of_two_above(3) == 4
        assert FindAny._power_of_two_above(16) == 32
