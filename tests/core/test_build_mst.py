"""Tests for the synchronous Build-MST construction (Lemma 3 / Theorem 1.1)."""

import pytest

from repro.baselines.sequential import kruskal_mst, mst_edge_keys
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
)
from repro.network.errors import AlgorithmError
from repro.network.graph import Graph
from repro.verify import is_minimum_spanning_forest


def _build(graph, seed=0, **kwargs):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, **kwargs)
    return BuildMST(graph, config=config).run()


class TestCorrectness:
    def test_small_hand_graph(self, small_weighted_graph, small_mst_keys):
        report = _build(small_weighted_graph, seed=5)
        assert report.marked_edges == small_mst_keys
        assert report.is_spanning

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs_match_kruskal(self, seed):
        graph = random_connected_graph(24, 80, seed=seed)
        report = _build(graph, seed=seed)
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))

    def test_path_graph(self):
        graph = path_graph(12, seed=1)
        report = _build(graph, seed=1)
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))

    def test_grid_graph(self):
        graph = grid_graph(4, 4, seed=2)
        report = _build(graph, seed=2)
        assert is_minimum_spanning_forest(report.forest)

    def test_complete_graph(self):
        graph = complete_graph(10, seed=3)
        report = _build(graph, seed=3)
        assert is_minimum_spanning_forest(report.forest)

    def test_disconnected_graph_gives_minimum_spanning_forest(self):
        graph = Graph(id_bits=6)
        graph.add_edge(1, 2, 5)
        graph.add_edge(2, 3, 1)
        graph.add_edge(1, 3, 2)
        graph.add_edge(10, 11, 7)
        graph.add_edge(11, 12, 9)
        graph.add_edge(10, 12, 1)
        graph.add_node(20)
        report = _build(graph, seed=4)
        assert is_minimum_spanning_forest(report.forest)
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))

    def test_single_node_graph(self):
        graph = Graph()
        graph.add_node(1)
        report = _build(graph, seed=0)
        assert report.marked_edges == set()
        assert report.is_spanning

    def test_two_node_graph(self):
        graph = Graph()
        graph.add_edge(1, 2, 3)
        report = _build(graph, seed=0)
        assert report.marked_edges == {(1, 2)}

    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            BuildMST(Graph())

    def test_duplicate_raw_weights_still_unique_mst(self):
        graph = Graph(id_bits=5)
        # All weights equal: augmentation by edge number decides.
        edges = [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)]
        for u, v in edges:
            graph.add_edge(u, v, 7)
        report = _build(graph, seed=6)
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))


class TestReports:
    def test_phase_records_sum_to_total(self):
        graph = random_connected_graph(20, 60, seed=8)
        report = _build(graph, seed=8)
        assert report.phases == len(report.phase_records)
        assert sum(r.messages for r in report.phase_records) == report.messages
        assert report.rounds_parallel <= sum(r.rounds for r in report.phase_records) + 1

    def test_phases_are_logarithmic(self):
        graph = random_connected_graph(32, 100, seed=9)
        report = _build(graph, seed=9)
        # Borůvka needs at most lg n effective merging phases plus the final
        # verification phase; allow generous slack for FindMin-C failures.
        assert report.phases <= 3 * 5 + 4

    def test_adaptive_policy_cheaper_than_paper_policy(self):
        graph = random_connected_graph(16, 40, seed=10)
        adaptive = _build(graph, seed=10, phase_policy="adaptive")
        paper = _build(graph, seed=10, phase_policy="paper")
        assert adaptive.marked_edges == paper.marked_edges
        assert adaptive.phases <= paper.phases

    def test_seed_reproducibility(self):
        graph_a = random_connected_graph(20, 60, seed=12)
        graph_b = random_connected_graph(20, 60, seed=12)
        report_a = _build(graph_a, seed=3)
        report_b = _build(graph_b, seed=3)
        assert report_a.messages == report_b.messages
        assert report_a.marked_edges == report_b.marked_edges

    def test_messages_accounted_positively(self):
        graph = random_connected_graph(16, 50, seed=13)
        report = _build(graph, seed=13)
        assert report.messages > 0
        assert report.bits >= report.messages
        assert report.broadcast_echoes > 0
        assert report.rounds_parallel > 0
