"""Unit tests for AlgorithmConfig parameter derivations."""

import math

import pytest

from repro.core.config import (
    AlgorithmConfig,
    FINDANY_SUCCESS_PROBABILITY,
    TESTOUT_SUCCESS_PROBABILITY,
)
from repro.network.errors import AlgorithmError


class TestValidation:
    def test_rejects_tiny_n(self):
        with pytest.raises(AlgorithmError):
            AlgorithmConfig(n=0)

    def test_rejects_c_below_one(self):
        with pytest.raises(AlgorithmError):
            AlgorithmConfig(n=10, c=0.5)

    def test_rejects_unknown_phase_policy(self):
        with pytest.raises(AlgorithmError):
            AlgorithmConfig(n=10, phase_policy="bogus")

    def test_rejects_word_size_one(self):
        with pytest.raises(AlgorithmError):
            AlgorithmConfig(n=10, word_size=1)


class TestDerivedQuantities:
    def test_default_word_size_is_log_n(self):
        config = AlgorithmConfig(n=1024)
        assert config.word_size == 10

    def test_word_size_floor_of_two(self):
        config = AlgorithmConfig(n=2)
        assert config.word_size >= 2

    def test_epsilon_is_inverse_polynomial(self):
        config = AlgorithmConfig(n=100, c=2)
        assert config.epsilon() == pytest.approx(100 ** -3)

    def test_findmin_budget_grows_with_weight_range(self):
        config = AlgorithmConfig(n=64)
        small = config.findmin_budget(max_weight=2 ** 10)
        large = config.findmin_budget(max_weight=2 ** 40)
        assert large > small

    def test_findmin_c_budget_smaller_than_findmin_for_polynomial_weights(self):
        # With maxWt polynomial in n, the worst-case (c/q)·lg n term dominates
        # FindMin's budget, so the capped variant's budget is smaller.
        config = AlgorithmConfig(n=2 ** 20, c=2)
        assert config.findmin_c_budget(2 ** 20) <= config.findmin_budget(2 ** 20)

    def test_findany_budget_matches_formula(self):
        config = AlgorithmConfig(n=64, c=1)
        expected = math.ceil(16 * math.log(1 / config.epsilon()))
        assert config.findany_budget() == expected

    def test_phase_budget_policies(self):
        adaptive = AlgorithmConfig(n=256, phase_policy="adaptive")
        paper = AlgorithmConfig(n=256, phase_policy="paper")
        assert paper.build_phase_budget() > adaptive.build_phase_budget()
        assert adaptive.build_phase_budget() >= math.ceil(8 * math.log2(256))

    def test_success_probability_constants(self):
        assert TESTOUT_SUCCESS_PROBABILITY == pytest.approx(1 / 8)
        assert FINDANY_SUCCESS_PROBABILITY == pytest.approx(1 / 16)


class TestRandomness:
    def test_seeded_rng_reproducible(self):
        a = AlgorithmConfig(n=32, seed=5)
        b = AlgorithmConfig(n=32, seed=5)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_spawn_derives_new_stream(self):
        config = AlgorithmConfig(n=32, seed=5)
        child_a = config.spawn()
        child_b = config.spawn()
        assert child_a.random() != child_b.random()
