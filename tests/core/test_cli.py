"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build-mst"])
        assert args.nodes == 64
        assert args.density == "dense"
        assert args.error_exponent == 1.0

    def test_repair_arguments(self):
        args = build_parser().parse_args(
            ["repair", "--nodes", "24", "--mode", "st", "--updates", "4"]
        )
        assert args.mode == "st"
        assert args.updates == 4

    def test_sweep_sizes(self):
        args = build_parser().parse_args(["sweep", "--sizes", "16", "32"])
        assert args.sizes == [16, 32]

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_build_mst_command(self, capsys):
        code = main(["build-mst", "--nodes", "20", "--density", "sparse", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Build-MST" in out
        assert "KKT Build-MST messages" in out
        assert "ghs baseline messages" in out

    def test_build_st_command(self, capsys):
        code = main(["build-st", "--nodes", "20", "--density", "sparse", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Build-ST" in out
        assert "flooding baseline messages" in out

    def test_repair_command(self, capsys):
        code = main(
            ["repair", "--nodes", "20", "--density", "sparse", "--updates", "4", "--seed", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tree invariant holds" in out
        assert "yes" in out

    def test_repair_with_recompute_baseline(self, capsys):
        code = main(
            [
                "repair",
                "--nodes", "16",
                "--density", "sparse",
                "--updates", "3",
                "--seed", "6",
                "--compare-recompute",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recompute baseline per update" in out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", "--kind", "st", "--sizes", "16", "24", "--density", "sparse", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Build-ST sweep" in out
        assert "16" in out and "24" in out

    def test_selfcheck_command(self, capsys):
        code = main(["selfcheck"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("OK") == 3
