"""Unit tests for the Schwartz–Zippel set-equality sketches (HP-TestOut core)."""

import random

import pytest

from repro.core.polynomial import SetEqualitySketch, combine_products, local_product
from repro.core.primes import next_prime
from repro.network.errors import AlgorithmError

P = next_prime(10 ** 6)


class TestLocalProduct:
    def test_empty_set_is_one(self):
        assert local_product([], alpha=5, p=P) == 1

    def test_matches_direct_computation(self):
        edges = [17, 99, 12345]
        alpha = 777
        expected = 1
        for e in edges:
            expected = (expected * (alpha - e)) % P
        assert local_product(edges, alpha, P) == expected

    def test_rejects_tiny_modulus(self):
        with pytest.raises(AlgorithmError):
            local_product([1], alpha=0, p=1)

    def test_combine_products(self):
        assert combine_products([], P) == 1
        assert combine_products([3, 5, 7], P) == 105 % P


class TestSketch:
    def test_equal_sets_always_equal_products(self):
        rng = random.Random(1)
        edges = [rng.randrange(1, 10 ** 5) for _ in range(20)]
        for _ in range(30):
            alpha = rng.randrange(P)
            sketch = SetEqualitySketch.from_local_edges(edges, list(edges), alpha, P)
            assert sketch.sides_equal

    def test_different_sets_rarely_equal(self):
        rng = random.Random(2)
        up = [rng.randrange(1, 10 ** 5) for _ in range(20)]
        down = up[:-1] + [10 ** 5 + 7]   # differ in exactly one element
        agreements = 0
        trials = 200
        for _ in range(trials):
            alpha = rng.randrange(P)
            sketch = SetEqualitySketch.from_local_edges(up, down, alpha, P)
            if sketch.sides_equal:
                agreements += 1
        # Schwartz-Zippel error <= degree/p ~ 2e-5; zero collisions expected.
        assert agreements == 0

    def test_combine_is_distributed_product(self):
        """Combining per-node sketches equals the sketch of the union."""
        rng = random.Random(3)
        alpha = rng.randrange(P)
        node_edges = {
            1: ([10, 20], [30]),
            2: ([40], []),
            3: ([], [50, 60]),
        }
        sketches = [
            SetEqualitySketch.from_local_edges(up, down, alpha, P)
            for up, down in node_edges.values()
        ]
        combined = SetEqualitySketch.identity(alpha, P).combine(sketches)
        all_up = [e for up, _ in node_edges.values() for e in up]
        all_down = [e for _, down in node_edges.values() for e in down]
        direct = SetEqualitySketch.from_local_edges(all_up, all_down, alpha, P)
        assert combined.up == direct.up
        assert combined.down == direct.down

    def test_combine_rejects_mismatched_parameters(self):
        a = SetEqualitySketch(1, 1, alpha=5, p=101)
        b = SetEqualitySketch(1, 1, alpha=5, p=103)
        with pytest.raises(AlgorithmError):
            a.combine([b])

    def test_payload_bits(self):
        sketch = SetEqualitySketch(1, 1, alpha=0, p=P)
        assert sketch.payload_bits() == 2 * P.bit_length()

    def test_identity_is_neutral(self):
        alpha = 12
        s = SetEqualitySketch.from_local_edges([5, 9], [7], alpha, P)
        combined = s.combine([SetEqualitySketch.identity(alpha, P)])
        assert combined.up == s.up and combined.down == s.down
