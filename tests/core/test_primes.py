"""Unit tests for primality testing and HP-TestOut prime selection."""

import pytest

from repro.core.primes import is_prime, next_prime, prime_at_least, prime_for_field


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 97, 101, 7919, 104729, 2 ** 31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 7917, 104730, 2 ** 31, 561, 41041, 825265]
# 561, 41041, 825265 are Carmichael numbers (strong pseudoprime stress cases).


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_primes_detected(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not is_prime(c)

    def test_large_prime(self):
        # 2^61 - 1 is a Mersenne prime.
        assert is_prime(2 ** 61 - 1)
        assert not is_prime(2 ** 61 + 1)

    def test_negative_numbers(self):
        assert not is_prime(-7)

    def test_agrees_with_sieve_below_2000(self):
        limit = 2000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit ** 0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_prime(n) == sieve[n], n


class TestNextPrime:
    def test_next_prime_basic(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17
        assert next_prime(7918) == 7919

    def test_prime_at_least(self):
        assert prime_at_least(13) == 13
        assert prime_at_least(14) == 17
        assert prime_at_least(1) == 2

    def test_result_is_prime_for_large_inputs(self):
        p = next_prime(10 ** 12)
        assert p > 10 ** 12
        assert is_prime(p)


class TestPrimeForField:
    def test_exceeds_both_bounds(self):
        p = prime_for_field(max_edge_number=1000, num_endpoints=50, epsilon=0.01)
        assert p > 1000
        assert p > 50 / 0.01
        assert is_prime(p)

    def test_edge_number_dominates(self):
        p = prime_for_field(max_edge_number=10 ** 9, num_endpoints=10, epsilon=0.5)
        assert p > 10 ** 9

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            prime_for_field(100, 10, epsilon=0.0)
        with pytest.raises(ValueError):
            prime_for_field(100, 10, epsilon=1.5)
