"""Unit + statistical tests for the hash families of Section 2.1 / 4.1."""

import random

import pytest

from repro.core.hashing import (
    KarpRabinFingerprint,
    OddHashFunction,
    PairwiseIndependentHash,
    random_fingerprint,
    random_odd_hash,
    random_pairwise_hash,
)
from repro.network.errors import AlgorithmError


class TestOddHashConstruction:
    def test_requires_odd_multiplier(self):
        with pytest.raises(AlgorithmError):
            OddHashFunction(multiplier=4, threshold=3, word_bits=8)

    def test_threshold_range(self):
        with pytest.raises(AlgorithmError):
            OddHashFunction(multiplier=3, threshold=0, word_bits=8)
        with pytest.raises(AlgorithmError):
            OddHashFunction(multiplier=3, threshold=257, word_bits=8)

    def test_output_is_binary(self):
        rng = random.Random(0)
        h = random_odd_hash(1000, rng)
        assert set(h(x) for x in range(1, 200)) <= {0, 1}

    def test_rejects_negative_input(self):
        h = random_odd_hash(100, random.Random(0))
        with pytest.raises(AlgorithmError):
            h(-5)

    def test_parity_of(self):
        h = OddHashFunction(multiplier=1, threshold=4, word_bits=3)
        # With multiplier 1 and word 3: h(x) = 1 iff (x mod 8) <= 4.
        assert h.parity_of([1, 2]) == 0  # both hash to 1 -> even
        assert h.parity_of([1, 7]) == 1  # exactly one hashes to 1

    def test_description_bits(self):
        h = random_odd_hash(2 ** 20, random.Random(1))
        assert h.description_bits() == 2 * h.word_bits

    def test_deterministic_given_seed(self):
        a = random_odd_hash(10 ** 6, random.Random(9))
        b = random_odd_hash(10 ** 6, random.Random(9))
        assert a == b


class TestOddHashIsOdd:
    """Empirical check of the 1/8-oddness property ([33])."""

    @pytest.mark.parametrize("set_size", [1, 2, 5, 17, 64])
    def test_odd_parity_probability_at_least_eighth(self, set_size):
        rng = random.Random(set_size)
        universe = 2 ** 16
        elements = rng.sample(range(1, universe), set_size)
        trials = 400
        odd = 0
        for _ in range(trials):
            h = random_odd_hash(universe, rng)
            if sum(h(x) for x in elements) % 2 == 1:
                odd += 1
        # The bound is 1/8 = 50/400; allow statistical slack but stay well
        # above "never": observed frequency must exceed 6%.
        assert odd / trials > 0.06

    def test_empty_set_never_odd(self):
        rng = random.Random(3)
        for _ in range(50):
            h = random_odd_hash(1000, rng)
            assert h.parity_of([]) == 0


class TestPairwiseHash:
    def test_range_is_power_of_two(self):
        with pytest.raises(AlgorithmError):
            PairwiseIndependentHash(a=1, b=0, p=101, range_size=12)

    def test_output_in_range(self):
        rng = random.Random(2)
        h = random_pairwise_hash(10 ** 6, 64, rng)
        assert all(0 <= h(x) < 64 for x in range(1, 500))

    def test_log_range(self):
        rng = random.Random(2)
        h = random_pairwise_hash(1000, 128, rng)
        assert h.log_range == 7

    def test_rejects_non_power_range(self):
        with pytest.raises(AlgorithmError):
            random_pairwise_hash(1000, 100, random.Random(0))

    def test_roughly_uniform(self):
        rng = random.Random(7)
        h = random_pairwise_hash(10 ** 6, 16, rng)
        counts = [0] * 16
        n_samples = 4096
        for x in range(1, n_samples + 1):
            counts[h(x)] += 1
        expected = n_samples / 16
        assert max(counts) < 2 * expected
        assert min(counts) > expected / 2

    def test_pairwise_collision_rate(self):
        """Pr[h(x) == h(y)] should be close to 1/r for random pairs."""
        rng = random.Random(11)
        r = 32
        collisions = 0
        trials = 600
        for _ in range(trials):
            h = random_pairwise_hash(10 ** 6, r, rng)
            x, y = rng.sample(range(1, 10 ** 6), 2)
            if h(x) == h(y):
                collisions += 1
        assert collisions / trials < 3.0 / r + 0.05


class TestKarpRabin:
    def test_fingerprint_is_mod(self):
        fp = KarpRabinFingerprint(p=97)
        assert fp(1000) == 1000 % 97

    def test_rejects_negative(self):
        fp = KarpRabinFingerprint(p=97)
        with pytest.raises(AlgorithmError):
            fp(-1)

    def test_random_fingerprint_compresses_exponential_ids(self):
        rng = random.Random(5)
        n, id_bits = 64, 128
        fp = random_fingerprint(n=n, c=1.0, id_bits=id_bits, rng=rng)
        ids = [rng.getrandbits(id_bits) | 1 for _ in range(n)]
        fingerprints = [fp(x) for x in ids]
        # Output space is polynomial in n -> far fewer bits than the input.
        assert fp.p.bit_length() < id_bits
        # W.h.p. all fingerprints are distinct.
        assert len(set(fingerprints)) == n

    def test_random_fingerprint_validates_input(self):
        with pytest.raises(AlgorithmError):
            random_fingerprint(n=0, c=1.0, id_bits=8, rng=random.Random(0))
