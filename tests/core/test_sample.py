"""Tests for the superpolynomial-weight FindMin (Appendix A)."""

import pytest

from repro.core.config import AlgorithmConfig
from repro.core.sample import SuperpolyFindMin
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.accounting import MessageAccountant
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


def _finder(graph, forest, seed=0, **kwargs):
    config = AlgorithmConfig(n=graph.num_nodes, seed=seed, **kwargs)
    return SuperpolyFindMin(graph, forest, config, MessageAccountant())


class TestSmallWeights:
    def test_finds_lightest_cut_edge(self, two_fragment_graph):
        graph, forest = two_fragment_graph()
        result = _finder(graph, forest, seed=1).run(1)
        assert result.edge is not None
        assert result.edge.endpoints == (3, 4)

    def test_empty_cut_verified(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(3, 4, 2)
        forest = SpanningForest(graph, marked=[(1, 2), (3, 4)])
        result = _finder(graph, forest, seed=2).run(1)
        assert result.edge is None
        assert result.verified_empty

    def test_isolated_node(self):
        graph = Graph(id_bits=4)
        graph.add_node(9)
        graph.add_edge(1, 2, 1)
        forest = SpanningForest(graph, marked=[(1, 2)])
        result = _finder(graph, forest, seed=3).run(9)
        assert result.edge is None
        assert result.verified_empty


class TestSuperpolynomialWeights:
    def test_huge_weights_lightest_edge_found(self, two_fragment_graph):
        # Weights around 2^100: far beyond any polynomial in n.
        big = 1 << 100
        graph, forest = two_fragment_graph(((3, 4, big + 3), (1, 6, big + 77), (2, 5, big + 12)))
        result = _finder(graph, forest, seed=4).run(1)
        assert result.edge is not None
        assert result.edge.endpoints == (3, 4)

    def test_mixed_scale_weights(self, two_fragment_graph):
        graph, forest = two_fragment_graph(((3, 4, 5), (1, 6, 1 << 90), (2, 5, 1 << 60)))
        result = _finder(graph, forest, seed=5).run(1)
        assert result.edge.endpoints == (3, 4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graph_with_wide_weights(self, seed):
        graph = random_connected_graph(16, 40, seed=seed)
        # Stretch the weights to ~2^64 while keeping them distinct.
        for index, edge in enumerate(graph.edges()):
            graph.set_weight(edge.u, edge.v, (edge.weight << 60) + index)
        forest = random_spanning_tree_forest(graph, seed=seed + 20)
        key = sorted(forest.marked_edges)[seed]
        forest.unmark(*key)
        root = key[0]
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        true_min = min(cut, key=lambda e: e.augmented_weight(graph.id_bits))
        result = _finder(graph, forest, seed=seed, c=2.0).run(root)
        assert result.edge == true_min

    def test_broadcast_echo_count_stays_moderate(self, two_fragment_graph):
        """The point of Appendix A: B&E count does not scale with weight bits."""
        small_graph, small_forest = two_fragment_graph()
        huge = 1 << 200
        big_graph, big_forest = two_fragment_graph(
            ((3, 4, huge + 10), (1, 6, huge + 20), (2, 5, huge + 15))
        )
        small_result = _finder(small_graph, small_forest, seed=6).run(1)
        big_result = _finder(big_graph, big_forest, seed=6).run(1)
        assert big_result.edge is not None
        # Allow some slack, but the big-weight run must not need orders of
        # magnitude more broadcast-and-echoes than the small-weight run.
        assert big_result.broadcast_echoes <= 6 * max(small_result.broadcast_echoes, 4)


class TestPivotRanges:
    def test_ranges_partition_with_singletons(self):
        ranges = SuperpolyFindMin._pivot_ranges(0, 100, [10, 50])
        assert ranges == [(0, 9), (10, 10), (11, 49), (50, 50), (51, 100)]

    def test_pivot_at_boundary(self):
        ranges = SuperpolyFindMin._pivot_ranges(10, 20, [10, 20])
        assert ranges == [(10, 10), (11, 19), (20, 20)]

    def test_out_of_range_pivots_ignored(self):
        ranges = SuperpolyFindMin._pivot_ranges(10, 20, [5, 30])
        assert ranges == [(10, 20)]

    def test_no_pivots(self):
        assert SuperpolyFindMin._pivot_ranges(3, 9, []) == [(3, 9)]
