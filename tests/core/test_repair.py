"""Tests for the impromptu repair operations (Theorem 1.2)."""

import pytest

from repro.baselines.sequential import kruskal_mst, mst_edge_keys
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.core.repair import TreeRepairer
from repro.generators import random_connected_graph
from repro.network.errors import AlgorithmError, GraphError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


def _mst_setup(n=20, m=60, seed=0):
    graph = random_connected_graph(n, m, seed=seed)
    config = AlgorithmConfig(n=n, seed=seed)
    report = BuildMST(graph, config=config).run()
    repairer = TreeRepairer(
        graph, report.forest, AlgorithmConfig(n=n, seed=seed + 1), mode="mst"
    )
    return graph, report.forest, repairer


class TestDeleteMST:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delete_tree_edge_restores_mst(self, seed):
        graph, forest, repairer = _mst_setup(seed=seed)
        key = sorted(forest.marked_edges)[seed]
        report = repairer.delete_edge(*key)
        assert report.was_tree_edge
        assert is_minimum_spanning_forest(forest)
        assert report.cost.messages >= 0

    def test_delete_non_tree_edge_is_free(self):
        graph, forest, repairer = _mst_setup(seed=3)
        non_tree = next(
            (e.u, e.v) for e in graph.edges() if (e.u, e.v) not in forest.marked_edges
        )
        report = repairer.delete_edge(*non_tree)
        assert not report.was_tree_edge
        assert report.cost.messages == 0
        assert is_minimum_spanning_forest(forest)

    def test_delete_bridge_reports_bridge(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(1, 3, 3)
        graph.add_edge(3, 4, 5)   # bridge
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (3, 4)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=4, seed=1), mode="mst")
        report = repairer.delete_edge(3, 4)
        assert report.was_tree_edge
        assert report.bridge
        assert report.replacement is None
        # The forest now has two components {1,2,3} and {4}, each spanning.
        assert is_minimum_spanning_forest(forest)

    def test_delete_missing_edge_rejected(self):
        graph, forest, repairer = _mst_setup(seed=4)
        with pytest.raises(GraphError):
            repairer.delete_edge(1, 1 + graph.num_nodes + 100)

    def test_sequence_of_deletions_keeps_mst(self):
        graph, forest, repairer = _mst_setup(n=18, m=70, seed=5)
        for _ in range(6):
            key = sorted(forest.marked_edges)[0]
            repairer.delete_edge(*key)
            assert is_minimum_spanning_forest(forest)


class TestInsertMST:
    def test_insert_lighter_edge_swaps_heaviest_path_edge(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 9)
        graph.add_edge(3, 4, 2)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (3, 4)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=4, seed=2), mode="mst")
        report = repairer.insert_edge(1, 4, weight=3)
        assert report.replacement is not None
        assert report.removed.endpoints == (2, 3)
        assert forest.is_marked(1, 4)
        assert not forest.is_marked(2, 3)
        assert is_minimum_spanning_forest(forest)

    def test_insert_heavier_edge_changes_nothing(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=3, seed=3), mode="mst")
        report = repairer.insert_edge(1, 3, weight=50)
        assert report.replacement is None
        assert not forest.is_marked(1, 3)
        assert is_minimum_spanning_forest(forest)

    def test_insert_edge_joining_two_trees(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(3, 4, 2)
        forest = SpanningForest(graph, marked=[(1, 2), (3, 4)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=4, seed=4), mode="mst")
        report = repairer.insert_edge(2, 3, weight=7)
        assert forest.is_marked(2, 3)
        assert is_minimum_spanning_forest(forest)
        assert not report.was_tree_edge

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_insertions_keep_mst(self, seed):
        graph, forest, repairer = _mst_setup(n=16, m=40, seed=seed + 6)
        nodes = graph.nodes()
        added = 0
        weight = 0  # very light edges: likely to enter the MST
        for u in nodes:
            for v in nodes:
                if u < v and not graph.has_edge(u, v):
                    repairer.insert_edge(u, v, weight=weight)
                    weight += 1
                    added += 1
                    assert is_minimum_spanning_forest(forest)
                    if added >= 5:
                        return


class TestWeightChangesMST:
    def test_increase_non_tree_edge_weight_is_noop(self):
        graph, forest, repairer = _mst_setup(seed=8)
        non_tree = next(
            (e.u, e.v) for e in graph.edges() if (e.u, e.v) not in forest.marked_edges
        )
        old = graph.get_edge(*non_tree).weight
        report = repairer.increase_weight(non_tree[0], non_tree[1], old + 100)
        assert report.cost.messages == 0
        assert is_minimum_spanning_forest(forest)

    def test_increase_tree_edge_weight_may_swap(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(1, 3, 5)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=3, seed=9, c=2), mode="mst")
        repairer.increase_weight(2, 3, 50)
        assert is_minimum_spanning_forest(forest)
        assert forest.is_marked(1, 3)
        assert not forest.is_marked(2, 3)

    def test_increase_tree_edge_weight_kept_when_still_minimum(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(1, 3, 100)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=3, seed=10, c=2), mode="mst")
        repairer.increase_weight(2, 3, 50)
        assert is_minimum_spanning_forest(forest)
        assert forest.is_marked(2, 3)

    def test_decrease_tree_edge_weight_is_noop(self):
        graph, forest, repairer = _mst_setup(seed=11)
        key = sorted(forest.marked_edges)[0]
        old = graph.get_edge(*key).weight
        report = repairer.decrease_weight(key[0], key[1], max(old - 1, 0))
        assert report.cost.messages == 0
        assert is_minimum_spanning_forest(forest)

    def test_decrease_non_tree_edge_below_path_max_swaps(self):
        graph = Graph(id_bits=4)
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 9)
        graph.add_edge(1, 3, 20)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3)])
        repairer = TreeRepairer(graph, forest, AlgorithmConfig(n=3, seed=12), mode="mst")
        repairer.decrease_weight(1, 3, 2)
        assert forest.is_marked(1, 3)
        assert not forest.is_marked(2, 3)
        assert is_minimum_spanning_forest(forest)

    def test_wrong_direction_rejected(self):
        graph, forest, repairer = _mst_setup(seed=13)
        key = sorted(forest.marked_edges)[0]
        weight = graph.get_edge(*key).weight
        with pytest.raises(AlgorithmError):
            repairer.increase_weight(key[0], key[1], weight - 1)
        with pytest.raises(AlgorithmError):
            repairer.decrease_weight(key[0], key[1], weight + 1)


class TestRepairST:
    def _st_setup(self, seed=0):
        graph = random_connected_graph(18, 50, seed=seed)
        from repro.generators import random_spanning_tree_forest

        forest = random_spanning_tree_forest(graph, seed=seed)
        repairer = TreeRepairer(
            graph, forest, AlgorithmConfig(n=18, seed=seed + 1), mode="st"
        )
        return graph, forest, repairer

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delete_tree_edge_restores_spanning(self, seed):
        graph, forest, repairer = self._st_setup(seed=seed)
        key = sorted(forest.marked_edges)[seed]
        repairer.delete_edge(*key)
        assert is_spanning_forest(forest)

    def test_st_insert_redundant_edge_noop(self):
        graph, forest, repairer = self._st_setup(seed=3)
        # Find an absent pair within the (single) component.
        nodes = graph.nodes()
        pair = next(
            (u, v)
            for u in nodes
            for v in nodes
            if u < v and not graph.has_edge(u, v)
        )
        report = repairer.insert_edge(*pair, weight=1)
        assert report.replacement is None
        assert is_spanning_forest(forest)

    def test_st_weight_change_noop(self):
        graph, forest, repairer = self._st_setup(seed=4)
        key = sorted(forest.marked_edges)[0]
        old = graph.get_edge(*key).weight
        report = repairer.increase_weight(key[0], key[1], old + 5)
        assert report.cost.messages == 0
        assert is_spanning_forest(forest)

    def test_mode_validation(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        forest = SpanningForest(graph)
        with pytest.raises(AlgorithmError):
            TreeRepairer(graph, forest, mode="other")


class TestRepairCostShape:
    def test_delete_repair_cost_proportional_to_component(self):
        graph, forest, repairer = _mst_setup(n=24, m=90, seed=14)
        key = sorted(forest.marked_edges)[3]
        report = repairer.delete_edge(*key)
        n = graph.num_nodes
        # The search runs over one side of the split tree (< n nodes), each
        # B&E costs at most 2(n-1) messages.
        be_count = report.cost.broadcast_echoes
        assert report.cost.messages <= 2 * (n - 1) * max(be_count, 1) + 2

    def test_insert_repair_constant_broadcast_echoes(self):
        graph, forest, repairer = _mst_setup(n=24, m=60, seed=15)
        nodes = graph.nodes()
        pair = next(
            (u, v) for u in nodes for v in nodes if u < v and not graph.has_edge(u, v)
        )
        report = repairer.insert_edge(*pair, weight=1)
        # Insert is deterministic: one path query B&E (+ announcement).
        assert report.cost.broadcast_echoes <= 2
