"""Tests for the declarative scenario layer (workloads, schedules, experiments)."""

import json

import pytest

from repro.api import (
    ExperimentSpec,
    GraphSpec,
    ScheduleSpec,
    WorkloadSpec,
    get_workload,
    list_workloads,
    register_workload,
    run,
    stream_fingerprint,
    workload_summaries,
)
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic import UpdateStream, UpdateTrace
from repro.network.errors import AlgorithmError

EXPECTED_WORKLOADS = [
    "bridge-heavy",
    "churn",
    "deletions-only",
    "insert-heavy",
    "trace-replay",
    "weight-ramp",
]


class TestWorkloadRegistry:
    def test_six_builtin_workloads(self):
        assert list_workloads() == EXPECTED_WORKLOADS

    def test_summaries_cover_all(self):
        summaries = workload_summaries()
        assert sorted(summaries) == EXPECTED_WORKLOADS
        assert all(summaries.values())

    def test_unknown_workload_lists_known_names(self):
        with pytest.raises(AlgorithmError, match="churn"):
            get_workload("tsunami")

    def test_register_rejects_bad_names(self):
        with pytest.raises(AlgorithmError):
            register_workload("Not Lower")(lambda graph, forest, count, seed=None: None)

    def test_register_rejects_duplicates(self):
        with pytest.raises(AlgorithmError):
            register_workload("churn")(lambda graph, forest, count, seed=None: None)

    @pytest.mark.parametrize(
        "name", [w for w in EXPECTED_WORKLOADS if w != "trace-replay"]
    )
    def test_generated_streams_are_applicable_and_seeded(self, name, graph_with_mst):
        graph, forest = graph_with_mst(seed=11)
        spec = WorkloadSpec(name=name, updates=6, seed=11)
        stream = spec.build(graph, forest)
        assert len(stream) >= 1
        stream.validate_against(graph)
        again = spec.build(graph, forest)
        assert stream_fingerprint(again) == stream_fingerprint(stream)


class TestWorkloadSpec:
    def test_validates_name_and_updates(self):
        with pytest.raises(AlgorithmError):
            WorkloadSpec(name="bogus")
        with pytest.raises(AlgorithmError):
            WorkloadSpec(name="churn", updates=0)

    def test_round_trip(self):
        spec = WorkloadSpec(name="weight-ramp", updates=7, seed=3, params={"max_delta": 4})
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(AlgorithmError):
            WorkloadSpec.from_dict({"name": "churn", "surprise": 1})

    def test_resolve_seed_prefers_own_seed(self):
        assert WorkloadSpec(name="churn", seed=5).resolve_seed(9).seed == 5
        assert WorkloadSpec(name="churn").resolve_seed(9).seed == 9

    def test_trace_state_only_for_trace_replay(self):
        assert WorkloadSpec(name="churn").trace_state() is None


class TestScheduleSpec:
    @pytest.mark.parametrize("name", ["fifo", "lifo", "random", "edge-delay"])
    def test_builds_every_scheduler(self, name):
        scheduler = ScheduleSpec(scheduler=name).build()
        assert scheduler.empty()

    def test_validates_name(self):
        with pytest.raises(AlgorithmError, match="fifo"):
            ScheduleSpec(scheduler="carrier-pigeon")

    def test_seed_only_for_random(self):
        with pytest.raises(AlgorithmError):
            ScheduleSpec(scheduler="fifo", seed=1)
        assert ScheduleSpec(scheduler="random", seed=1).build() is not None

    def test_resolve_seed_random_only(self):
        assert ScheduleSpec(scheduler="random").resolve_seed(4).seed == 4
        assert ScheduleSpec(scheduler="lifo").resolve_seed(4).seed is None

    def test_round_trip_with_edge_delays(self):
        spec = ScheduleSpec(
            scheduler="edge-delay", params={"default_delay": 2, "delays": {"1-2": 5}}
        )
        again = ScheduleSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.build() is not None

    def test_batch_size_round_trips(self):
        spec = ScheduleSpec(scheduler="fifo", batch_size=4)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["batch_size"] == 4
        assert ScheduleSpec.from_dict(payload) == spec

    def test_batch_size_validation(self):
        with pytest.raises(AlgorithmError, match="batch_size"):
            ScheduleSpec(scheduler="fifo", batch_size=0)
        with pytest.raises(AlgorithmError, match="batch_size"):
            ScheduleSpec(scheduler="fifo", batch_size="two")

    def test_unset_batch_size_keeps_old_payloads_byte_identical(self):
        # Pre-batching payloads must parse, and serializing a spec without
        # a batch_size must not add the key (content hashes are stable).
        spec = ScheduleSpec.from_dict({"scheduler": "fifo"})
        assert spec.batch_size is None
        assert "batch_size" not in spec.to_dict()


class TestExperimentSpec:
    def test_coerce_accepts_graph_spec(self):
        graph = GraphSpec(nodes=8, density="sparse", seed=1)
        experiment = ExperimentSpec.coerce(graph)
        assert experiment.graph == graph
        assert experiment.workload is None
        assert ExperimentSpec.coerce(experiment) is experiment
        with pytest.raises(AlgorithmError):
            ExperimentSpec.coerce("kkt-mst")

    def test_json_round_trip(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=2),
            workload=WorkloadSpec(name="insert-heavy", updates=5),
            schedule=ScheduleSpec(scheduler="random", seed=9),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_with_seed_fills_graph_seed(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=8, density="sparse"))
        assert spec.with_seed(42).graph.seed == 42

    def test_resolved_workload_defaults_to_churn_with_graph_seed(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=8, density="sparse", seed=17))
        workload = spec.resolved_workload(default_updates=4)
        assert workload.name == "churn"
        assert workload.updates == 4
        assert workload.seed == 17


class TestChurnReproducesPR1:
    """The extracted ``churn`` workload must not drift from the PR-1 stream."""

    # Counters captured from the PR-1 runners (commit 76eaace) before the
    # workload extraction; any change here is silent workload drift.
    BASELINE = [
        ("kkt-repair", 32, "sparse", 3, 6, {"messages": 2476, "bits": 119619, "rounds": 949, "phases": 6}),
        ("kkt-repair", 24, "dense", 11, 9, {"messages": 1812, "bits": 75992, "rounds": 884, "phases": 9}),
        ("recompute-repair", 32, "sparse", 3, 6, {"messages": 4017, "bits": 44809, "rounds": 3780, "phases": 6}),
        ("recompute-repair", 24, "dense", 11, 9, {"messages": 8380, "bits": 80595, "rounds": 7860, "phases": 9}),
    ]

    @pytest.mark.parametrize("algorithm,nodes,density,seed,updates,counters", BASELINE)
    def test_counters_identical_to_pr1(self, algorithm, nodes, density, seed, updates, counters):
        result = run(
            algorithm, GraphSpec(nodes=nodes, density=density, seed=seed), updates=updates
        )
        assert result.counters() == counters
        assert result.ok

    def test_explicit_churn_workload_matches_implicit_default(self):
        graph = GraphSpec(nodes=24, density="sparse", seed=5)
        implicit = run("kkt-repair", graph, updates=6)
        explicit = run(
            "kkt-repair",
            ExperimentSpec(graph=graph, workload=WorkloadSpec(name="churn", updates=6)),
        )
        assert explicit.counters() == implicit.counters()
        assert explicit.extra["stream_fingerprint"] == implicit.extra["stream_fingerprint"]


class TestRepairRunnersShareOneStream:
    def test_stream_fingerprints_identical_for_equal_seeds(self):
        spec = GraphSpec(nodes=24, density="sparse", seed=8)
        kkt = run("kkt-repair", spec, updates=8)
        recompute = run("recompute-repair", spec, updates=8)
        assert kkt.extra["stream_fingerprint"] == recompute.extra["stream_fingerprint"]
        assert kkt.workload == recompute.workload

    def test_stream_equality_at_the_workload_level(self, graph_with_mst):
        graph, forest = graph_with_mst(seed=21)
        first = get_workload("churn")(graph, forest, count=10, seed=21)
        second = get_workload("churn")(graph, forest, count=10, seed=21)
        assert list(first) == list(second)
        assert stream_fingerprint(first) == stream_fingerprint(second)

    @pytest.mark.parametrize(
        "name", [w for w in EXPECTED_WORKLOADS if w != "trace-replay"]
    )
    def test_both_runners_consume_every_workload_identically(self, name):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=13),
            workload=WorkloadSpec(name=name, updates=4),
        )
        kkt = run("kkt-repair", spec)
        recompute = run("recompute-repair", spec)
        assert kkt.extra["stream_fingerprint"] == recompute.extra["stream_fingerprint"]
        assert kkt.ok and recompute.ok


class TestSchedules:
    @pytest.mark.parametrize("scheduler", ["fifo", "lifo", "random", "edge-delay"])
    def test_repair_under_adversarial_delivery(self, scheduler):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=6),
            workload=WorkloadSpec(name="churn", updates=4),
            schedule=ScheduleSpec(scheduler=scheduler),
        )
        result = run("kkt-repair", spec)
        assert result.checks["delivery"] is True
        assert result.extra["delivery_scheduler"] == scheduler
        assert result.extra["delivery_echo_messages"] > 0
        assert result.schedule is not None and result.schedule.scheduler == scheduler

    def test_flooding_runs_on_the_scheduled_async_engine(self):
        graph = GraphSpec(nodes=16, density="sparse", seed=6)
        scheduled = run(
            "flooding",
            ExperimentSpec(graph=graph, schedule=ScheduleSpec(scheduler="lifo")),
        )
        assert scheduled.extra["engine"] == "async"
        assert scheduled.ok

    def test_schedule_does_not_change_repair_counters(self):
        graph = GraphSpec(nodes=16, density="sparse", seed=6)
        plain = run("kkt-repair", graph, updates=4)
        scheduled = run(
            "kkt-repair",
            ExperimentSpec(graph=graph, schedule=ScheduleSpec(scheduler="random")),
            updates=4,
        )
        assert scheduled.counters() == plain.counters()


class TestTraceReplayWorkload:
    def _record(self, tmp_path, graph_with_mst, n=16, seed=5, updates=4):
        graph, forest = graph_with_mst(n=n, m=3 * n, seed=seed)
        stream = get_workload("churn")(graph, forest, count=updates, seed=seed)
        trace = UpdateTrace.record(graph, forest, stream, mode="mst", seed=seed)
        path = tmp_path / "workload.trace.json"
        trace.save(path)
        return path, stream

    def test_needs_a_path(self, graph_with_mst):
        graph, forest = graph_with_mst(seed=5)
        with pytest.raises(AlgorithmError, match="path"):
            WorkloadSpec(name="trace-replay", updates=4).build(graph, forest)

    def test_missing_file_is_an_algorithm_error(self, tmp_path, graph_with_mst):
        graph, forest = graph_with_mst(seed=5)
        spec = WorkloadSpec(
            name="trace-replay", updates=4, params={"path": str(tmp_path / "nope.json")}
        )
        with pytest.raises(AlgorithmError, match="not found"):
            spec.build(graph, forest)

    @pytest.mark.parametrize("content", ["not json", '{"mode": "mst"}', "[1, 2]"])
    def test_malformed_file_is_an_algorithm_error(self, tmp_path, content, graph_with_mst):
        path = tmp_path / "bad.trace.json"
        path.write_text(content)
        graph, forest = graph_with_mst(seed=5)
        spec = WorkloadSpec(name="trace-replay", params={"path": str(path)})
        with pytest.raises(AlgorithmError, match="trace"):
            spec.build(graph, forest)

    def test_replays_recorded_stream(self, tmp_path, graph_with_mst):
        path, stream = self._record(tmp_path, graph_with_mst)
        spec = WorkloadSpec(name="trace-replay", updates=99, params={"path": str(path)})
        graph, forest, trace = spec.trace_state()
        replayed = spec.build(graph, forest)
        assert stream_fingerprint(replayed) == stream_fingerprint(stream)
        assert len(trace) == len(stream)

    def test_count_limits_the_replay(self, tmp_path, graph_with_mst):
        path, stream = self._record(tmp_path, graph_with_mst, updates=6)
        spec = WorkloadSpec(name="trace-replay", updates=2, params={"path": str(path)})
        graph, forest, _ = spec.trace_state()
        assert len(spec.build(graph, forest)) == 2

    def test_repair_runner_uses_the_trace_graph(self, tmp_path, graph_with_mst):
        path, _ = self._record(tmp_path, graph_with_mst, n=16)
        spec = ExperimentSpec(
            # Deliberately name a different graph: the trace must win.
            graph=GraphSpec(nodes=64, density="dense", seed=1),
            workload=WorkloadSpec(name="trace-replay", updates=99, params={"path": str(path)}),
        )
        result = run("kkt-repair", spec)
        assert result.n == 16
        assert result.ok

    def test_unset_updates_replays_the_full_trace(self, tmp_path, graph_with_mst):
        # A trace longer than the runner's default length must not be
        # silently truncated when no explicit count was requested.
        path, stream = self._record(tmp_path, graph_with_mst, updates=14)
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=5),
            workload=WorkloadSpec(name="trace-replay", params={"path": str(path)}),
        )
        result = run("kkt-repair", spec)
        assert result.extra["updates"] == len(stream) == 14

    def test_replay_honours_trace_mode_and_seed(self, tmp_path):
        from repro.core.build_st import BuildST
        from repro.dynamic import TreeMaintainer
        from repro.generators import random_connected_graph

        graph = random_connected_graph(16, 48, seed=5)
        report = BuildST(graph, config=AlgorithmConfig(n=16, seed=5)).run()
        stream = get_workload("churn")(graph, report.forest, count=6, seed=5)
        trace = UpdateTrace.record(graph, report.forest, stream, mode="st", seed=5)
        maintainer = TreeMaintainer(graph, report.forest, mode="st", seed=5)
        trace.costs = [o.messages for o in maintainer.apply_stream(stream)]
        path = tmp_path / "st.trace.json"
        trace.save(path)

        spec = ExperimentSpec(
            # The graph spec deliberately disagrees with the trace on
            # everything: mode, seed and graph must all come from the trace.
            graph=GraphSpec(nodes=64, density="dense", seed=1),
            workload=WorkloadSpec(name="trace-replay", params={"path": str(path)}),
        )
        result = run("kkt-repair", spec)
        assert result.ok
        assert result.extra["mode"] == "st"
        assert result.messages == sum(trace.costs)  # bit-for-bit replay


class TestSpecsAreHashable:
    def test_specs_work_as_set_and_dict_keys(self):
        specs = {
            WorkloadSpec(name="churn", updates=4),
            WorkloadSpec(name="churn", updates=4),
            WorkloadSpec(name="weight-ramp", updates=4, params={"max_delta": 2}),
        }
        assert len(specs) == 2
        schedule = ScheduleSpec(scheduler="edge-delay", params={"delays": {"1-2": 3}})
        assert hash(schedule) == hash(ScheduleSpec.from_dict(schedule.to_dict()))
        experiment = ExperimentSpec(
            graph=GraphSpec(nodes=8, density="sparse", seed=1),
            workload=WorkloadSpec(name="churn"),
            schedule=schedule,
        )
        assert {experiment: "x"}[ExperimentSpec.from_json(experiment.to_json())] == "x"


class TestPR1StyleRunnersSurviveScenarioGrids:
    def test_bare_scenario_is_unwrapped_for_graph_only_runners(self):
        from repro.api import ExperimentEngine, register, scenario_grid
        from repro.api.registry import _REGISTRY

        @register("pr1-style-test", summary="graph-only runner from the PR-1 docs")
        class PR1StyleRunner:
            """A user runner that only knows GraphSpec (calls spec.build())."""

            def run(self, spec, **options):
                graph = spec.build()  # would crash on an ExperimentSpec
                return run("flooding", spec)

        try:
            jobs = scenario_grid(
                ["pr1-style-test"], [GraphSpec(nodes=8, density="sparse", seed=2)]
            )
            results = ExperimentEngine().run_suite(jobs)
            assert results[0].ok
        finally:
            _REGISTRY.pop("pr1-style-test", None)


class TestConstructionPreChurn:
    def test_workload_mutates_the_input_graph(self):
        graph = GraphSpec(nodes=16, density="sparse", seed=9)
        plain = run("kkt-mst", graph)
        churned = run(
            "kkt-mst",
            ExperimentSpec(
                graph=graph, workload=WorkloadSpec(name="deletions-only", updates=5)
            ),
        )
        assert churned.m == plain.m - 5
        assert churned.ok
        assert churned.workload is not None
        assert churned.extra["workload_updates_applied"] == 5
