"""Tests for the registry-backed CLI commands (`run`, `compare`, `sweep --algorithms`)."""

import json

import pytest

import repro
from repro.api import RunResult
from repro.cli import build_parser, main


def parse_json_lines(out):
    return [RunResult.from_json(line) for line in out.strip().splitlines()]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestRunCommand:
    def test_run_table(self, capsys):
        code = main(["run", "kkt-mst", "--nodes", "20", "--density", "sparse", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kkt-mst" in out

    def test_run_json(self, capsys):
        code = main(
            ["run", "kkt-st", "--nodes", "20", "--density", "sparse", "--seed", "3", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        (result,) = parse_json_lines(out)
        assert result.algorithm == "kkt-st"
        assert result.n == 20
        assert result.spec.seed == 3
        assert result.ok

    def test_run_repair_algorithm(self, capsys):
        code = main(
            ["run", "kkt-repair", "--nodes", "16", "--density", "sparse",
             "--seed", "5", "--updates", "4", "--json"]
        )
        assert code == 0
        (result,) = parse_json_lines(capsys.readouterr().out)
        assert result.extra["updates"] == 4

    def test_run_unknown_algorithm(self, capsys):
        code = main(["run", "dijkstra", "--nodes", "16"])
        captured = capsys.readouterr()
        assert code == 2
        assert "dijkstra" in captured.err
        assert "kkt-mst" in captured.err


class TestCliErrorPaths:
    """Unknown names and broken inputs exit non-zero with actionable text."""

    def test_unknown_workload_name(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "kkt-repair", "--nodes", "16", "--workload", "tsunami"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'tsunami'" in err
        assert "churn" in err  # the valid choices are listed

    def test_unknown_schedule_name(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "kkt-st", "--nodes", "16", "--schedule", "chaotic"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'chaotic'" in err
        assert "fifo" in err

    def test_unknown_fault_name_on_run(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "kkt-repair", "--nodes", "16", "--fault", "meteor"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'meteor'" in err
        assert "link-storm" in err

    def test_unknown_workload_on_suite(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["suite", "--algorithms", "kkt-repair", "--workloads", "tsunami"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'tsunami'" in capsys.readouterr().err

    def test_unknown_algorithm_on_suite(self, capsys):
        code = main(["suite", "--algorithms", "dijkstra", "--sizes", "12"])
        captured = capsys.readouterr()
        assert code == 2
        assert "dijkstra" in captured.err
        assert "registered algorithms" in captured.err

    def test_unknown_algorithm_on_compare(self, capsys):
        code = main(["compare", "kkt-mst", "bellman-ford", "--nodes", "12"])
        captured = capsys.readouterr()
        assert code == 2
        assert "bellman-ford" in captured.err

    def test_corrupt_bench_baseline(self, capsys, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not valid json", encoding="utf-8")
        code = main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", "-", "--baseline", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid baseline report" in captured.err
        assert str(path) in captured.err

    def test_baseline_without_results_section(self, capsys, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}", encoding="utf-8")
        code = main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", "-", "--baseline", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "no 'results' section" in captured.err


class TestCompareCommand:
    def test_compare_json(self, capsys):
        code = main(
            ["compare", "kkt-st", "flooding", "--nodes", "20", "--density", "sparse",
             "--seed", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        results = parse_json_lines(out)
        assert [r.algorithm for r in results] == ["kkt-st", "flooding"]
        assert results[0].spec == results[1].spec


class TestAlgorithmsCommand:
    def test_lists_registry(self, capsys):
        code = main(["algorithms"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("kkt-mst", "kkt-st", "ghs", "flooding", "kkt-repair", "recompute-repair"):
            assert name in out


class TestWorkloadsCommand:
    def test_lists_workloads_and_schedulers(self, capsys):
        code = main(["workloads"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("churn", "deletions-only", "bridge-heavy", "insert-heavy",
                     "weight-ramp", "trace-replay"):
            assert name in out
        for name in ("fifo", "lifo", "random", "edge-delay"):
            assert name in out


class TestSuiteCommand:
    ARGS = ["suite", "--algorithms", "kkt-repair", "recompute-repair",
            "--workloads", "churn", "insert-heavy", "--schedules", "none", "random",
            "--sizes", "12", "--density", "sparse", "--seed", "4", "--updates", "4"]

    def test_suite_json_records_provenance(self, capsys):
        code = main(self.ARGS + ["--json"])
        out = capsys.readouterr().out
        assert code == 0
        results = parse_json_lines(out)
        assert len(results) == 8
        assert {r.workload.name for r in results} == {"churn", "insert-heavy"}
        assert {None if r.schedule is None else r.schedule.scheduler for r in results} == {
            None, "random",
        }

    def test_suite_parallel_counters_match_serial(self, capsys):
        assert main(self.ARGS + ["--json", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--json", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_wall_time(out):
            records = [json.loads(line) for line in out.strip().splitlines()]
            for record in records:
                record.pop("wall_time_s")
            return records

        assert strip_wall_time(parallel) == strip_wall_time(serial)

    def test_suite_table(self, capsys):
        code = main(["suite", "--algorithms", "kkt-repair", "--workloads", "churn",
                     "--sizes", "12", "--density", "sparse", "--updates", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload" in out and "schedule" in out

    def test_trace_replay_workload_requires_trace_flag(self, capsys):
        code = main(["suite", "--algorithms", "kkt-repair",
                     "--workloads", "trace-replay", "--sizes", "12"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--trace" in captured.err


class TestTraceCommands:
    def test_record_then_replay_round_trips(self, capsys, tmp_path):
        path = tmp_path / "churn.trace.json"
        code = main(["trace", "record", "--nodes", "16", "--density", "sparse",
                     "--seed", "5", "--updates", "4", "--out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert path.exists()
        assert "updates recorded" in out

        code = main(["trace", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-update costs reproduced" in out

        code = main(["suite", "--algorithms", "kkt-repair", "--workloads",
                     "trace-replay", "--trace", str(path), "--sizes", "12", "--json"])
        (result,) = parse_json_lines(capsys.readouterr().out)
        assert code == 0
        assert result.n == 16  # the trace's graph wins over --sizes

    def test_replay_missing_file_errors(self, capsys, tmp_path):
        code = main(["trace", "replay", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "not found" in captured.err


class TestRunScenarioFlags:
    def test_run_with_workload_and_schedule(self, capsys):
        code = main(["run", "kkt-repair", "--nodes", "16", "--density", "sparse",
                     "--seed", "5", "--updates", "4", "--workload", "weight-ramp",
                     "--schedule", "random", "--json"])
        (result,) = parse_json_lines(capsys.readouterr().out)
        assert code == 0
        assert result.workload.name == "weight-ramp"
        assert result.schedule.scheduler == "random"
        assert result.checks["delivery"] is True


class TestFaultsCli:
    def test_faults_command_lists_registry(self, capsys):
        code = main(["faults"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("none", "crash-leaves", "lossy-uniform", "partition-heal",
                     "link-storm"):
            assert name in out

    def test_run_with_fault_flag(self, capsys):
        code = main(
            ["run", "kkt-repair", "--nodes", "16", "--density", "sparse",
             "--seed", "5", "--updates", "3", "--fault", "link-storm", "--json"]
        )
        assert code == 0
        (result,) = parse_json_lines(capsys.readouterr().out)
        assert result.faults is not None and result.faults.name == "link-storm"
        assert result.extra["fault_updates_applied"] > 0

    def test_repair_with_fault_flag(self, capsys):
        code = main(
            ["repair", "--nodes", "16", "--density", "sparse", "--seed", "5",
             "--updates", "3", "--fault", "partition-heal"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault events (partition-heal)" in out

    def test_suite_faults_axis_comma_separated(self, capsys):
        code = main(
            ["suite", "--algorithms", "kkt-repair", "--sizes", "16",
             "--updates", "3", "--faults", "none,link-storm", "--json"]
        )
        assert code == 0
        results = parse_json_lines(capsys.readouterr().out)
        assert [r.faults.name if r.faults else None for r in results] == [
            None, "link-storm",
        ]

    def test_suite_unknown_fault_errors(self, capsys):
        code = main(
            ["suite", "--algorithms", "kkt-repair", "--sizes", "16",
             "--faults", "meteor-strike"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "meteor-strike" in captured.err

    def test_suite_faults_parallel_matches_serial(self, capsys):
        argv = ["suite", "--algorithms", "kkt-repair", "recompute-repair",
                "--sizes", "16", "--updates", "3",
                "--faults", "none", "crash-leaves", "--json"]
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out

        def strip(text):
            records = [json.loads(line) for line in text.strip().splitlines()]
            for record in records:
                record.pop("wall_time_s")
            return records

        assert strip(parallel) == strip(serial)


class TestBenchBaseline:
    def test_baseline_comparison_passes_with_headroom(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        # Two back-to-back single-sample timings of a millisecond benchmark
        # can wobble past the gate's crater floor on a loaded machine, so
        # deflate the recorded trajectory: the gate outcome is then
        # deterministic while the full compare/render path still runs.
        report = json.loads(out.read_text())
        for record in report["results"]:
            record["speedup"] = record["speedup"] / 4
        out.write_text(json.dumps(report))
        code = main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", "-", "--baseline", str(out)])
        output = capsys.readouterr().out
        assert code == 0
        assert "Speedup trajectory" in output

    def test_missing_baseline_errors(self, capsys, tmp_path):
        code = main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", "-", "--baseline", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "baseline report not found" in captured.err

    def test_regression_gate_fires(self, capsys, tmp_path):
        from repro.bench import run_benchmarks, write_report

        report = run_benchmarks(names=["bench_testout"], sizes=[20])
        # Pretend the committed trajectory was 100x faster than reality.
        for record in report["results"]:
            record["speedup"] = record["speedup"] * 100 + 100
        path = write_report(report, str(tmp_path / "inflated.json"))
        code = main(["bench", "--benchmarks", "bench_testout", "--sizes", "20",
                     "--out", "-", "--baseline", path])
        captured = capsys.readouterr()
        assert code == 1
        assert "regressed by more than 25%" in captured.err


class TestSweepCommand:
    def test_parser_accepts_engine_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "16", "24",
             "--jobs", "4", "--json"]
        )
        assert args.algorithms == ["kkt-st", "flooding"]
        assert args.jobs == 4
        assert args.json

    def test_sweep_algorithms_json(self, capsys):
        code = main(
            ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "12", "16",
             "--density", "sparse", "--seed", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        results = parse_json_lines(out)
        assert [(r.algorithm, r.n) for r in results] == [
            ("kkt-st", 12), ("flooding", 12), ("kkt-st", 16), ("flooding", 16),
        ]

    def test_sweep_parallel_counters_match_serial(self, capsys):
        argv = ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "12", "16",
                "--density", "sparse", "--seed", "2", "--json"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_wall_time(out):
            records = [json.loads(line) for line in out.strip().splitlines()]
            for record in records:
                record.pop("wall_time_s")
            return records

        assert strip_wall_time(parallel) == strip_wall_time(serial)

    def test_legacy_kind_sweep_still_works(self, capsys):
        code = main(
            ["sweep", "--kind", "st", "--sizes", "16", "--density", "sparse", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Build-ST sweep" in out

    def test_legacy_sweep_rejects_engine_flags(self, capsys):
        code = main(["sweep", "--kind", "st", "--sizes", "16", "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--algorithms" in captured.err
