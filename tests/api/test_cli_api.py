"""Tests for the registry-backed CLI commands (`run`, `compare`, `sweep --algorithms`)."""

import json

import pytest

import repro
from repro.api import RunResult
from repro.cli import build_parser, main


def parse_json_lines(out):
    return [RunResult.from_json(line) for line in out.strip().splitlines()]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestRunCommand:
    def test_run_table(self, capsys):
        code = main(["run", "kkt-mst", "--nodes", "20", "--density", "sparse", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kkt-mst" in out

    def test_run_json(self, capsys):
        code = main(
            ["run", "kkt-st", "--nodes", "20", "--density", "sparse", "--seed", "3", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        (result,) = parse_json_lines(out)
        assert result.algorithm == "kkt-st"
        assert result.n == 20
        assert result.spec.seed == 3
        assert result.ok

    def test_run_repair_algorithm(self, capsys):
        code = main(
            ["run", "kkt-repair", "--nodes", "16", "--density", "sparse",
             "--seed", "5", "--updates", "4", "--json"]
        )
        assert code == 0
        (result,) = parse_json_lines(capsys.readouterr().out)
        assert result.extra["updates"] == 4

    def test_run_unknown_algorithm(self, capsys):
        code = main(["run", "dijkstra", "--nodes", "16"])
        captured = capsys.readouterr()
        assert code == 2
        assert "dijkstra" in captured.err
        assert "kkt-mst" in captured.err


class TestCompareCommand:
    def test_compare_json(self, capsys):
        code = main(
            ["compare", "kkt-st", "flooding", "--nodes", "20", "--density", "sparse",
             "--seed", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        results = parse_json_lines(out)
        assert [r.algorithm for r in results] == ["kkt-st", "flooding"]
        assert results[0].spec == results[1].spec


class TestAlgorithmsCommand:
    def test_lists_registry(self, capsys):
        code = main(["algorithms"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("kkt-mst", "kkt-st", "ghs", "flooding", "kkt-repair", "recompute-repair"):
            assert name in out


class TestSweepCommand:
    def test_parser_accepts_engine_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "16", "24",
             "--jobs", "4", "--json"]
        )
        assert args.algorithms == ["kkt-st", "flooding"]
        assert args.jobs == 4
        assert args.json

    def test_sweep_algorithms_json(self, capsys):
        code = main(
            ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "12", "16",
             "--density", "sparse", "--seed", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        results = parse_json_lines(out)
        assert [(r.algorithm, r.n) for r in results] == [
            ("kkt-st", 12), ("flooding", 12), ("kkt-st", 16), ("flooding", 16),
        ]

    def test_sweep_parallel_counters_match_serial(self, capsys):
        argv = ["sweep", "--algorithms", "kkt-st", "flooding", "--sizes", "12", "16",
                "--density", "sparse", "--seed", "2", "--json"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_wall_time(out):
            records = [json.loads(line) for line in out.strip().splitlines()]
            for record in records:
                record.pop("wall_time_s")
            return records

        assert strip_wall_time(parallel) == strip_wall_time(serial)

    def test_legacy_kind_sweep_still_works(self, capsys):
        code = main(
            ["sweep", "--kind", "st", "--sizes", "16", "--density", "sparse", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Build-ST sweep" in out

    def test_legacy_sweep_rejects_engine_flags(self, capsys):
        code = main(["sweep", "--kind", "st", "--sizes", "16", "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--algorithms" in captured.err
