"""Tests for :class:`repro.api.spec.GraphSpec` — the single graph source."""

import pytest

from repro.api.spec import DENSITY_PROFILES, WEIGHT_MODELS, GraphSpec, edge_budget
from repro.network.errors import AlgorithmError


class TestEdgeBudget:
    def test_profiles_cover_cli_densities(self):
        assert set(DENSITY_PROFILES) == {"sparse", "medium", "dense", "complete"}

    @pytest.mark.parametrize("density", sorted(DENSITY_PROFILES))
    def test_clamped_to_valid_range(self, density):
        for n in (1, 2, 5, 40):
            m = edge_budget(n, density)
            assert max(n - 1, 0) <= m <= n * (n - 1) // 2

    def test_complete_budget(self):
        assert edge_budget(10, "complete") == 45

    def test_sparse_budget_clamps_small_graphs(self):
        # 3n exceeds n(n-1)/2 for small n; the clamp keeps it legal.
        assert edge_budget(4, "sparse") == 6

    def test_unknown_density(self):
        with pytest.raises(AlgorithmError, match="density"):
            edge_budget(10, "ultra")


class TestGraphSpecValidation:
    def test_rejects_empty_graph(self):
        with pytest.raises(AlgorithmError):
            GraphSpec(nodes=0)

    def test_rejects_unknown_density(self):
        with pytest.raises(AlgorithmError, match="density"):
            GraphSpec(nodes=8, density="ultra")

    def test_rejects_unknown_weight_model(self):
        with pytest.raises(AlgorithmError, match="weight model"):
            GraphSpec(nodes=8, weight_model="bogus")


class TestGraphSpecBuild:
    def test_builds_requested_size(self):
        spec = GraphSpec(nodes=20, density="sparse", seed=3)
        graph = spec.build()
        assert graph.num_nodes == 20
        assert graph.num_edges == spec.edges == edge_budget(20, "sparse")

    def test_complete_density(self):
        graph = GraphSpec(nodes=12, density="complete", seed=1).build()
        assert graph.num_edges == 66

    def test_same_seed_same_graph(self):
        spec = GraphSpec(nodes=24, density="medium", seed=11)
        a, b = spec.build(), spec.build()
        assert {(e.u, e.v, e.weight) for e in a.edges()} == {
            (e.u, e.v, e.weight) for e in b.edges()
        }

    def test_different_seeds_differ(self):
        a = GraphSpec(nodes=24, density="medium", seed=11).build()
        b = GraphSpec(nodes=24, density="medium", seed=12).build()
        assert {(e.u, e.v, e.weight) for e in a.edges()} != {
            (e.u, e.v, e.weight) for e in b.edges()
        }

    @pytest.mark.parametrize("model", WEIGHT_MODELS)
    def test_weight_models_build(self, model):
        graph = GraphSpec(nodes=16, density="sparse", seed=5, weight_model=model).build()
        assert graph.num_nodes == 16
        assert all(edge.weight >= 1 for edge in graph.edges())

    def test_uniform_respects_max_weight(self):
        spec = GraphSpec(
            nodes=16, density="sparse", seed=5, weight_model="uniform", max_weight=7
        )
        assert all(1 <= edge.weight <= 7 for edge in spec.build().edges())


class TestGraphSpecSerialisation:
    def test_dict_round_trip(self):
        spec = GraphSpec(nodes=32, density="complete", weight_model="uniform", seed=9)
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults(self):
        assert GraphSpec.from_dict({"nodes": 8}) == GraphSpec(nodes=8)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(AlgorithmError, match="unknown"):
            GraphSpec.from_dict({"nodes": 8, "colour": "red"})

    def test_from_dict_requires_nodes(self):
        with pytest.raises(AlgorithmError, match="nodes"):
            GraphSpec.from_dict({"density": "sparse"})

    def test_with_seed(self):
        spec = GraphSpec(nodes=8, density="sparse")
        assert spec.seed is None
        assert spec.with_seed(4).seed == 4
        assert spec.with_seed(4).nodes == 8
