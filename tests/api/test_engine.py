"""Tests for the parallel experiment engine and its determinism guarantees."""

import pytest

from repro.api import (
    ExperimentEngine,
    ExperimentJob,
    ExperimentSpec,
    GraphSpec,
    ScheduleSpec,
    WorkloadSpec,
    derive_seed,
    scenario_grid,
)
from repro.network.errors import AlgorithmError


def counters(results):
    return [(r.algorithm, r.spec, r.counters(), r.checks) for r in results]


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(2015, 0) == derive_seed(2015, 0)

    def test_spreads_over_index_and_base(self):
        seeds = {derive_seed(2015, i) for i in range(64)}
        assert len(seeds) == 64
        assert derive_seed(1, 0) != derive_seed(2, 0)


class TestJobConstruction:
    def test_seeded_fills_missing_seeds_deterministically(self):
        engine = ExperimentEngine(base_seed=7)
        jobs = [
            ExperimentJob("flooding", GraphSpec(nodes=8, density="sparse")),
            ExperimentJob("flooding", GraphSpec(nodes=8, density="sparse", seed=99)),
            ExperimentJob("flooding", GraphSpec(nodes=12, density="sparse")),
        ]
        seeded = engine.seeded(jobs)
        assert seeded[0].spec.seed == derive_seed(7, 0)
        assert seeded[1].spec.seed == 99
        assert seeded[2].spec.seed == derive_seed(7, 1)
        again = engine.seeded(jobs)
        assert [job.spec for job in again] == [job.spec for job in seeded]

    def test_seeded_fails_fast_on_unknown_algorithm(self):
        engine = ExperimentEngine()
        with pytest.raises(AlgorithmError):
            engine.seeded([ExperimentJob("bogus", GraphSpec(nodes=8))])

    def test_sweep_jobs_grid(self):
        jobs = ExperimentEngine.sweep_jobs(
            ["kkt-st", "flooding"], [16, 24], density="sparse", seed=1
        )
        assert [(job.algorithm, job.spec.nodes) for job in jobs] == [
            ("kkt-st", 16), ("flooding", 16), ("kkt-st", 24), ("flooding", 24),
        ]

    def test_engine_validates_worker_count(self):
        with pytest.raises(AlgorithmError):
            ExperimentEngine(jobs=0)


class TestExecution:
    def test_serial_results_in_job_order(self):
        engine = ExperimentEngine(jobs=1, base_seed=3)
        results = engine.sweep(["flooding", "kkt-st"], [12, 16], density="sparse", seed=3)
        assert [(r.algorithm, r.n) for r in results] == [
            ("flooding", 12), ("kkt-st", 12), ("flooding", 16), ("kkt-st", 16),
        ]
        assert all(r.ok for r in results)

    def test_parallel_matches_serial(self):
        serial = ExperimentEngine(jobs=1, base_seed=5).sweep(
            ["kkt-st", "flooding"], [12, 16], density="sparse", seed=2
        )
        parallel = ExperimentEngine(jobs=4, base_seed=5).sweep(
            ["kkt-st", "flooding"], [12, 16], density="sparse", seed=2
        )
        assert counters(parallel) == counters(serial)

    def test_parallel_derived_seeds_match_serial(self):
        # No explicit seed: the engine must derive identical per-job seeds,
        # and jobs sharing a spec must share a graph.
        jobs = [
            ExperimentJob("flooding", GraphSpec(nodes=10 + 2 * (i // 2), density="sparse"))
            for i in range(4)
        ]
        serial = ExperimentEngine(jobs=1, base_seed=11).run(jobs)
        parallel = ExperimentEngine(jobs=2, base_seed=11).run(jobs)
        assert counters(parallel) == counters(serial)
        expected = [derive_seed(11, 0), derive_seed(11, 0), derive_seed(11, 1), derive_seed(11, 1)]
        assert [r.spec.seed for r in serial] == expected

    def test_unseeded_compare_shares_one_graph(self):
        # A head-to-head without an explicit seed must still compare on the
        # SAME graph: all jobs share the unseeded spec, hence the seed.
        results = ExperimentEngine(base_seed=9).compare(
            ["kkt-mst", "ghs"], GraphSpec(nodes=16, density="sparse")
        )
        assert results[0].spec == results[1].spec
        assert results[0].spec.seed == derive_seed(9, 0)
        assert results[0].m == results[1].m

    def test_compare_runs_same_spec(self):
        spec = GraphSpec(nodes=16, density="sparse", seed=4)
        results = ExperimentEngine().compare(["kkt-mst", "ghs"], spec)
        assert [r.algorithm for r in results] == ["kkt-mst", "ghs"]
        assert all(r.spec == spec for r in results)
        assert all(r.ok for r in results)

    def test_options_forwarded(self):
        results = ExperimentEngine().run(
            [ExperimentJob("kkt-repair", GraphSpec(nodes=16, density="sparse", seed=6),
                           {"updates": 4})]
        )
        assert results[0].extra["updates"] == 4


def suite_counters(results):
    return [
        (r.algorithm, r.spec, r.workload, r.schedule, r.counters(), r.checks)
        for r in results
    ]


class TestScenarioGrid:
    def test_full_product_in_order(self):
        jobs = scenario_grid(
            ["kkt-repair", "recompute-repair"],
            [GraphSpec(nodes=12, density="sparse", seed=1)],
            workloads=["churn", "insert-heavy"],
            schedules=[None, "random"],
            updates=4,
        )
        assert len(jobs) == 8
        assert [job.algorithm for job in jobs[:2]] == ["kkt-repair", "recompute-repair"]
        assert jobs[0].spec.workload.name == "churn"
        assert jobs[0].spec.schedule is None
        assert jobs[1].spec.schedule is None
        assert jobs[2].spec.schedule.scheduler == "random"
        assert all(job.spec.workload.updates == 4 for job in jobs)

    def test_accepts_spec_objects(self):
        jobs = scenario_grid(
            ["flooding"],
            [GraphSpec(nodes=12, density="sparse")],
            workloads=[WorkloadSpec(name="weight-ramp", updates=3, params={"max_delta": 2})],
            schedules=[ScheduleSpec(scheduler="lifo")],
        )
        assert jobs[0].spec.workload.params == {"max_delta": 2}
        assert jobs[0].spec.schedule.scheduler == "lifo"


class TestRunSuite:
    GRID = dict(
        workloads=["churn", "deletions-only"],
        schedules=[None, "random"],
        updates=4,
    )

    def _jobs(self):
        return scenario_grid(
            ["kkt-repair", "flooding"],
            [GraphSpec(nodes=12, density="sparse")],
            **self.GRID,
        )

    def test_suite_results_carry_provenance(self):
        results = ExperimentEngine(base_seed=3).run_suite(self._jobs())
        assert len(results) == 8
        assert all(r.ok for r in results)
        assert all(r.workload is not None for r in results)
        scheduled = [r for r in results if r.schedule is not None]
        assert {r.schedule.scheduler for r in scheduled} == {"random"}

    def test_parallel_suite_matches_serial(self):
        serial = ExperimentEngine(jobs=1, base_seed=3).run_suite(self._jobs())
        parallel = ExperimentEngine(jobs=4, base_seed=3).run_suite(self._jobs())
        assert suite_counters(parallel) == suite_counters(serial)

    def test_accepts_algorithm_spec_pairs(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=12, density="sparse", seed=2),
            workload=WorkloadSpec(name="churn", updates=4),
        )
        results = ExperimentEngine().run_suite([("kkt-repair", spec)])
        assert results[0].algorithm == "kkt-repair"
        assert results[0].workload.name == "churn"

    def test_seeded_shares_graph_seed_across_scenarios(self):
        # The same unseeded graph spec under different workloads must get the
        # SAME derived seed, so scenarios stay comparable on one graph.
        jobs = self._jobs()
        seeded = ExperimentEngine(base_seed=3).seeded(jobs)
        seeds = {job.spec.graph.seed for job in seeded}
        assert seeds == {derive_seed(3, 0)}
