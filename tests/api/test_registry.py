"""Tests for the algorithm registry and the `run` facade."""

import pytest

from repro.api import (
    AlgorithmRunner,
    GraphSpec,
    RunResult,
    algorithm_summaries,
    get_runner,
    list_algorithms,
    register,
    run,
)
from repro.network.errors import AlgorithmError

BUILTIN = ["flooding", "ghs", "kkt-mst", "kkt-repair", "kkt-st", "recompute-repair"]


class TestRegistryLookup:
    def test_builtin_algorithms_registered(self):
        names = list_algorithms()
        for name in BUILTIN:
            assert name in names
        assert names == sorted(names)

    def test_get_runner_returns_protocol_instance(self):
        for name in BUILTIN:
            runner = get_runner(name)
            assert isinstance(runner, AlgorithmRunner)
            assert runner.name == name
            assert runner.summary

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(AlgorithmError) as excinfo:
            get_runner("kruskal-turbo")
        message = str(excinfo.value)
        assert "kruskal-turbo" in message
        assert "kkt-mst" in message

    def test_summaries_cover_all_names(self):
        summaries = algorithm_summaries()
        assert set(summaries) == set(list_algorithms())
        assert all(summaries.values())


class TestRegisterDecorator:
    def test_rejects_duplicate_names(self):
        with pytest.raises(AlgorithmError, match="already registered"):

            @register("kkt-mst")
            class Impostor:
                """Not the real thing."""

    def test_rejects_uppercase_names(self):
        with pytest.raises(AlgorithmError, match="lowercase"):
            register("KKT-MST")

    def test_rejects_empty_names(self):
        with pytest.raises(AlgorithmError):
            register("")

    def test_docstring_less_class_falls_back_to_name(self):
        from repro.api.registry import _REGISTRY

        try:
            @register("zz-test-noop")
            class NoDoc:
                def run(self, spec, **options):  # pragma: no cover - never run
                    raise NotImplementedError

            assert NoDoc.summary == "zz-test-noop"
            assert "zz-test-noop" in algorithm_summaries()
        finally:
            # Leaking the dummy would make every later registry consumer
            # (the fuzz campaign, notably) trip over it.
            _REGISTRY.pop("zz-test-noop", None)


class TestRunFacade:
    def test_run_kkt_mst_returns_valid_result(self):
        result = run("kkt-mst", GraphSpec(nodes=24, density="sparse", seed=7))
        assert isinstance(result, RunResult)
        assert result.algorithm == "kkt-mst"
        assert result.n == 24
        assert result.messages > 0
        assert result.checks == {"spanning": True, "minimum": True}
        assert result.ok

    def test_run_ghs_returns_valid_result(self):
        result = run("ghs", GraphSpec(nodes=20, density="dense", seed=3))
        assert result.ok
        assert result.checks["minimum"]

    def test_run_flooding_costs_theta_m(self):
        result = run("flooding", GraphSpec(nodes=24, density="sparse", seed=2))
        assert result.m <= result.messages <= 2 * result.m
        assert result.ok

    def test_run_repair_algorithms(self):
        spec = GraphSpec(nodes=20, density="sparse", seed=5)
        impromptu = run("kkt-repair", spec, updates=4)
        recompute = run("recompute-repair", spec, updates=4)
        assert impromptu.ok and recompute.ok
        assert impromptu.phases == recompute.phases == impromptu.extra["updates"]

    def test_run_unknown_algorithm(self):
        with pytest.raises(AlgorithmError):
            run("bogus", GraphSpec(nodes=8))

    def test_run_forwards_options(self):
        spec = GraphSpec(nodes=16, density="sparse", seed=6)
        result = run("kkt-mst", spec, phase_policy="paper", c=2.0)
        assert result.extra["phase_policy"] == "paper"
        assert result.extra["c"] == 2.0
        with pytest.raises(AlgorithmError):
            run("kkt-mst", spec, phase_policy="whenever")

    def test_acceptance_criterion_round_trip(self):
        # The ISSUE's acceptance example, verbatim.
        for name in ("kkt-mst", "ghs"):
            result = run(name, GraphSpec(nodes=96, density="complete", seed=7))
            assert isinstance(result, RunResult)
            assert RunResult.from_json(result.to_json()) == result
