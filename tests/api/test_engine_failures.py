"""Tests for the engine's failure paths (``on_error`` and error_result).

The experiment service keeps an engine alive across many batches, so a
single poisoned spec must become a per-job error record — never a crashed
worker pool.  These tests pin that contract and the determinism of suites
containing partial failures.
"""

import pytest

from repro.api import (
    ExperimentEngine,
    ExperimentJob,
    ExperimentSpec,
    GraphSpec,
    WorkloadSpec,
    error_result,
)
from repro.api.registry import _REGISTRY, register
from repro.network.errors import AlgorithmError
from repro.service.store import canonical_result


@pytest.fixture
def failing_runner():
    """A temporarily-registered runner whose run() always raises."""

    @register("zz-always-fails")
    class AlwaysFails:
        """Raises on every run; exists only for failure-path tests."""

        def run(self, spec, **options):
            raise ValueError("injected failure")

    try:
        yield "zz-always-fails"
    finally:
        _REGISTRY.pop("zz-always-fails", None)


class TestOnErrorModes:
    def test_default_is_raise(self):
        assert ExperimentEngine().on_error == "raise"

    def test_invalid_mode_rejected(self):
        with pytest.raises(AlgorithmError, match="on_error"):
            ExperimentEngine(on_error="ignore")

    def test_raise_mode_propagates_runner_exception(self, failing_runner):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ValueError, match="injected failure"):
            engine.run([ExperimentJob(failing_runner, GraphSpec(nodes=8, seed=1))])

    def test_record_mode_yields_error_result_not_crash(self, failing_runner):
        engine = ExperimentEngine(jobs=1, on_error="record")
        good = ExperimentJob("kkt-mst", GraphSpec(nodes=12, density="sparse", seed=2))
        bad = ExperimentJob(failing_runner, GraphSpec(nodes=8, seed=1))
        results = engine.run([bad, good])
        assert len(results) == 2
        failed, succeeded = results
        assert not failed.ok
        assert failed.checks == {"completed": False}
        assert failed.extra["error"] == "injected failure"
        assert failed.extra["error_type"] == "ValueError"
        assert failed.messages == 0 and failed.rounds == 0
        assert succeeded.ok  # the rest of the batch still completed

    def test_record_mode_absorbs_unknown_algorithm(self):
        engine = ExperimentEngine(jobs=1, on_error="record")
        results = engine.run([ExperimentJob("no-such-algo", GraphSpec(nodes=8, seed=1))])
        assert not results[0].ok
        assert results[0].extra["error_type"] == "AlgorithmError"

    def test_raise_mode_fails_fast_on_unknown_algorithm(self):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(AlgorithmError):
            engine.seeded([ExperimentJob("no-such-algo", GraphSpec(nodes=8, seed=1))])


class TestErrorResultShape:
    def test_preserves_scenario_provenance(self):
        scenario = ExperimentSpec(
            graph=GraphSpec(nodes=10, density="sparse", seed=3),
            workload=WorkloadSpec(name="churn", updates=4),
        )
        result = error_result("kkt-repair", scenario, RuntimeError("boom"))
        assert result.algorithm == "kkt-repair"
        assert result.n == 10
        assert result.workload is not None and result.workload.name == "churn"
        assert result.wall_time_s == 0.0
        assert result.extra["error"] == "boom"

    def test_round_trips_through_dict(self):
        result = error_result("ghs", GraphSpec(nodes=6, seed=1), ValueError("x"))
        from repro.api import RunResult

        assert RunResult.from_dict(result.to_dict()) == result


class TestPartialFailureDeterminism:
    def test_parallel_equals_serial_with_partial_failures(self):
        # A bad option fails identically in-process and in a worker
        # subprocess (unlike a test-local runner class, which a subprocess
        # cannot see), so it is the right poison for this comparison.
        jobs = [
            ExperimentJob("kkt-mst", GraphSpec(nodes=16, density="sparse", seed=4)),
            ExperimentJob(
                "kkt-mst",
                GraphSpec(nodes=16, density="sparse", seed=4),
                {"phase_policy": "whenever"},
            ),
            ExperimentJob("ghs", GraphSpec(nodes=12, density="dense", seed=5)),
        ]
        serial = ExperimentEngine(jobs=1, on_error="record").run(jobs)
        parallel = ExperimentEngine(jobs=2, on_error="record").run(jobs)
        assert [canonical_result(r.to_dict()) for r in serial] == [
            canonical_result(r.to_dict()) for r in parallel
        ]
        assert [r.ok for r in serial] == [True, False, True]

    def test_repeated_runs_identical(self, failing_runner):
        engine = ExperimentEngine(jobs=1, on_error="record")
        job = ExperimentJob(failing_runner, GraphSpec(nodes=8, seed=9))
        first = engine.run([job])[0]
        second = engine.run([job])[0]
        assert canonical_result(first.to_dict()) == canonical_result(second.to_dict())
