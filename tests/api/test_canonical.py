"""Golden-value tests for the shared canonical-JSON content hashing.

The hash format is load-bearing in two places: fuzz corpus entry ids
(PR 5) and the service's content-addressed result store (PR 7).  These
tests pin exact digests so any accidental change to the canonical form
(separators, key order, float formatting) fails loudly instead of
silently orphaning every stored result and corpus entry.
"""

import json

import pytest

from repro.api import ExperimentSpec, GraphSpec, WorkloadSpec
from repro.api.canonical import canonical_json, content_hash, short_hash


class TestCanonicalJson:
    def test_keys_are_sorted_recursively(self):
        payload = {"b": 1, "a": [2, {"z": True, "y": None}]}
        assert canonical_json(payload) == '{"a": [2, {"y": null, "z": true}], "b": 1}'

    def test_matches_plain_sort_keys_dumps(self):
        # The canonical form is exactly json.dumps(..., sort_keys=True) with
        # default separators — the PR-5 fuzz corpus format, unchanged.
        payload = {"nodes": 24, "density": "sparse", "seed": 7}
        assert canonical_json(payload) == json.dumps(payload, sort_keys=True)

    def test_equal_payloads_regardless_of_insertion_order(self):
        forward = {"algorithm": "kkt-mst", "spec": {"nodes": 8, "seed": 1}}
        backward = {"spec": {"seed": 1, "nodes": 8}, "algorithm": "kkt-mst"}
        assert canonical_json(forward) == canonical_json(backward)
        assert content_hash(forward) == content_hash(backward)

    def test_non_serializable_payload_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})


class TestGoldenDigests:
    """Exact digests; a failure here means the on-disk format changed."""

    def test_content_hash_golden(self):
        assert content_hash({"algorithm": "kkt-mst", "spec": {"nodes": 24}}) == (
            "426ffe2c4263f9bcac7896667ae8701907e26c864284b90cc671227dc4f13c04"
        )

    def test_short_hash_is_a_content_hash_prefix(self):
        payload = {"oracle": "mst", "algorithm": "kkt-mst", "minimized": {"nodes": 8}}
        assert short_hash(payload) == "e632564f1f57"
        assert content_hash(payload).startswith(short_hash(payload))
        assert short_hash(payload, length=6) == "e63256"

    def test_graph_spec_content_hash_golden(self):
        spec = GraphSpec(nodes=24, density="sparse", seed=7)
        assert spec.content_hash() == (
            "3e5915f430cde4a4d1799cde74e6637c02d7807c494207a53780bf87cf00bc6f"
        )

    def test_experiment_spec_content_hash_golden(self):
        scenario = ExperimentSpec(
            graph=GraphSpec(nodes=24, density="sparse", seed=7),
            workload=WorkloadSpec(name="churn", updates=4),
        )
        assert scenario.content_hash() == (
            "d7ea8048bf6ac67ca550b3d23e58de1c3390f9834608ddb9977ec15caa3d08a1"
        )

    def test_spec_hash_is_hash_of_to_dict(self):
        spec = GraphSpec(nodes=16, density="dense", seed=3)
        assert spec.content_hash() == content_hash(spec.to_dict())


class TestFuzzCorpusCompatibility:
    def test_entry_id_still_the_pr5_format(self):
        # entry_id predates the shared helper; refactoring it onto
        # canonical.short_hash must not move a single corpus entry.
        from repro.fuzz.corpus import entry_id

        minimized = {"nodes": 8, "density": "sparse", "seed": 1}
        expected = json.dumps(
            {"oracle": "mst", "algorithm": "kkt-mst", "minimized": minimized},
            sort_keys=True,
        )
        import hashlib

        digest = hashlib.sha256(expected.encode("utf-8")).hexdigest()[:12]
        assert entry_id("mst", "kkt-mst", minimized) == digest
