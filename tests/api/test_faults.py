"""Tests for the fault axis: registry, ``FaultSpec``, programs, determinism.

The headline guarantees pinned here:

* ``ExperimentSpec`` round-trips through JSON with a non-trivial
  ``FaultSpec`` and old payloads without a ``faults`` field still parse;
* fault programs are deterministic: the same spec yields the same topology
  stream and the same planned event schedule;
* scheduler × fault determinism — the same ``ExperimentSpec`` (including
  its ``FaultSpec``) produces identical counters *and* an identical fault
  event log across repeated runs, both serially and through
  ``ExperimentEngine`` worker processes, for all four schedulers.
"""

import json

import pytest

from repro.api import (
    ExperimentEngine,
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    ScheduleSpec,
    WorkloadSpec,
    fault_summaries,
    get_fault,
    list_faults,
    register_fault,
    run,
    scenario_grid,
)
from repro.api.faults import FaultProgram
from repro.api.runners import _reference_forest
from repro.api.scenario import stream_fingerprint
from repro.dynamic import UpdateKind
from repro.network.errors import AlgorithmError
from repro.network.scheduler import list_schedulers

BUILTIN_FAULTS = [
    "byz-corrupt",
    "byz-equivocate",
    "byz-replay",
    "byz-silent",
    "crash-leaves",
    "link-storm",
    "lossy-uniform",
    "none",
    "partition-heal",
]


def _graph_and_forest(nodes=24, density="sparse", seed=3):
    graph = GraphSpec(nodes=nodes, density=density, seed=seed).build()
    return graph, _reference_forest(graph)


class TestRegistry:
    def test_builtins_registered(self):
        assert list_faults() == BUILTIN_FAULTS

    def test_summaries_cover_every_program(self):
        summaries = fault_summaries()
        assert sorted(summaries) == BUILTIN_FAULTS
        assert all(summaries.values())

    def test_unknown_name_lists_known_programs(self):
        with pytest.raises(AlgorithmError, match="registered fault programs"):
            get_fault("meteor-strike")

    def test_register_rejects_bad_names_and_duplicates(self):
        with pytest.raises(AlgorithmError):
            register_fault("Not Lower")(lambda graph, forest, seed=None: None)
        with pytest.raises(AlgorithmError):

            @register_fault("none")
            def other_none(graph, forest, seed=None):  # pragma: no cover
                return FaultProgram("none")


class TestFaultSpec:
    def test_defaults_to_none_program(self):
        spec = FaultSpec()
        assert spec.name == "none"
        assert spec.is_none

    def test_unknown_name_fails_fast(self):
        with pytest.raises(AlgorithmError):
            FaultSpec(name="meteor-strike")

    def test_json_round_trip(self):
        spec = FaultSpec(name="lossy-uniform", seed=9, params={"drop": 0.2})
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(AlgorithmError):
            FaultSpec.from_dict({"name": "none", "severity": 11})

    def test_hashable_with_dict_params(self):
        a = FaultSpec(name="lossy-uniform", params={"drop": 0.1})
        b = FaultSpec(name="lossy-uniform", params={"drop": 0.1})
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_seed_resolution(self):
        spec = FaultSpec(name="link-storm")
        assert spec.resolve_seed(17).seed == 17
        assert FaultSpec(name="link-storm", seed=2).resolve_seed(17).seed == 2


class TestExperimentSpecFourthAxis:
    def test_round_trip_with_nontrivial_faults(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=32, density="sparse", seed=7),
            workload=WorkloadSpec(name="churn", updates=6),
            schedule=ScheduleSpec(scheduler="random", seed=1),
            faults=FaultSpec(name="partition-heal", seed=4, params={"fraction": 0.3}),
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert hash(again) == hash(spec)
        assert json.loads(spec.to_json())["faults"]["name"] == "partition-heal"

    def test_old_payload_without_faults_field_parses(self):
        payload = {"graph": {"nodes": 16}, "workload": None, "schedule": None}
        spec = ExperimentSpec.from_dict(payload)
        assert spec.faults is None
        assert spec.resolved_faults() is None

    def test_resolved_faults_inherits_graph_seed(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, seed=11), faults=FaultSpec(name="link-storm")
        )
        assert spec.resolved_faults().seed == 11


class TestPrograms:
    def test_none_program_is_empty(self):
        graph, forest = _graph_and_forest()
        program = FaultSpec(name="none").build(graph, forest)
        assert len(program.stream) == 0
        assert program.injector is None
        assert program.event_log() == []

    def test_crash_leaves_isolates_crashed_nodes(self):
        graph, forest = _graph_and_forest()
        program = FaultSpec(name="crash-leaves", seed=5).build(graph, forest)
        crashed = [event[2] for event in program.planned if event[1] == "crash"]
        assert crashed
        assert program.injector is not None
        assert program.injector.crashed_nodes == sorted(crashed)
        # The topology view deletes every incident edge of a crashed leaf.
        touched = {
            node
            for update in program.stream
            for node in (update.u, update.v)
        }
        assert set(crashed) <= touched
        assert all(update.kind is UpdateKind.DELETE for update in program.stream)

    def test_partition_heal_stream_restores_topology(self):
        graph, forest = _graph_and_forest()
        before = sorted((e.u, e.v, e.weight) for e in graph.edges())
        program = FaultSpec(name="partition-heal", seed=2).build(graph, forest)
        assert len(program.stream) > 0
        program.stream.validate_against(graph)  # applicable in order
        shadow = graph.copy()
        for update in program.stream:
            if update.kind is UpdateKind.DELETE:
                shadow.remove_edge(update.u, update.v)
            else:
                shadow.add_edge(update.u, update.v, update.weight)
        assert sorted((e.u, e.v, e.weight) for e in shadow.edges()) == before

    def test_link_storm_count_param(self):
        graph, forest = _graph_and_forest()
        program = FaultSpec(name="link-storm", seed=1, params={"count": 5}).build(
            graph, forest
        )
        assert len(program.stream) == 5
        assert all(update.kind is UpdateKind.DELETE for update in program.stream)
        u, v = program.stream[0].u, program.stream[0].v
        assert program.injector.link_is_down(u, v, 10 ** 6)  # fail-stop

    def test_param_validation(self):
        graph, forest = _graph_and_forest(nodes=8)
        with pytest.raises(AlgorithmError):
            FaultSpec(name="crash-leaves", params={"fraction": 0.0}).build(graph, forest)
        with pytest.raises(AlgorithmError):
            FaultSpec(name="partition-heal", params={"fraction": 1.0}).build(
                graph, forest
            )
        with pytest.raises(AlgorithmError):
            FaultSpec(name="link-storm", params={"count": 0}).build(graph, forest)

    @pytest.mark.parametrize("name", ["crash-leaves", "partition-heal", "link-storm"])
    def test_programs_are_seed_deterministic(self, name):
        graph, forest = _graph_and_forest()
        first = FaultSpec(name=name, seed=6).build(graph, forest)
        graph2, forest2 = _graph_and_forest()
        second = FaultSpec(name=name, seed=6).build(graph2, forest2)
        assert stream_fingerprint(first.stream) == stream_fingerprint(second.stream)
        assert first.planned == second.planned
        different = FaultSpec(name=name, seed=7).build(graph, forest)
        # Different seeds should (generically) pick different victims.
        assert (
            stream_fingerprint(different.stream) != stream_fingerprint(first.stream)
            or different.planned != first.planned
            or name == "partition-heal"  # a coarse block split may collide
        )


def _strip_wall(result):
    payload = result.to_dict()
    payload.pop("wall_time_s")
    return payload


class TestSchedulerFaultDeterminism:
    """Same spec (incl. FaultSpec) => identical counters and fault log."""

    @pytest.mark.parametrize("scheduler", sorted(list_schedulers()))
    def test_repeated_serial_runs_identical(self, scheduler):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=20, density="sparse", seed=4),
            workload=WorkloadSpec(name="churn", updates=4),
            schedule=ScheduleSpec(scheduler=scheduler),
            faults=FaultSpec(name="link-storm", params={"count": 3}),
        )
        first = run("kkt-repair", spec)
        second = run("kkt-repair", spec)
        assert _strip_wall(first) == _strip_wall(second)
        assert first.extra["fault_events"] == second.extra["fault_events"]
        assert first.extra["fault_events"]  # the log is non-trivial

    @pytest.mark.parametrize("scheduler", sorted(list_schedulers()))
    def test_parallel_engine_matches_serial(self, scheduler):
        jobs = scenario_grid(
            ["kkt-repair", "recompute-repair"],
            [GraphSpec(nodes=16, density="sparse", seed=2)],
            workloads=[WorkloadSpec(name="churn", updates=3)],
            schedules=[ScheduleSpec(scheduler=scheduler)],
            faults=[FaultSpec(name="crash-leaves")],
        )
        serial = ExperimentEngine(jobs=1).run_suite(jobs)
        parallel = ExperimentEngine(jobs=2).run_suite(jobs)
        assert [_strip_wall(r) for r in serial] == [_strip_wall(r) for r in parallel]
        assert all(r.faults is not None and r.faults.name == "crash-leaves" for r in serial)
        assert all("fault_events" in r.extra for r in serial)


class TestGridAndSuite:
    def test_scenario_grid_gains_the_fault_dimension(self):
        jobs = scenario_grid(
            ["kkt-repair"],
            [GraphSpec(nodes=16, seed=1)],
            workloads=["churn"],
            schedules=[None],
            faults=[None, "link-storm"],
            updates=3,
        )
        assert len(jobs) == 2
        assert jobs[0].spec.faults is None
        assert jobs[1].spec.faults == FaultSpec(name="link-storm")

    def test_run_result_records_fault_provenance(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=2),
            faults=FaultSpec(name="link-storm", params={"count": 2}),
        )
        result = run("kkt-repair", spec, updates=3)
        assert result.faults is not None and result.faults.name == "link-storm"
        assert result.faults.seed == 2  # resolved against the graph seed
        payload = json.loads(result.to_json())
        assert payload["faults"]["name"] == "link-storm"
        assert payload["extra"]["fault_updates_applied"] == 2
        again = type(result).from_json(result.to_json())
        assert again.to_dict() == result.to_dict()

    def test_both_repair_runners_consume_the_same_fault_stream(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=20, density="sparse", seed=6),
            faults=FaultSpec(name="link-storm"),
        )
        kkt = run("kkt-repair", spec, updates=4)
        baseline = run("recompute-repair", spec, updates=4)
        assert kkt.extra["fault_events"] == baseline.extra["fault_events"]
        assert kkt.extra["stream_fingerprint"] == baseline.extra["stream_fingerprint"]

    def test_named_none_is_provenance_only(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=16, density="sparse", seed=2),
            faults=FaultSpec(name="none"),
        )
        result = run("kkt-repair", spec, updates=3)
        assert result.faults is not None and result.faults.is_none
        assert "fault_events" not in result.extra

    def test_flooding_under_lossy_links_records_dynamic_events(self):
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=24, density="dense", seed=3),
            faults=FaultSpec(name="lossy-uniform", params={"drop": 0.3}),
        )
        result = run("flooding", spec)
        dropped = [event for event in result.extra["fault_events"] if event[1] == "drop"]
        assert dropped  # at 30% loss on a dense graph, something was dropped
        repeat = run("flooding", spec)
        assert repeat.extra["fault_events"] == result.extra["fault_events"]
