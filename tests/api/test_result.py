"""Tests for :class:`repro.api.result.RunResult` serialisation."""

import json

import pytest

from repro.api import GraphSpec, RunResult
from repro.network.errors import AlgorithmError


def sample_result(**overrides):
    payload = dict(
        algorithm="kkt-mst",
        spec=GraphSpec(nodes=24, density="sparse", seed=3),
        n=24,
        m=72,
        messages=1234,
        bits=56789,
        rounds=310,
        phases=3,
        wall_time_s=0.125,
        checks={"spanning": True, "minimum": True},
        extra={"broadcast_echoes": 7},
    )
    payload.update(overrides)
    return RunResult(**payload)


class TestDerived:
    def test_ok_requires_all_checks(self):
        assert sample_result().ok
        assert not sample_result(checks={"spanning": True, "minimum": False}).ok

    def test_ok_with_no_checks(self):
        assert sample_result(checks={}).ok

    def test_messages_per_edge(self):
        assert sample_result().messages_per_edge == pytest.approx(1234 / 72)

    def test_counters_exclude_wall_time(self):
        counters = sample_result().counters()
        assert counters == {"messages": 1234, "bits": 56789, "rounds": 310, "phases": 3}


class TestJsonRoundTrip:
    def test_round_trip_equality(self):
        result = sample_result()
        assert RunResult.from_json(result.to_json()) == result

    def test_json_is_a_flat_object(self):
        payload = json.loads(sample_result().to_json())
        assert payload["algorithm"] == "kkt-mst"
        assert payload["spec"]["nodes"] == 24
        assert payload["checks"]["minimum"] is True

    def test_dict_round_trip(self):
        result = sample_result()
        assert RunResult.from_dict(result.to_dict()) == result

    def test_from_dict_missing_fields(self):
        payload = sample_result().to_dict()
        del payload["messages"]
        with pytest.raises(AlgorithmError, match="missing"):
            RunResult.from_dict(payload)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(AlgorithmError):
            RunResult.from_json("{not json")
        with pytest.raises(AlgorithmError):
            RunResult.from_json("[1, 2, 3]")
