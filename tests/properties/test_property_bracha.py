"""Property tests: Bracha's guarantees over the whole (n, t, adversary) band.

For every group size ``n`` and every tolerated bound ``t < n/3``, against
seeded adversaries running each Byzantine program — compromising either a
non-sender subset or the sender itself — the executed protocol must satisfy

* **agreement**: no two honest nodes deliver different values;
* **totality**: if any honest node delivers, every honest node delivers;
* **validity**: with an honest sender, every honest node delivers the
  sender's value (our benign-network schedulers deliver everything, so the
  asynchronous "eventually" collapses to "by quiescence").

And the boundary itself is part of the property: every ``t >= n/3`` is
rejected at construction time.
"""

import random

import pytest

from repro.byzantine import (
    BYZANTINE_PROGRAMS,
    BrachaConfig,
    ByzantineBehavior,
    ByzantineInjector,
    run_bracha_broadcast,
)
from repro.network.errors import AlgorithmError

SIZES = range(4, 9)


def _tolerated(n):
    return range(1, (n - 1) // 3 + 1)


def _adversary(n, t, program, seed, include_sender):
    pool = list(range(2, n + 1))
    rng = random.Random(seed)
    if include_sender:
        nodes = {1, *rng.sample(pool, t - 1)}
    else:
        nodes = set(rng.sample(pool, t))
    behavior = ByzantineBehavior(nodes, program, seed=seed, rate=1.0)
    return nodes, ByzantineInjector(behavior)


def _assert_agreement_and_totality(run, byzantine):
    honest = run.honest_delivered(byzantine)
    delivered = [value for value in honest.values() if value is not None]
    # Agreement: at most one distinct delivered value among honest nodes.
    assert len(set(delivered)) <= 1
    # Totality: all-or-nothing across the honest group.
    assert len(delivered) in (0, len(honest))


@pytest.mark.parametrize("program", BYZANTINE_PROGRAMS)
@pytest.mark.parametrize("n", SIZES)
def test_honest_sender_validity_under_every_program(n, program):
    for t in _tolerated(n):
        for seed in (0, 1):
            byzantine, injector = _adversary(n, t, program, seed, include_sender=False)
            run = run_bracha_broadcast(n, t, value=77, faults=injector)
            honest = run.honest_delivered(byzantine)
            assert honest == {node: 77 for node in honest}
            _assert_agreement_and_totality(run, byzantine)


@pytest.mark.parametrize("program", BYZANTINE_PROGRAMS)
@pytest.mark.parametrize("n", SIZES)
def test_byzantine_sender_cannot_break_agreement(n, program):
    for t in _tolerated(n):
        for seed in (0, 1, 2):
            byzantine, injector = _adversary(n, t, program, seed, include_sender=True)
            run = run_bracha_broadcast(n, t, value=77, faults=injector)
            _assert_agreement_and_totality(run, byzantine)


@pytest.mark.parametrize("n", SIZES)
def test_async_schedules_preserve_the_guarantees(n):
    t = (n - 1) // 3
    byzantine, injector = _adversary(n, t, "equivocate", 3, include_sender=True)
    run = run_bracha_broadcast(n, t, value=19, engine="async", faults=injector)
    _assert_agreement_and_totality(run, byzantine)


@pytest.mark.parametrize("n", range(1, 16))
def test_every_unsound_bound_is_rejected(n):
    cap = (n - 1) // 3
    for t in range(cap + 1, n + 2):
        with pytest.raises(AlgorithmError, match="n > 3t"):
            BrachaConfig(n=n, t=t)
    # ... and the whole tolerated band constructs fine.
    for t in range(cap + 1):
        BrachaConfig(n=n, t=t)
