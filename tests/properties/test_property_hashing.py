"""Property-based tests for the hash families and sketches."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.hashing import random_odd_hash, random_pairwise_hash
from repro.core.polynomial import SetEqualitySketch
from repro.core.primes import is_prime, next_prime
from repro.core.sketches import (
    local_prefix_parities,
    local_xor_below,
    pack_parity_word,
    unpack_parity_word,
    xor_vector_combine,
)


class TestOddHashProperties:
    @given(st.integers(min_value=1, max_value=2 ** 40), st.integers(min_value=0, max_value=2 ** 32))
    @settings(max_examples=80, deadline=None)
    def test_output_binary_and_deterministic(self, universe, seed):
        rng = random.Random(seed)
        h = random_odd_hash(universe, rng)
        x = (seed % universe) + 1
        value = h(x)
        assert value in (0, 1)
        assert h(x) == value

    @given(
        st.lists(st.integers(min_value=1, max_value=2 ** 20), min_size=0, max_size=40),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_parity_matches_sum(self, elements, seed):
        rng = random.Random(seed)
        h = random_odd_hash(2 ** 20, rng)
        assert h.parity_of(elements) == sum(h(x) for x in elements) % 2

    @given(
        st.lists(st.integers(min_value=1, max_value=2 ** 20), min_size=1, max_size=30, unique=True),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_duplicated_set_has_even_parity(self, elements, seed):
        """XOR-ing a set with itself (both endpoints in the tree) cancels."""
        rng = random.Random(seed)
        h = random_odd_hash(2 ** 20, rng)
        assert h.parity_of(elements + elements) == 0


class TestPairwiseHashProperties:
    @given(
        st.integers(min_value=4, max_value=2 ** 20),
        st.sampled_from([4, 8, 16, 64, 256]),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_respected(self, universe, range_size, seed):
        rng = random.Random(seed)
        h = random_pairwise_hash(universe, range_size, rng)
        for x in range(1, min(universe, 50)):
            assert 0 <= h(x) < range_size

    @given(
        st.lists(st.integers(min_value=1, max_value=2 ** 16), min_size=0, max_size=25, unique=True),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_prefix_parities_consistent_with_xor_below(self, elements, seed):
        rng = random.Random(seed)
        h = random_pairwise_hash(2 ** 16, 64, rng)
        parities = local_prefix_parities(elements, h)
        for i in range(h.log_range + 1):
            selected = [e for e in elements if h(e) < (1 << i)]
            assert parities[i] == len(selected) % 2
            xor = 0
            for e in selected:
                xor ^= e
            assert local_xor_below(elements, h, i) == xor


class TestSketchAndWordProperties:
    @given(st.lists(st.sampled_from([0, 1]), min_size=0, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_roundtrip(self, bits):
        assert unpack_parity_word(pack_parity_word(bits), len(bits)) == bits

    @given(
        st.lists(
            st.lists(st.sampled_from([0, 1]), min_size=6, max_size=6),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_xor_vector_combine_is_componentwise_parity(self, vectors):
        combined = xor_vector_combine(vectors[0], vectors[1:])
        for index in range(6):
            assert combined[index] == sum(v[index] for v in vectors) % 2

    @given(
        st.lists(st.integers(min_value=1, max_value=10 ** 6), min_size=0, max_size=20, unique=True),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_multisets_always_agree(self, edges, seed):
        rng = random.Random(seed)
        p = next_prime(10 ** 7)
        alpha = rng.randrange(p)
        sketch = SetEqualitySketch.from_local_edges(edges, list(reversed(edges)), alpha, p)
        assert sketch.sides_equal


class TestPrimeProperties:
    @given(st.integers(min_value=2, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_next_prime_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)
        # no prime strictly between n and p for small gaps we can check cheaply
        for candidate in range(n + 1, min(p, n + 50)):
            assert not is_prime(candidate)
