"""Property: results and experiment specs survive JSON round-trips exactly.

The acceptance bar for the scenario API is that *every* registered
algorithm × workload combination yields a :class:`RunResult` whose
``to_json``/``from_json`` is the identity (same for the
:class:`ExperimentSpec` that produced it) — that is what makes ``repro
suite --json`` output a faithful, replayable record of a sweep.
"""

import pytest

from repro.api import (
    ExperimentSpec,
    GraphSpec,
    RunResult,
    ScheduleSpec,
    WorkloadSpec,
    get_workload,
    list_algorithms,
    list_workloads,
    run,
)
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic import UpdateTrace
from repro.generators import random_connected_graph

ALGORITHMS = list_algorithms()
WORKLOADS = list_workloads()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A small recorded trace so trace-replay participates in the grid."""
    graph = random_connected_graph(12, 30, seed=3)
    report = BuildMST(graph, config=AlgorithmConfig(n=12, seed=3)).run()
    stream = get_workload("churn")(graph, report.forest, count=4, seed=3)
    trace = UpdateTrace.record(graph, report.forest, stream, mode="mst", seed=3)
    path = tmp_path_factory.mktemp("traces") / "grid.trace.json"
    trace.save(path)
    return str(path)


def _workload_spec(name, trace_path):
    params = {"path": trace_path} if name == "trace-replay" else {}
    return WorkloadSpec(name=name, updates=4, params=params)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_algorithm_workload_combination_round_trips(
    algorithm, workload, trace_path
):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=12, density="sparse", seed=7),
        workload=_workload_spec(workload, trace_path),
        schedule=ScheduleSpec(scheduler="random"),
    )
    assert ExperimentSpec.from_json(spec.to_json()) == spec

    result = run(algorithm, spec)
    assert result.ok, result.checks
    restored = RunResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    assert restored.workload == result.workload
    assert restored.schedule == result.schedule
    assert restored.spec == spec.graph


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_bare_graph_spec_results_still_round_trip(algorithm):
    result = run(algorithm, GraphSpec(nodes=12, density="sparse", seed=7))
    restored = RunResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    assert restored.schedule is None
    if algorithm in ("kkt-repair", "recompute-repair"):
        # Repair always runs a workload; the implicit default is recorded.
        assert restored.workload == result.workload
        assert restored.workload.name == "churn"
    else:
        assert restored.workload is None


def test_pr1_result_payloads_still_load():
    """Payloads without workload/schedule fields (PR-1 records) stay loadable."""
    result = run("kkt-st", GraphSpec(nodes=12, density="sparse", seed=7))
    payload = result.to_dict()
    payload.pop("workload")
    payload.pop("schedule")
    restored = RunResult.from_dict(payload)
    assert restored.counters() == result.counters()
    assert restored.workload is None and restored.schedule is None


class TestArbitrarySpecsRoundTrip:
    """Property: *any* valid ExperimentSpec survives serialisation exactly.

    The fuzzing spec generator samples the whole graph x workload x schedule
    x fault space, so these are the adversarial inputs for the round-trip,
    hash and equality contracts — not just the hand-picked grid above.
    """

    def _specs(self, count=60, seed=20150721):
        from repro.fuzz import SpecGenerator

        return list(SpecGenerator(seed=seed).stream(count))

    def test_dict_and_json_round_trips_are_the_identity(self):
        for spec in self._specs():
            assert ExperimentSpec.from_dict(spec.to_dict()) == spec
            assert ExperimentSpec.from_json(spec.to_json()) == spec
            # to_dict must itself be JSON-stable (no exotic value types).
            import json

            assert json.loads(spec.to_json()) == spec.to_dict()

    def test_specs_stay_hashable_and_equal(self):
        specs = self._specs()
        for spec in specs:
            restored = ExperimentSpec.from_dict(spec.to_dict())
            assert hash(restored) == hash(spec)
        # Usable as set/dict keys: a round-tripped copy never duplicates.
        pool = set(specs)
        pool.update(ExperimentSpec.from_json(spec.to_json()) for spec in specs)
        assert len(pool) == len(set(specs))

    def test_legacy_payloads_without_faults_parse(self):
        """Specs serialised before the fault axis existed stay loadable."""
        for spec in self._specs(count=30):
            payload = spec.to_dict()
            payload.pop("faults")
            restored = ExperimentSpec.from_dict(payload)
            assert restored.faults is None
            assert restored.graph == spec.graph
            assert restored.workload == spec.workload
            assert restored.schedule == spec.schedule

    def test_legacy_payload_with_only_a_graph(self):
        payload = {"graph": {"nodes": 12, "density": "sparse", "seed": 3}}
        restored = ExperimentSpec.from_dict(payload)
        assert restored.workload is None
        assert restored.schedule is None
        assert restored.faults is None
        assert hash(restored) == hash(ExperimentSpec.from_dict(payload))
