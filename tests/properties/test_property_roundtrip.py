"""Property: results and experiment specs survive JSON round-trips exactly.

The acceptance bar for the scenario API is that *every* registered
algorithm × workload combination yields a :class:`RunResult` whose
``to_json``/``from_json`` is the identity (same for the
:class:`ExperimentSpec` that produced it) — that is what makes ``repro
suite --json`` output a faithful, replayable record of a sweep.
"""

import pytest

from repro.api import (
    ExperimentSpec,
    GraphSpec,
    RunResult,
    ScheduleSpec,
    WorkloadSpec,
    get_workload,
    list_algorithms,
    list_workloads,
    run,
)
from repro.core.build_mst import BuildMST
from repro.core.config import AlgorithmConfig
from repro.dynamic import UpdateTrace
from repro.generators import random_connected_graph

ALGORITHMS = list_algorithms()
WORKLOADS = list_workloads()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A small recorded trace so trace-replay participates in the grid."""
    graph = random_connected_graph(12, 30, seed=3)
    report = BuildMST(graph, config=AlgorithmConfig(n=12, seed=3)).run()
    stream = get_workload("churn")(graph, report.forest, count=4, seed=3)
    trace = UpdateTrace.record(graph, report.forest, stream, mode="mst", seed=3)
    path = tmp_path_factory.mktemp("traces") / "grid.trace.json"
    trace.save(path)
    return str(path)


def _workload_spec(name, trace_path):
    params = {"path": trace_path} if name == "trace-replay" else {}
    return WorkloadSpec(name=name, updates=4, params=params)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_algorithm_workload_combination_round_trips(
    algorithm, workload, trace_path
):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=12, density="sparse", seed=7),
        workload=_workload_spec(workload, trace_path),
        schedule=ScheduleSpec(scheduler="random"),
    )
    assert ExperimentSpec.from_json(spec.to_json()) == spec

    result = run(algorithm, spec)
    assert result.ok, result.checks
    restored = RunResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    assert restored.workload == result.workload
    assert restored.schedule == result.schedule
    assert restored.spec == spec.graph


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_bare_graph_spec_results_still_round_trip(algorithm):
    result = run(algorithm, GraphSpec(nodes=12, density="sparse", seed=7))
    restored = RunResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    assert restored.schedule is None
    if algorithm in ("kkt-repair", "recompute-repair"):
        # Repair always runs a workload; the implicit default is recorded.
        assert restored.workload == result.workload
        assert restored.workload.name == "churn"
    else:
        assert restored.workload is None


def test_pr1_result_payloads_still_load():
    """Payloads without workload/schedule fields (PR-1 records) stay loadable."""
    result = run("kkt-st", GraphSpec(nodes=12, density="sparse", seed=7))
    payload = result.to_dict()
    payload.pop("workload")
    payload.pop("schedule")
    restored = RunResult.from_dict(payload)
    assert restored.counters() == result.counters()
    assert restored.workload is None and restored.schedule is None
