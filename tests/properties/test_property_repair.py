"""Property-based tests for impromptu repair under random update sequences."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.build_mst import BuildMST
from repro.core.build_st import BuildST
from repro.core.config import AlgorithmConfig
from repro.core.repair import TreeRepairer
from repro.generators import random_connected_graph
from repro.network.graph import edge_key
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


@st.composite
def update_scripts(draw):
    """A seed plus a short random script of update actions."""
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    actions = draw(
        st.lists(
            st.sampled_from(["delete_tree", "delete_any", "insert", "increase", "decrease"]),
            min_size=1,
            max_size=8,
        )
    )
    return seed, actions


def _apply_script(graph, forest, repairer, actions, rng, mode):
    """Apply the scripted actions, returning early if the graph runs dry."""
    next_weight = 10 ** 6  # fresh weights for inserts, always unique
    for action in actions:
        marked = sorted(forest.marked_edges)
        all_edges = graph.edges()
        if action == "delete_tree" and marked:
            key = marked[rng.randrange(len(marked))]
            repairer.delete_edge(*key)
        elif action == "delete_any" and all_edges:
            edge = all_edges[rng.randrange(len(all_edges))]
            repairer.delete_edge(edge.u, edge.v)
        elif action == "insert":
            nodes = graph.nodes()
            for _ in range(30):
                u, v = rng.randrange(len(nodes)), rng.randrange(len(nodes))
                if u != v and not graph.has_edge(nodes[u], nodes[v]):
                    next_weight += rng.randrange(1, 50)
                    repairer.insert_edge(nodes[u], nodes[v], weight=next_weight)
                    break
        elif action == "increase" and all_edges:
            edge = all_edges[rng.randrange(len(all_edges))]
            repairer.increase_weight(edge.u, edge.v, edge.weight + rng.randrange(1, 100))
        elif action == "decrease" and all_edges:
            edge = all_edges[rng.randrange(len(all_edges))]
            new_weight = max(0, edge.weight - rng.randrange(1, 100))
            if new_weight < edge.weight:
                if mode == "st" or True:
                    repairer.decrease_weight(edge.u, edge.v, new_weight)


class TestMSTRepairProperties:
    @given(update_scripts())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_mst_invariant_maintained(self, script):
        seed, actions = script
        rng = random.Random(seed)
        graph = random_connected_graph(12, 30, seed=seed)
        report = BuildMST(graph, config=AlgorithmConfig(n=12, seed=seed, c=3.0)).run()
        repairer = TreeRepairer(
            graph, report.forest, AlgorithmConfig(n=12, seed=seed + 1, c=3.0), mode="mst"
        )
        _apply_script(graph, report.forest, repairer, actions, rng, "mst")
        assert is_minimum_spanning_forest(report.forest)

    @given(update_scripts())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_st_invariant_maintained(self, script):
        seed, actions = script
        rng = random.Random(seed)
        graph = random_connected_graph(12, 30, seed=seed)
        report = BuildST(graph, config=AlgorithmConfig(n=12, seed=seed, c=3.0)).run()
        repairer = TreeRepairer(
            graph, report.forest, AlgorithmConfig(n=12, seed=seed + 1, c=3.0), mode="st"
        )
        _apply_script(graph, report.forest, repairer, actions, rng, "st")
        assert is_spanning_forest(report.forest)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_delete_then_reinsert_restores_the_same_mst(self, seed):
        graph = random_connected_graph(12, 30, seed=seed % 1000)
        report = BuildMST(graph, config=AlgorithmConfig(n=12, seed=seed, c=3.0)).run()
        before = set(report.forest.marked_edges)
        repairer = TreeRepairer(
            graph, report.forest, AlgorithmConfig(n=12, seed=seed + 1, c=3.0), mode="mst"
        )
        rng = random.Random(seed)
        key = sorted(before)[rng.randrange(len(before))]
        weight = graph.get_edge(*key).weight
        repairer.delete_edge(*key)
        repairer.insert_edge(key[0], key[1], weight)
        # The MST of the (unchanged) graph is unique, so it must come back.
        assert report.forest.marked_edges == before
