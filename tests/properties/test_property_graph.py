"""Property-based tests (hypothesis) for the graph and forest data structures."""

from hypothesis import given, settings, strategies as st

from repro.network.fragments import SpanningForest
from repro.network.graph import Graph, edge_key


# Strategy: a list of distinct undirected edges over node IDs 1..12 with
# positive weights.
def edge_lists(max_nodes=12, max_edges=30):
    pair = st.tuples(
        st.integers(min_value=1, max_value=max_nodes),
        st.integers(min_value=1, max_value=max_nodes),
    ).filter(lambda t: t[0] != t[1]).map(lambda t: edge_key(*t))
    return st.lists(pair, max_size=max_edges, unique=True).flatmap(
        lambda keys: st.tuples(
            st.just(keys),
            st.lists(
                st.integers(min_value=1, max_value=1000),
                min_size=len(keys),
                max_size=len(keys),
            ),
        )
    )


def build_graph(keys_and_weights):
    keys, weights = keys_and_weights
    graph = Graph(id_bits=6)
    for (u, v), w in zip(keys, weights):
        graph.add_edge(u, v, w)
    return graph


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_and_degree_sum(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_numbers_are_unique_and_invertible(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        numbers = {}
        for edge in graph.edges():
            number = edge.edge_number(graph.id_bits)
            assert number not in numbers
            numbers[number] = edge
            assert graph.edge_from_number(number) == edge

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_augmented_weights_are_unique_and_order_refines_weight(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        edges = graph.edges()
        augs = [e.augmented_weight(graph.id_bits) for e in edges]
        assert len(set(augs)) == len(augs)
        for e1, a1 in zip(edges, augs):
            for e2, a2 in zip(edges, augs):
                if e1.weight < e2.weight:
                    assert a1 < a2

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_copy_roundtrip(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        dup = graph.copy()
        assert dup.nodes() == graph.nodes()
        assert [(e.u, e.v, e.weight) for e in dup.edges()] == [
            (e.u, e.v, e.weight) for e in graph.edges()
        ]

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        components = graph.connected_components()
        all_nodes = [node for component in components for node in component]
        assert sorted(all_nodes) == graph.nodes()


class TestForestProperties:
    @given(edge_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_greedy_acyclic_marking_is_a_forest(self, keys_and_weights, rng):
        """Marking edges greedily while avoiding cycles keeps is_forest true."""
        graph = build_graph(keys_and_weights)
        forest = SpanningForest(graph)
        edges = graph.edges()
        rng.shuffle(edges)
        for edge in edges:
            if not forest.same_component(edge.u, edge.v):
                forest.mark(edge.u, edge.v)
        assert forest.is_forest()
        assert forest.is_spanning()
        # a spanning forest has n - (#components) edges
        assert forest.num_marked == graph.num_nodes - len(graph.connected_components())

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_component_of_is_an_equivalence(self, keys_and_weights):
        graph = build_graph(keys_and_weights)
        forest = SpanningForest(graph)
        # Mark every edge whose endpoints' IDs are both even (arbitrary subset,
        # may create cycles -> use only membership queries, not invariants).
        for edge in graph.edges():
            if edge.u % 2 == 0 and edge.v % 2 == 0:
                forest.mark(edge.u, edge.v)
        for node in graph.nodes():
            component = forest.component_of(node)
            assert node in component
            for other in component:
                assert forest.component_of(other) == component
