"""Property-based tests for MST construction (distributed vs sequential)."""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.sequential import boruvka_mst, kruskal_mst, mst_edge_keys, prim_mst
from repro.core.build_mst import BuildMST
from repro.core.build_st import BuildST
from repro.core.config import AlgorithmConfig
from repro.network.graph import Graph, edge_key
from repro.verify import is_minimum_spanning_forest, is_spanning_forest


@st.composite
def random_graphs(draw, max_nodes=14, max_extra_edges=20):
    """Connected-ish random graphs with distinct weights (may be disconnected)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = random.Random(seed)
    graph = Graph(id_bits=6)
    for node in range(1, n + 1):
        graph.add_node(node)
    keys = set()
    # random tree over a random subset of the nodes to get interesting shapes
    nodes = list(range(1, n + 1))
    rng.shuffle(nodes)
    attach_upto = draw(st.integers(min_value=1, max_value=n))
    for index in range(1, attach_upto):
        parent = nodes[rng.randrange(index)]
        keys.add(edge_key(parent, nodes[index]))
    extra = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(extra):
        u, v = rng.randrange(1, n + 1), rng.randrange(1, n + 1)
        if u != v:
            keys.add(edge_key(u, v))
    weights = list(range(1, len(keys) + 1))
    rng.shuffle(weights)
    for key, weight in zip(sorted(keys), weights):
        graph.add_edge(key[0], key[1], weight)
    return graph, seed


class TestSequentialAgreement:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_kruskal_prim_boruvka_agree(self, graph_and_seed):
        graph, _ = graph_and_seed
        kruskal = mst_edge_keys(kruskal_mst(graph))
        assert kruskal == mst_edge_keys(prim_mst(graph))
        assert kruskal == mst_edge_keys(boruvka_mst(graph))

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_mst_edge_count(self, graph_and_seed):
        graph, _ = graph_and_seed
        mst = kruskal_mst(graph)
        assert len(mst) == graph.num_nodes - len(graph.connected_components())


class TestDistributedConstruction:
    @given(random_graphs(max_nodes=12, max_extra_edges=14))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_build_mst_matches_kruskal(self, graph_and_seed):
        graph, seed = graph_and_seed
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        report = BuildMST(graph, config=config).run()
        assert report.marked_edges == mst_edge_keys(kruskal_mst(graph))
        assert is_minimum_spanning_forest(report.forest)

    @given(random_graphs(max_nodes=12, max_extra_edges=14))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_build_st_spans(self, graph_and_seed):
        graph, seed = graph_and_seed
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        report = BuildST(graph, config=config).run()
        assert is_spanning_forest(report.forest)
        report.forest.check_forest()

    @given(random_graphs(max_nodes=10, max_extra_edges=10))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_cut_and_cycle_properties(self, graph_and_seed):
        """The classic MST certificates hold for the constructed tree."""
        graph, seed = graph_and_seed
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        report = BuildMST(graph, config=config).run()
        forest = report.forest
        id_bits = graph.id_bits
        # Cycle property: every non-tree edge is the heaviest edge on the
        # cycle it closes (equivalently: heavier than every tree edge on the
        # path between its endpoints).
        from repro.network.broadcast import build_tree_structure

        for edge in graph.edges():
            if forest.is_marked(edge.u, edge.v):
                continue
            if not forest.same_component(edge.u, edge.v):
                continue
            tree = build_tree_structure(forest, edge.u)
            path = tree.path_from_root(edge.v)
            path_edges = [
                graph.get_edge(a, b) for a, b in zip(path, path[1:])
            ]
            assert all(
                pe.augmented_weight(id_bits) < edge.augmented_weight(id_bits)
                for pe in path_edges
            )
