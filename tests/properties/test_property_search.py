"""Property-based tests for the cut-search procedures (FindMin / FindAny).

For hypothesis-generated graphs and maintained trees, the searches must obey
their contracts: FindMin returns the true minimum outgoing edge (w.h.p. — the
tests run derandomized with c=3 so the chosen examples are stable), FindAny
returns *some* outgoing edge, both certify emptiness correctly, and their
costs are bounded by broadcast-and-echo count × tree size.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import AlgorithmConfig
from repro.core.findany import FindAny
from repro.core.findmin import FindMin
from repro.core.testout import CutTester
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.accounting import MessageAccountant


@st.composite
def split_tree_instances(draw):
    """A connected graph, a spanning tree with one edge removed, and the root."""
    n = draw(st.integers(min_value=6, max_value=20))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    m = min(n - 1 + extra, n * (n - 1) // 2)
    graph = random_connected_graph(n, m, seed=seed)
    forest = random_spanning_tree_forest(graph, seed=seed + 1)
    marked = sorted(forest.marked_edges)
    cut_index = draw(st.integers(min_value=0, max_value=len(marked) - 1))
    key = marked[cut_index]
    forest.unmark(*key)
    root = key[draw(st.integers(min_value=0, max_value=1))]
    return graph, forest, root, seed


class TestFindMinProperties:
    @given(split_tree_instances())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_returns_true_minimum_or_verified_empty(self, instance):
        graph, forest, root, seed = instance
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        result = FindMin(graph, forest, config, MessageAccountant()).find_min(root)
        if not cut:
            assert result.edge is None
            assert result.verified_empty
        else:
            true_min = min(cut, key=lambda e: e.augmented_weight(graph.id_bits))
            assert result.edge == true_min

    @given(split_tree_instances())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_message_cost_bounded_by_tree_size_times_broadcast_echoes(self, instance):
        graph, forest, root, seed = instance
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        result = FindMin(graph, forest, config, MessageAccountant()).find_min(root)
        tree_size = len(forest.component_of(root))
        assert result.cost.messages <= 2 * max(tree_size - 1, 0) * max(result.broadcast_echoes, 1)


class TestFindAnyProperties:
    @given(split_tree_instances())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_returns_some_cut_edge_or_verified_empty(self, instance):
        graph, forest, root, seed = instance
        component = forest.component_of(root)
        cut = {(e.u, e.v) for e in forest.outgoing_edges(component)}
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        result = FindAny(graph, forest, config, MessageAccountant()).find_any(root)
        if not cut:
            assert result.edge is None
            assert result.verified_empty
        else:
            assert result.edge is not None
            assert result.edge.endpoints in cut

    @given(split_tree_instances())
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_never_claims_empty_when_cut_exists(self, instance):
        graph, forest, root, seed = instance
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        result = FindAny(graph, forest, config, MessageAccountant()).find_any(root)
        if cut:
            assert not result.verified_empty


class TestTestOutProperties:
    @given(split_tree_instances(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_testout_soundness(self, instance, hash_seed):
        """A positive TestOut answer always implies a non-empty cut."""
        graph, forest, root, seed = instance
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed ^ hash_seed, c=2.0)
        tester = CutTester(graph, forest, config, MessageAccountant())
        if tester.test_out(root):
            assert cut

    @given(split_tree_instances())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_hp_testout_soundness_and_whp_completeness(self, instance):
        graph, forest, root, seed = instance
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        config = AlgorithmConfig(n=graph.num_nodes, seed=seed, c=3.0)
        tester = CutTester(graph, forest, config, MessageAccountant())
        answer = tester.hp_test_out(root)
        if not cut:
            assert answer is False
        # (completeness holds w.h.p.; with derandomized fixed examples the
        # chosen instances answer True whenever a cut exists)
        if cut:
            assert answer is True
