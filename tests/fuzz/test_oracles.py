"""Tests for the oracle stack: clean specs pass, planted bugs are caught."""

import pytest

from repro.api import ExperimentSpec, GraphSpec, ScheduleSpec, WorkloadSpec, run
from repro.api import registry as registry_module
from repro.api.registry import register
from repro.fuzz import (
    CaseContext,
    DeterminismOracle,
    DifferentialOracle,
    FastpathOracle,
    ProvenanceOracle,
    default_algorithms,
    make_oracles,
    restore_final_state,
    run_recorded,
)
from repro.network.errors import AlgorithmError
from repro.verify import is_minimum_spanning_forest


def _context(spec, algorithms=None, check_parallel=False):
    return CaseContext(spec, algorithms or default_algorithms(), check_parallel)


CLEAN_SPECS = [
    ExperimentSpec(graph=GraphSpec(nodes=12, density="sparse", seed=3)),
    ExperimentSpec(
        graph=GraphSpec(nodes=14, density="medium", seed=5),
        workload=WorkloadSpec(name="churn", updates=4),
        schedule=ScheduleSpec(scheduler="random"),
    ),
]


class TestCleanSpecsPass:
    @pytest.mark.parametrize("spec", CLEAN_SPECS, ids=["static", "scenario"])
    def test_full_stack_accepts(self, spec):
        context = _context(spec)
        for oracle in make_oracles(None):
            assert oracle.examine(spec, context) == []


class TestRunRecorded:
    def test_snapshot_restores_graph_and_tree(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=10, density="sparse", seed=2))
        result = run_recorded("kkt-mst", spec)
        state = restore_final_state(result)
        assert state is not None
        graph, forest = state
        assert graph.num_nodes == 10
        assert is_minimum_spanning_forest(forest)

    def test_result_without_snapshot_restores_none(self):
        result = run("kkt-mst", GraphSpec(nodes=10, density="sparse", seed=2))
        assert restore_final_state(result) is None


@pytest.fixture
def broken_algorithm():
    """Register a deliberately wrong MST 'algorithm' for the oracle to catch.

    It claims the ``minimum`` invariant and a passing check, but ships a
    maximum-weight spanning tree in its snapshot — the differential oracle
    must reject it even though the runner's own checks lie.
    """
    from repro.api.runners import final_state_extra
    from repro.api.result import RunResult
    from repro.network.fragments import SpanningForest

    @register("broken-mst", summary="maximum spanning tree posing as minimum")
    class BrokenMSTRunner:
        invariant = "minimum"

        def run(self, spec, record_state=False, **options):
            experiment = ExperimentSpec.coerce(spec)
            graph = experiment.graph.build()
            forest = SpanningForest(graph)
            # Kruskal on negated weights: a maximum spanning tree.
            for edge in sorted(
                graph.edges(), key=lambda e: -e.augmented_weight(graph.id_bits)
            ):
                if edge.v not in forest.component_of(edge.u):
                    forest.mark(edge.u, edge.v)
            extra = final_state_extra(graph, forest) if record_state else {}
            return RunResult(
                algorithm=self.name,
                spec=experiment.graph,
                n=graph.num_nodes,
                m=graph.num_edges,
                messages=0,
                bits=0,
                rounds=0,
                phases=0,
                wall_time_s=0.0,
                checks={"spanning": True},  # the lie the oracle must expose
                extra=extra,
            )

    yield "broken-mst"
    registry_module._REGISTRY.pop("broken-mst", None)


class TestDifferentialOracle:
    def test_catches_wrong_tree_behind_passing_checks(self, broken_algorithm):
        spec = ExperimentSpec(graph=GraphSpec(nodes=10, density="dense", seed=4))
        oracle = DifferentialOracle()
        violations = oracle.examine(spec, _context(spec, [broken_algorithm]))
        assert len(violations) == 1
        assert violations[0].algorithm == broken_algorithm
        assert "disagrees with the sequential MST" in violations[0].detail

    def test_monte_carlo_blip_is_not_a_violation(self):
        """A seed-specific random failure of a Monte Carlo runner is allowed.

        GraphSpec(nodes=4, sparse, adversarial, seed=493882) makes kkt-mst
        fail its checks for that algorithm seed, but independent reseeds
        succeed — the oracle must absorb it and count the blip.
        """
        spec = ExperimentSpec(
            graph=GraphSpec(
                nodes=4, density="sparse", weight_model="adversarial", seed=493882
            )
        )
        result = run("kkt-mst", spec.graph)
        assert not result.ok  # the blip is real for this seed
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-mst"])) == []
        assert oracle.stats["monte_carlo_blips"] == 1

    def test_flooding_skipped_under_active_faults(self):
        from repro.api import FaultSpec

        spec = ExperimentSpec(
            graph=GraphSpec(nodes=10, density="sparse", seed=1),
            faults=FaultSpec(name="lossy-uniform", params={"drop": 0.9}),
        )
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["flooding"])) == []

    def test_batched_legs_compared_for_repair_runners(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=12, density="sparse", seed=6))
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-repair"])) == []
        assert oracle.stats["batched_compared"] == 1

    def test_batched_check_skips_runners_without_the_hook(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=12, density="sparse", seed=6))
        oracle = DifferentialOracle()
        oracle.examine(spec, _context(spec, ["kkt-mst"]))
        assert oracle.stats["batched_compared"] == 0

    def test_batched_check_absorbs_shared_monte_carlo_casualty(self):
        """A spec where *both* legs fail the runner's own checks is a blip.

        Fuzz-found (campaign seed 0, case 140, minimized): kkt-repair blips
        on this 4-node adversarial spec for its default coins, identically
        in sequential and batched mode.  That is the algorithm's allowed
        n^-c failure, policed by the main loop's boosted-c reseeds — the
        batched leg must not re-report it as a batching divergence.
        """
        spec = ExperimentSpec(
            graph=GraphSpec(
                nodes=4, density="sparse", seed=12596, weight_model="adversarial"
            ),
            workload=WorkloadSpec(name="insert-heavy", updates=1, seed=531034),
        )
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-repair"])) == []
        assert oracle.stats["batched_compared"] == 1
        assert oracle.stats["monte_carlo_blips"] == 1  # main loop absorbed it

    def test_batched_check_runs_sequential_even_under_forced_batching(self, monkeypatch):
        # The explicit repair_batch=0 leg must override REPRO_REPAIR_BATCH,
        # otherwise forced-batching CI legs would compare batched to batched.
        monkeypatch.setenv("REPRO_REPAIR_BATCH", "5")
        spec = ExperimentSpec(graph=GraphSpec(nodes=12, density="sparse", seed=7))
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-repair"])) == []
        assert oracle.stats["batched_compared"] == 1


class TestFastpathOracle:
    def test_samples_deterministically(self):
        spec = CLEAN_SPECS[0]
        oracle = FastpathOracle(sample=2)
        algorithms = default_algorithms()
        assert oracle._sampled(spec, algorithms) == oracle._sampled(spec, algorithms)

    def test_clean_case_has_equal_counters(self):
        spec = CLEAN_SPECS[0]
        oracle = FastpathOracle(sample=len(default_algorithms()))
        assert oracle.examine(spec, _context(spec)) == []

    def test_rejects_zero_sample(self):
        with pytest.raises(AlgorithmError, match="sample"):
            FastpathOracle(sample=0)


class TestDeterminismOracle:
    def test_serial_reruns_match(self):
        spec = CLEAN_SPECS[1]
        oracle = DeterminismOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-repair", "ghs"])) == []

    def test_parallel_engine_matches_serial(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=10, density="sparse", seed=9))
        oracle = DeterminismOracle()
        context = _context(spec, ["kkt-st", "flooding"], check_parallel=True)
        assert oracle.examine(spec, context) == []


class TestProvenanceOracle:
    def test_clean_case_passes(self):
        from repro.api import FaultSpec

        spec = ExperimentSpec(
            graph=GraphSpec(nodes=12, density="sparse", seed=6),
            workload=WorkloadSpec(name="deletions-only", updates=3),
            faults=FaultSpec(name="link-storm"),
        )
        oracle = ProvenanceOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-repair"])) == []

    def test_flags_doctored_result(self):
        spec = ExperimentSpec(graph=GraphSpec(nodes=10, density="sparse", seed=2))
        context = _context(spec, ["kkt-st"])
        result = context.result("kkt-st")
        result.n = 999  # corrupt the record in the shared cache
        oracle = ProvenanceOracle()
        violations = oracle.examine(spec, context)
        assert len(violations) == 1
        assert "n=999" in violations[0].detail


@pytest.fixture
def fragile_algorithm():
    """Register a runner with no Byzantine tolerance whose checks fail.

    Under an adversarial fault program its failure is the attack working —
    the differential oracle must flag it in stats, not report a violation.
    Under a benign program the same failure is a plain bug.
    """
    from repro.api.result import RunResult

    @register("fragile", summary="falls over whenever anyone lies")
    class FragileRunner:
        invariant = "spanning"

        def run(self, spec, **options):
            experiment = ExperimentSpec.coerce(spec)
            graph = experiment.graph.build()
            faulted = experiment.faults is not None and not experiment.faults.is_none
            return RunResult(
                algorithm=self.name,
                spec=experiment.graph,
                n=graph.num_nodes,
                m=graph.num_edges,
                messages=0,
                bits=0,
                rounds=0,
                phases=0,
                wall_time_s=0.0,
                checks={"reached": not faulted},
            )

    yield "fragile"
    registry_module._REGISTRY.pop("fragile", None)


class TestByzantineFlagNotFail:
    def test_nontolerant_casualty_is_flagged_not_failed(self, fragile_algorithm):
        from repro.api import FaultSpec

        spec = ExperimentSpec(
            graph=GraphSpec(nodes=12, density="sparse", seed=1),
            faults=FaultSpec(name="byz-equivocate"),
        )
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, [fragile_algorithm])) == []
        assert oracle.stats["byzantine_flagged"] == 1

    def test_same_failure_under_a_benign_program_is_a_violation(
        self, fragile_algorithm
    ):
        from repro.api import FaultSpec

        spec = ExperimentSpec(
            graph=GraphSpec(nodes=12, density="sparse", seed=1),
            faults=FaultSpec(name="link-storm"),
        )
        oracle = DifferentialOracle()
        violations = oracle.examine(spec, _context(spec, [fragile_algorithm]))
        assert len(violations) == 1
        assert "runner checks failed" in violations[0].detail
        assert oracle.stats["byzantine_flagged"] == 0

    def test_tolerant_algorithms_stay_fully_checked(self):
        from repro.api import FaultSpec, algorithm_traits

        assert algorithm_traits("kkt-mst")["byzantine_tolerant"]
        spec = ExperimentSpec(
            graph=GraphSpec(nodes=12, density="sparse", seed=3),
            faults=FaultSpec(name="byz-silent"),
        )
        oracle = DifferentialOracle()
        assert oracle.examine(spec, _context(spec, ["kkt-mst"])) == []
        assert oracle.stats["byzantine_flagged"] == 0


class TestMakeOracles:
    def test_unknown_name_rejected(self):
        with pytest.raises(AlgorithmError, match="registered oracles"):
            make_oracles(["haruspex"])

    def test_default_stack_is_complete(self):
        names = sorted(oracle.name for oracle in make_oracles(None))
        assert names == ["determinism", "differential", "fastpath", "provenance"]
