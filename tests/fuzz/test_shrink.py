"""Tests for the delta-debugging spec shrinker."""

import pytest

from repro.api import (
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    ScheduleSpec,
    WorkloadSpec,
)
from repro.fuzz import shrink_spec

FULL_SPEC = ExperimentSpec(
    graph=GraphSpec(nodes=24, density="dense", weight_model="adversarial", seed=9),
    workload=WorkloadSpec(name="churn", updates=8, seed=4, params={}),
    schedule=ScheduleSpec(scheduler="random", seed=2),
    faults=FaultSpec(name="link-storm", seed=7),
)


class TestAlwaysFailing:
    """A predicate that never passes shrinks everything away."""

    def test_reduces_to_minimal_spec(self):
        outcome = shrink_spec(FULL_SPEC, lambda spec: True)
        minimal = outcome.spec
        assert minimal.graph.nodes == 3
        assert minimal.workload is None
        assert minimal.schedule is None
        assert minimal.faults is None
        assert minimal.graph.density == "sparse"
        assert minimal.graph.weight_model == "default"
        assert outcome.shrunk
        assert "drop-faults" in outcome.accepted

    def test_min_nodes_respected(self):
        outcome = shrink_spec(FULL_SPEC, lambda spec: True, min_nodes=6)
        assert outcome.spec.graph.nodes == 6

    def test_deterministic(self):
        first = shrink_spec(FULL_SPEC, lambda spec: True)
        second = shrink_spec(FULL_SPEC, lambda spec: True)
        assert first.spec == second.spec
        assert first.accepted == second.accepted


class TestPredicateDriven:
    def test_preserves_failure_condition(self):
        """The shrinker never accepts a candidate that stops failing."""
        still_fails = lambda spec: spec.workload is not None
        outcome = shrink_spec(FULL_SPEC, still_fails)
        assert outcome.spec.workload is not None  # condition preserved
        assert outcome.spec.faults is None  # everything else dropped
        assert outcome.spec.schedule is None
        assert outcome.spec.graph.nodes == 3

    def test_updates_halve_toward_one(self):
        still_fails = lambda spec: (
            spec.workload is not None and spec.workload.name == "churn"
        )
        outcome = shrink_spec(FULL_SPEC, still_fails)
        assert outcome.spec.workload.updates == 1

    def test_nothing_to_shrink(self):
        minimal = ExperimentSpec(
            graph=GraphSpec(nodes=3, density="sparse", seed=1)
        )
        outcome = shrink_spec(minimal, lambda spec: True)
        assert outcome.spec == minimal
        assert not outcome.shrunk

    def test_never_failing_spec_unchanged(self):
        outcome = shrink_spec(FULL_SPEC, lambda spec: False)
        assert outcome.spec == FULL_SPEC
        assert not outcome.shrunk

    def test_predicate_exception_counts_as_failure(self):
        def explodes(spec):
            raise RuntimeError("the system under test crashed")

        outcome = shrink_spec(FULL_SPEC, explodes)
        assert outcome.spec.graph.nodes == 3  # kept shrinking through crashes

    def test_attempt_budget_bounds_work(self):
        calls = []

        def predicate(spec):
            calls.append(spec)
            return True

        outcome = shrink_spec(FULL_SPEC, predicate, max_attempts=5)
        assert outcome.attempts == 5
        assert len(calls) == 5
