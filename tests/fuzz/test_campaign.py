"""Tests for FuzzCampaign: clean runs, planted bugs, shrinking, replay."""

import pytest

from repro.fuzz import (
    FuzzCampaign,
    ORACLE_FACTORIES,
    SpecSpace,
    Violation,
    replay_entry,
    report_to_json,
)
from repro.network.errors import AlgorithmError

SMALL_SPACE = SpecSpace(min_nodes=4, max_nodes=12, max_updates=4)


class PlantedBugOracle:
    """A deliberately planted oracle bug: flooding 'must' send no messages.

    Every real flooding run sends messages, so this fails on (almost) every
    spec — standing in for a systematic correctness bug the campaign must
    detect, shrink and persist.
    """

    name = "planted"

    def examine(self, spec, context):
        result = context.result("flooding")
        if result.messages > 0:
            return [
                Violation(self.name, f"flooding sent {result.messages} messages", "flooding")
            ]
        return []


class TestCleanCampaign:
    def test_zero_violations_on_main(self):
        campaign = FuzzCampaign(budget=8, seed=1, space=SMALL_SPACE, parallel_every=0)
        report = campaign.run()
        assert report["violation_count"] == 0
        assert report["violations"] == []
        assert len(campaign.corpus) == 0
        assert report["cases"] == 8
        assert set(report["oracle_checks"]) == set(ORACLE_FACTORIES)
        assert all(count == 8 for count in report["oracle_checks"].values())

    def test_report_deterministic_across_runs(self):
        make = lambda: FuzzCampaign(
            budget=6, seed=3, space=SMALL_SPACE, parallel_every=0
        ).run()
        assert report_to_json(make()) == report_to_json(make())

    def test_progress_lines_emitted(self):
        lines = []
        FuzzCampaign(
            budget=2, seed=0, space=SMALL_SPACE, parallel_every=0,
            progress=lines.append,
        ).run()
        assert any("2/2 cases" in line for line in lines)

    def test_bad_budget_rejected(self):
        with pytest.raises(AlgorithmError, match="budget"):
            FuzzCampaign(budget=0)

    def test_unknown_algorithm_rejected_up_front(self):
        with pytest.raises(AlgorithmError, match="registered algorithms"):
            FuzzCampaign(budget=1, algorithms=["dijkstra"])

    def test_shrink_predicate_restores_oracle_stats(self):
        """Shrink re-examinations must not inflate the published stats."""
        from repro.api import ExperimentSpec, GraphSpec

        campaign = FuzzCampaign(
            budget=1, seed=0, algorithms=["kkt-mst"],
            oracles=["differential"], space=SMALL_SPACE, parallel_every=0,
        )
        differential = campaign.oracles[0]
        predicate = campaign._still_fails(
            Violation("differential", "suspect", "kkt-mst")
        )
        # This spec makes kkt-mst blip for its own seed, so examining it
        # bumps the Monte Carlo counters — the predicate must restore them.
        blip_spec = ExperimentSpec(
            graph=GraphSpec(
                nodes=4, density="sparse", weight_model="adversarial", seed=493882
            )
        )
        assert predicate(blip_spec) is False  # blip absorbed: not failing
        assert differential.stats == {
            "monte_carlo_suspects": 0,
            "monte_carlo_blips": 0,
            "byzantine_flagged": 0,
            "batched_compared": 0,
            "batched_blips": 0,
        }


class TestPlantedBug:
    """The ISSUE's acceptance bar: a planted oracle bug is found, shrunk to
    <= 8 nodes with the failure preserved, and lands in a replayable corpus."""

    @pytest.fixture(scope="class")
    def campaign(self):
        campaign = FuzzCampaign(
            budget=3,
            seed=0,
            algorithms=["flooding"],
            oracles=[PlantedBugOracle()],
            space=SMALL_SPACE,
            parallel_every=0,
        )
        campaign.report = campaign.run()
        return campaign

    def test_violations_found(self, campaign):
        assert campaign.report["violation_count"] >= 1
        assert len(campaign.corpus) >= 1

    def test_shrunk_to_at_most_8_nodes(self, campaign):
        for entry in campaign.corpus:
            assert entry.minimized["graph"]["nodes"] <= 8
            assert entry.shrink_steps  # the shrinker actually did something

    def test_failure_preserved_by_minimized_spec(self, campaign):
        oracle = PlantedBugOracle()
        for entry in campaign.corpus:
            spec = entry.minimized_spec()
            from repro.fuzz import CaseContext

            violations = oracle.examine(spec, CaseContext(spec, ["flooding"]))
            assert violations, "the minimized spec no longer trips the planted bug"

    def test_minimized_spec_dropped_scenario_axes(self, campaign):
        for entry in campaign.corpus:
            assert entry.minimized["workload"] is None
            assert entry.minimized["schedule"] is None
            assert entry.minimized["faults"] is None

    def test_corpus_entries_carry_campaign_coordinates(self, campaign):
        for entry in campaign.corpus:
            assert entry.campaign_seed == 0
            assert entry.case_index is not None
            assert entry.oracle == "planted"

    def test_corpus_round_trips_byte_for_byte(self, campaign, tmp_path):
        path = tmp_path / "corpus.json"
        campaign.corpus.save(path)
        first = path.read_bytes()
        from repro.fuzz import Corpus

        Corpus.load(path).save(path)
        assert path.read_bytes() == first


class TestReplay:
    def test_replay_reproduces_and_detects_fixes(self, tmp_path):
        ORACLE_FACTORIES["planted"] = PlantedBugOracle
        try:
            campaign = FuzzCampaign(
                budget=1,
                seed=0,
                algorithms=["flooding"],
                oracles=[PlantedBugOracle()],
                space=SMALL_SPACE,
                parallel_every=0,
            )
            campaign.run()
            entries = list(campaign.corpus)
            assert entries
            assert replay_entry(entries[0])  # still fails: reproduced
        finally:
            ORACLE_FACTORIES.pop("planted", None)

    def test_replay_unknown_oracle_is_actionable(self):
        from repro.fuzz import CorpusEntry
        from repro.api import ExperimentSpec, GraphSpec

        entry = CorpusEntry(
            oracle="haruspex",
            detail="x",
            spec=ExperimentSpec(graph=GraphSpec(nodes=4, seed=0)).to_dict(),
            minimized=ExperimentSpec(graph=GraphSpec(nodes=4, seed=0)).to_dict(),
        )
        with pytest.raises(AlgorithmError, match="registered oracles"):
            replay_entry(entry)


class TestOracleCrashHandling:
    def test_crashing_oracle_becomes_a_violation(self):
        class CrashingOracle:
            name = "crash"

            def examine(self, spec, context):
                raise RuntimeError("kaboom")

        campaign = FuzzCampaign(
            budget=1,
            seed=0,
            algorithms=["flooding"],
            oracles=[CrashingOracle()],
            space=SMALL_SPACE,
            parallel_every=0,
            shrink=False,
        )
        report = campaign.run()
        assert report["violation_count"] == 1
        assert "kaboom" in report["violations"][0]["detail"]
