"""Tests for the seeded ExperimentSpec generator."""

import pytest

from repro.api import ExperimentSpec, fault_required_params, workload_required_params
from repro.fuzz import SpecGenerator, SpecSpace
from repro.network.errors import AlgorithmError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = [spec.to_json() for spec in SpecGenerator(seed=7).stream(30)]
        second = [spec.to_json() for spec in SpecGenerator(seed=7).stream(30)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [spec.to_json() for spec in SpecGenerator(seed=1).stream(10)]
        second = [spec.to_json() for spec in SpecGenerator(seed=2).stream(10)]
        assert first != second


class TestValidity:
    def test_specs_are_valid_and_round_trip(self):
        for spec in SpecGenerator(seed=3).stream(40):
            assert isinstance(spec, ExperimentSpec)
            assert ExperimentSpec.from_json(spec.to_json()) == spec
            assert spec.graph.seed is not None  # always replayable

    def test_specs_build_real_graphs(self):
        for spec in SpecGenerator(seed=5).stream(10):
            graph = spec.graph.build()
            assert graph.num_nodes == spec.graph.nodes

    def test_node_bounds_respected(self):
        space = SpecSpace(min_nodes=5, max_nodes=9)
        for spec in SpecGenerator(seed=0, space=space).stream(40):
            assert 5 <= spec.graph.nodes <= 9


class TestRegistryIntrospection:
    def test_workloads_needing_params_are_skipped(self):
        generator = SpecGenerator(seed=0)
        assert "trace-replay" not in generator.workloads
        assert all(not workload_required_params(w) for w in generator.workloads)

    def test_fault_axis_from_registry(self):
        generator = SpecGenerator(seed=0)
        assert "none" not in generator.faults
        assert all(not fault_required_params(f) for f in generator.faults)

    def test_all_runnable_axes_eventually_sampled(self):
        """A modest campaign crosses every workload, fault and scheduler."""
        generator = SpecGenerator(seed=11)
        seen_workloads, seen_faults, seen_schedulers = set(), set(), set()
        for spec in generator.stream(300):
            if spec.workload is not None:
                seen_workloads.add(spec.workload.name)
            if spec.faults is not None:
                seen_faults.add(spec.faults.name)
            if spec.schedule is not None:
                seen_schedulers.add(spec.schedule.scheduler)
        assert seen_workloads == set(generator.workloads)
        assert seen_faults == set(generator.faults)
        assert seen_schedulers == set(generator.schedulers)


class TestSpecSpaceValidation:
    def test_min_nodes_floor(self):
        with pytest.raises(AlgorithmError, match="min_nodes"):
            SpecSpace(min_nodes=1)

    def test_max_below_min_rejected(self):
        with pytest.raises(AlgorithmError, match="max_nodes"):
            SpecSpace(min_nodes=8, max_nodes=4)

    def test_bad_update_bounds_rejected(self):
        with pytest.raises(AlgorithmError, match="update bounds"):
            SpecSpace(min_updates=0)
