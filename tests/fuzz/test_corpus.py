"""Tests for the reproducer corpus: canonical JSON, round-trips, replay."""

import json

import pytest

from repro.api import ExperimentSpec, GraphSpec, WorkloadSpec
from repro.fuzz import Corpus, CorpusEntry
from repro.network.errors import AlgorithmError


def _entry(nodes=4, oracle="differential", algorithm="kkt-mst", detail="boom"):
    spec = ExperimentSpec(
        graph=GraphSpec(nodes=16, density="dense", seed=3),
        workload=WorkloadSpec(name="churn", updates=4),
    )
    minimized = ExperimentSpec(graph=GraphSpec(nodes=nodes, density="sparse", seed=3))
    return CorpusEntry(
        oracle=oracle,
        detail=detail,
        algorithm=algorithm,
        spec=spec.to_dict(),
        minimized=minimized.to_dict(),
        campaign_seed=0,
        case_index=17,
        shrink_attempts=9,
        shrink_steps=("drop-workload", "nodes=4"),
    )


class TestEntry:
    def test_id_is_stable_and_content_addressed(self):
        assert _entry().id == _entry().id
        assert _entry(nodes=4).id != _entry(nodes=5).id
        assert _entry(algorithm="ghs").id != _entry(algorithm="kkt-mst").id
        # The id ignores volatile fields like the detail message.
        assert _entry(detail="a").id == _entry(detail="b").id

    def test_round_trips(self):
        entry = _entry()
        restored = CorpusEntry.from_dict(entry.to_dict())
        assert restored == entry
        assert restored.id == entry.id

    def test_minimized_spec_is_runnable(self):
        spec = _entry().minimized_spec()
        assert isinstance(spec, ExperimentSpec)
        assert spec.graph.nodes == 4

    def test_missing_fields_rejected(self):
        with pytest.raises(AlgorithmError, match="missing field"):
            CorpusEntry.from_dict({"oracle": "differential"})


class TestCorpus:
    def test_dedupes_by_id(self):
        corpus = Corpus()
        assert corpus.add(_entry())
        assert not corpus.add(_entry())
        assert len(corpus) == 1

    def test_iteration_sorted_by_id(self):
        corpus = Corpus()
        entries = [_entry(nodes=n) for n in (6, 3, 5, 4)]
        for entry in entries:
            corpus.add(entry)
        assert [e.id for e in corpus] == sorted(e.id for e in entries)

    def test_get_unknown_id_is_actionable(self):
        corpus = Corpus()
        corpus.add(_entry())
        with pytest.raises(AlgorithmError, match="no corpus entry"):
            corpus.get("feedfacecafe")

    def test_save_load_byte_identical(self, tmp_path):
        corpus = Corpus()
        corpus.add(_entry(nodes=4))
        corpus.add(_entry(nodes=7))
        path = tmp_path / "corpus.json"
        corpus.save(path)
        first = path.read_bytes()
        Corpus.load(path).save(path)
        assert path.read_bytes() == first  # load -> save is the identity
        assert first.endswith(b"\n")
        payload = json.loads(first)
        assert payload["version"] == 1
        assert len(payload["entries"]) == 2

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AlgorithmError, match="not found"):
            Corpus.load(tmp_path / "nope.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AlgorithmError, match="invalid corpus file"):
            Corpus.load(path)

    def test_load_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(AlgorithmError, match="unsupported corpus version"):
            Corpus.load(path)

    def test_load_wrong_shape(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]")
        with pytest.raises(AlgorithmError, match="JSON object"):
            Corpus.load(path)
