"""Tests for the `repro fuzz run / replay / corpus` CLI subcommands."""

import json

import pytest

from repro.cli import main
from repro.fuzz import Corpus, CorpusEntry
from repro.api import ExperimentSpec, GraphSpec

RUN_ARGS = ["fuzz", "run", "--budget", "5", "--seed", "0", "--max-nodes", "12",
            "--parallel-every", "0"]


class TestFuzzRun:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(RUN_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "Fuzz campaign" in out
        assert "oracle violations" in out

    def test_json_report_to_stdout(self, capsys):
        code = main(RUN_ARGS + ["--json"])
        out = capsys.readouterr().out
        assert code == 0
        report = json.loads(out)
        assert report["violation_count"] == 0
        assert report["budget"] == 5
        assert report["seed"] == 0

    def test_report_and_corpus_files_deterministic(self, capsys, tmp_path):
        paths = {}
        for tag in ("a", "b"):
            out = tmp_path / f"report-{tag}.json"
            corpus = tmp_path / f"corpus-{tag}.json"
            assert main(RUN_ARGS + ["--out", str(out), "--corpus", str(corpus)]) == 0
            capsys.readouterr()
            paths[tag] = (out.read_bytes(), corpus.read_bytes())
        assert paths["a"] == paths["b"]  # byte-identical across invocations
        report = json.loads(paths["a"][0])
        assert report["violation_count"] == 0
        corpus = json.loads(paths["a"][1])
        assert corpus == {"version": 1, "entries": []}

    def test_oracle_subset(self, capsys):
        code = main(RUN_ARGS + ["--oracles", "provenance", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["oracles"] == ["provenance"]

    def test_unknown_oracle_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(RUN_ARGS + ["--oracles", "haruspex"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_budget_is_actionable(self, capsys):
        code = main(["fuzz", "run", "--budget", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "budget" in captured.err

    def test_unknown_algorithm_is_actionable(self, capsys):
        code = main(["fuzz", "run", "--budget", "2", "--algorithms", "dijkstra"])
        captured = capsys.readouterr()
        assert code == 2
        assert "dijkstra" in captured.err
        assert "registered algorithms" in captured.err


def _write_corpus(tmp_path, oracle="provenance"):
    """A corpus whose entry trivially *passes* its oracle (a fixed bug)."""
    spec = ExperimentSpec(graph=GraphSpec(nodes=4, density="sparse", seed=1))
    corpus = Corpus()
    corpus.add(
        CorpusEntry(
            oracle=oracle,
            detail="historical failure",
            algorithm="kkt-st",
            spec=spec.to_dict(),
            minimized=spec.to_dict(),
        )
    )
    path = tmp_path / "corpus.json"
    corpus.save(path)
    return path, corpus


class TestFuzzReplay:
    def test_fixed_entry_reported_and_nonzero_exit(self, capsys, tmp_path):
        path, _ = _write_corpus(tmp_path)
        code = main(["fuzz", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 1  # entry no longer reproduces -> prune signal
        assert "fixed" in out

    def test_single_entry_by_id(self, capsys, tmp_path):
        path, corpus = _write_corpus(tmp_path)
        entry_id = list(corpus)[0].id
        code = main(["fuzz", "replay", str(path), "--id", entry_id])
        assert code == 1
        assert entry_id in capsys.readouterr().out

    def test_unknown_id_is_actionable(self, capsys, tmp_path):
        path, _ = _write_corpus(tmp_path)
        code = main(["fuzz", "replay", str(path), "--id", "feedfacecafe"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no corpus entry" in captured.err

    def test_missing_corpus_file(self, capsys, tmp_path):
        code = main(["fuzz", "replay", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "not found" in captured.err

    def test_empty_corpus_is_fine(self, capsys, tmp_path):
        path = tmp_path / "empty.json"
        Corpus().save(path)
        code = main(["fuzz", "replay", str(path)])
        assert code == 0
        assert "nothing to replay" in capsys.readouterr().out


class TestFuzzCorpus:
    def test_lists_entries(self, capsys, tmp_path):
        path, corpus = _write_corpus(tmp_path)
        code = main(["fuzz", "corpus", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert list(corpus)[0].id in out
        assert "provenance" in out

    def test_corrupt_corpus_is_actionable(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        code = main(["fuzz", "corpus", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid corpus file" in captured.err
