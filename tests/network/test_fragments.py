"""Unit tests for the SpanningForest (properly-marked) state."""

import pytest

from repro.network.errors import ForestError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph


@pytest.fixture
def graph_and_forest(small_weighted_graph):
    forest = SpanningForest(small_weighted_graph)
    for key in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]:
        forest.mark(*key)
    return small_weighted_graph, forest


class TestMarking:
    def test_mark_and_unmark(self, triangle_graph):
        forest = SpanningForest(triangle_graph)
        forest.mark(1, 2)
        assert forest.is_marked(2, 1)
        forest.unmark(1, 2)
        assert not forest.is_marked(1, 2)

    def test_unmark_missing_is_noop(self, triangle_graph):
        forest = SpanningForest(triangle_graph)
        forest.unmark(1, 2)
        assert forest.num_marked == 0

    def test_cannot_mark_nonexistent_edge(self, triangle_graph):
        forest = SpanningForest(triangle_graph)
        with pytest.raises(ForestError):
            forest.mark(1, 9)

    def test_constructor_accepts_marked_edges(self, triangle_graph):
        forest = SpanningForest(triangle_graph, marked=[(1, 2), (2, 3)])
        assert forest.num_marked == 2

    def test_drop_missing_edges(self, triangle_graph):
        forest = SpanningForest(triangle_graph, marked=[(1, 2)])
        triangle_graph.remove_edge(1, 2)
        gone = forest.drop_missing_edges()
        assert gone == [(1, 2)]
        assert forest.num_marked == 0

    def test_clear(self, triangle_graph):
        forest = SpanningForest(triangle_graph, marked=[(1, 2)])
        forest.clear()
        assert forest.num_marked == 0


class TestNodeLocalViews:
    def test_marked_neighbors(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.marked_neighbors(3) == [2, 4]
        assert forest.marked_neighbors(1) == [2]

    def test_unmarked_incident_edges(self, graph_and_forest):
        graph, forest = graph_and_forest
        unmarked = forest.unmarked_incident_edges(1)
        assert {(e.u, e.v) for e in unmarked} == {(1, 3), (1, 6)}

    def test_marked_degree(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.marked_degree(3) == 2
        assert forest.marked_degree(6) == 1


class TestComponents:
    def test_component_of_full_tree(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.component_of(4) == {1, 2, 3, 4, 5, 6}

    def test_components_after_split(self, graph_and_forest):
        _, forest = graph_and_forest
        forest.unmark(3, 4)
        comps = sorted(sorted(c) for c in forest.components())
        assert comps == [[1, 2, 3], [4, 5, 6]]

    def test_component_index(self, graph_and_forest):
        _, forest = graph_and_forest
        forest.unmark(3, 4)
        index = forest.component_index()
        assert index[1] == index[2] == index[3]
        assert index[4] == index[5] == index[6]
        assert index[1] != index[4]

    def test_same_component(self, graph_and_forest):
        _, forest = graph_and_forest
        forest.unmark(3, 4)
        assert forest.same_component(1, 3)
        assert not forest.same_component(1, 4)

    def test_tree_adjacency(self, graph_and_forest):
        _, forest = graph_and_forest
        adjacency = forest.tree_adjacency({1, 2, 3})
        assert adjacency == {1: [2], 2: [1, 3], 3: [2]}

    def test_outgoing_edges(self, graph_and_forest):
        _, forest = graph_and_forest
        forest.unmark(3, 4)
        outgoing = forest.outgoing_edges({1, 2, 3})
        keys = {(e.u, e.v) for e in outgoing}
        assert keys == {(3, 4), (2, 5), (3, 6), (1, 6)}


class TestInvariants:
    def test_is_forest_true_for_tree(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.is_forest()
        forest.check_forest()

    def test_cycle_detected(self, triangle_graph):
        forest = SpanningForest(
            triangle_graph, marked=[(1, 2), (2, 3), (1, 3)]
        )
        assert not forest.is_forest()
        with pytest.raises(ForestError):
            forest.check_forest()

    def test_is_spanning(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.is_spanning()
        forest.unmark(3, 4)
        assert not forest.is_spanning()

    def test_cycle_nodes(self, small_weighted_graph):
        forest = SpanningForest(
            small_weighted_graph,
            marked=[(1, 2), (2, 3), (1, 3), (3, 4)],
        )
        component = forest.component_of(1)
        assert forest.cycle_nodes(component) == [1, 2, 3]

    def test_cycle_nodes_empty_for_tree(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.cycle_nodes(forest.component_of(1)) == []

    def test_copy_independent(self, graph_and_forest):
        _, forest = graph_and_forest
        dup = forest.copy()
        dup.unmark(1, 2)
        assert forest.is_marked(1, 2)

    def test_marked_edge_objects_and_weight(self, graph_and_forest):
        _, forest = graph_and_forest
        assert forest.total_marked_weight() == 1 + 2 + 3 + 4 + 5
        assert len(forest.marked_edge_objects()) == 5
