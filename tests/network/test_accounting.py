"""Unit tests for message/bit/round accounting."""

import pytest

from repro.network.accounting import (
    CostDelta,
    MessageAccountant,
    PhaseRecord,
    merge_deltas,
)
from repro.network.errors import AccountingError


class TestRecording:
    def test_single_message(self):
        acct = MessageAccountant()
        acct.record_message(17, kind="test")
        assert acct.messages == 1
        assert acct.bits == 17
        assert acct.per_kind() == {"test": 1}

    def test_bulk_messages(self):
        acct = MessageAccountant()
        acct.record_messages(5, 8, kind="bulk")
        assert acct.messages == 5
        assert acct.bits == 40

    def test_zero_bulk_is_noop(self):
        acct = MessageAccountant()
        acct.record_messages(0, 8)
        assert acct.messages == 0 and acct.bits == 0

    def test_rejects_zero_bit_messages(self):
        acct = MessageAccountant()
        with pytest.raises(AccountingError):
            acct.record_message(0)
        with pytest.raises(AccountingError):
            acct.record_messages(3, 0)

    def test_rejects_negative_counts(self):
        acct = MessageAccountant()
        with pytest.raises(AccountingError):
            acct.record_messages(-1, 8)
        with pytest.raises(AccountingError):
            acct.record_rounds(-1)

    def test_rounds_and_broadcast_echoes(self):
        acct = MessageAccountant()
        acct.record_rounds(3)
        acct.record_broadcast_echo()
        acct.record_broadcast_echo()
        assert acct.rounds == 3
        assert acct.broadcast_echoes == 2

    def test_phase_records(self):
        acct = MessageAccountant()
        acct.record_phase(PhaseRecord("p0", messages=10, bits=100, rounds=4))
        assert len(acct.phases) == 1
        assert acct.phases[0].label == "p0"


class TestSnapshots:
    def test_since_measures_delta(self):
        acct = MessageAccountant()
        acct.record_message(8)
        snap = acct.snapshot()
        acct.record_messages(3, 4)
        acct.record_rounds(2)
        delta = acct.since(snap)
        assert delta.messages == 3
        assert delta.bits == 12
        assert delta.rounds == 2

    def test_foreign_snapshot_detected(self):
        a = MessageAccountant()
        b = MessageAccountant()
        b.record_messages(10, 8)
        snap = b.snapshot()
        with pytest.raises(AccountingError):
            a.since(snap)

    def test_reset(self):
        acct = MessageAccountant()
        acct.record_message(8)
        acct.record_rounds(1)
        acct.reset()
        assert acct.summary() == {
            "messages": 0,
            "bits": 0,
            "rounds": 0,
            "broadcast_echoes": 0,
        }


class TestCostDelta:
    def test_addition(self):
        a = CostDelta(1, 10, 2, 1)
        b = CostDelta(2, 20, 3, 0)
        total = a + b
        assert total == CostDelta(3, 30, 5, 1)

    def test_zero_identity(self):
        a = CostDelta(1, 10, 2, 1)
        assert a + CostDelta.zero() == a

    def test_merge_deltas(self):
        deltas = [CostDelta(1, 1, 1, 0), CostDelta(2, 2, 2, 1), CostDelta(3, 3, 3, 0)]
        assert merge_deltas(deltas) == CostDelta(6, 6, 6, 1)
        assert merge_deltas([]) == CostDelta.zero()
