"""Unit tests for the synchronous round-based engine."""

import pytest

from repro.network.errors import ProtocolError, SimulationError
from repro.network.graph import Graph
from repro.network.message import Message
from repro.network.node import ProtocolNode
from repro.network.sync_simulator import SynchronousSimulator


class EchoOnce(ProtocolNode):
    """Node 1 pings every neighbour once; neighbours reply PONG once."""

    def __init__(self, node_id, neighbors, initiator=False):
        super().__init__(node_id, neighbors)
        self.initiator = initiator
        self.received = []

    def on_start(self):
        if self.initiator:
            self.broadcast_to_neighbors("PING", size_bits=4)

    def on_message(self, message: Message):
        self.received.append((message.kind, message.sender))
        if message.kind == "PING":
            self.send(message.sender, "PONG", size_bits=4)


def _make_nodes(graph, initiator=1):
    nodes = []
    for node_id in graph.nodes():
        neighbors = {v: graph.get_edge(node_id, v).weight for v in graph.neighbors(node_id)}
        nodes.append(EchoOnce(node_id, neighbors, initiator=(node_id == initiator)))
    return nodes


class TestRegistration:
    def test_requires_node_in_graph(self, unit_line_graph):
        graph = unit_line_graph(4)
        sim = SynchronousSimulator(graph)
        with pytest.raises(SimulationError):
            sim.register(EchoOnce(99, {}))

    def test_rejects_duplicate_registration(self, unit_line_graph):
        graph = unit_line_graph(4)
        sim = SynchronousSimulator(graph)
        node = EchoOnce(1, {2: 1})
        sim.register(node)
        with pytest.raises(SimulationError):
            sim.register(EchoOnce(1, {2: 1}))

    def test_start_requires_full_coverage(self, unit_line_graph):
        graph = unit_line_graph(4)
        sim = SynchronousSimulator(graph)
        sim.register(EchoOnce(1, {2: 1}))
        with pytest.raises(SimulationError):
            sim.start()


class TestExecution:
    def test_ping_pong_round_structure(self, unit_line_graph):
        graph = unit_line_graph(3)   # 1-2-3, initiator 1 pings only node 2
        sim = SynchronousSimulator(graph)
        sim.register_all(_make_nodes(graph))
        rounds = sim.run()
        # Round 1 delivers PING to 2; round 2 delivers PONG to 1; round 3 is empty.
        assert rounds == 2
        assert sim.accountant.messages == 2
        assert sim.accountant.bits == 8
        assert sim.nodes[2].received == [("PING", 1)]
        assert sim.nodes[1].received == [("PONG", 2)]

    def test_messages_only_along_edges(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = SynchronousSimulator(graph)
        nodes = _make_nodes(graph)
        sim.register_all(nodes)
        with pytest.raises(ProtocolError):
            nodes[0].send(3, "PING")  # 1 and 3 are not adjacent

    def test_run_fixed_rounds(self, unit_line_graph):
        graph = unit_line_graph(4)
        sim = SynchronousSimulator(graph)
        sim.register_all(_make_nodes(graph))
        sim.start()
        executed = sim.run(rounds=1)
        assert executed == 1
        assert sim.current_round == 1

    def test_double_start_rejected(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = SynchronousSimulator(graph)
        sim.register_all(_make_nodes(graph))
        sim.start()
        with pytest.raises(SimulationError):
            sim.start()

    def test_max_rounds_guard(self, unit_line_graph):
        class Chatter(ProtocolNode):
            def on_start(self):
                self.broadcast_to_neighbors("SPAM")

            def on_message(self, message):
                self.send(message.sender, "SPAM")

        graph = unit_line_graph(2)
        sim = SynchronousSimulator(graph, max_rounds=10)
        for node_id in graph.nodes():
            neighbors = {v: 1 for v in graph.neighbors(node_id)}
            sim.register(Chatter(node_id, neighbors))
        with pytest.raises(SimulationError):
            sim.run()

    def test_rounds_recorded_in_accountant(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = SynchronousSimulator(graph)
        sim.register_all(_make_nodes(graph))
        sim.run()
        assert sim.accountant.rounds == sim.current_round
