"""Tests for the rooted-structure cache and its journal-replay patching.

The central property: whatever sequence of mark/unmark mutations the forest
goes through, ``forest.rooted_structure(root)`` on the fast path must be
*field-for-field identical* (root, parents, sorted children lists, depths)
to a fresh ``build_tree_structure`` — that is what makes the cached counters
(edge count, eccentricity, traversal orders) bit-identical to the reference
path.
"""

import random

import pytest

from repro import fastpath
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.broadcast import TreeStructure, build_tree_structure
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.network.tree_cache import TreeStructureCache, rooted_tree


def assert_same_structure(actual: TreeStructure, expected: TreeStructure) -> None:
    assert actual.root == expected.root
    assert actual.parent == expected.parent
    assert actual.children == expected.children
    assert actual.depth == expected.depth
    assert actual.eccentricity == expected.eccentricity
    assert actual.postorder() == expected.postorder()
    assert actual.preorder() == expected.preorder()


def path_forest(n: int = 8):
    graph = Graph(id_bits=8)
    for i in range(1, n):
        graph.add_edge(i, i + 1, weight=i)
    forest = SpanningForest(graph, marked=[(i, i + 1) for i in range(1, n)])
    return graph, forest


class TestVersioningAndJournal:
    def test_version_bumps_on_mutation(self, triangle_graph):
        forest = SpanningForest(triangle_graph)
        v0 = forest.version
        forest.mark(1, 2)
        assert forest.version == v0 + 1
        forest.mark(1, 2)  # re-marking is a no-op
        assert forest.version == v0 + 1
        forest.unmark(1, 2)
        assert forest.version == v0 + 2
        forest.unmark(1, 2)  # already unmarked: no-op
        assert forest.version == v0 + 2

    def test_journal_since(self, triangle_graph):
        forest = SpanningForest(triangle_graph)
        v0 = forest.version
        forest.mark(1, 2)
        forest.mark(2, 3)
        ops = forest.journal_since(v0)
        assert [(op, u, v) for _, op, u, v in ops] == [("mark", 1, 2), ("mark", 2, 3)]
        assert forest.journal_since(forest.version) == []

    def test_journal_forgets_old_history(self, triangle_graph):
        from repro.network import fragments

        forest = SpanningForest(triangle_graph)
        v0 = forest.version
        for _ in range(fragments._JOURNAL_LIMIT + 5):
            forest.mark(1, 2)
            forest.unmark(1, 2)
        assert forest.journal_since(v0) is None


class TestPatching:
    def test_cache_hit_without_mutation(self, triangle_graph):
        forest = SpanningForest(triangle_graph, marked=[(1, 2), (2, 3)])
        cache = forest.structures
        first = cache.get(1)
        assert cache.get(1) is first
        assert cache.hits == 1 and cache.rebuilds == 1

    def test_attach_patches_instead_of_rebuilding(self):
        graph, forest = path_forest(10)
        forest.unmark(5, 6)
        cache = forest.structures
        structure = cache.get(1)
        assert structure.size == 5
        rebuilds = cache.rebuilds
        forest.mark(5, 6)  # re-attach the tail: one-edge graft
        patched = cache.get(1)
        assert patched is structure
        assert cache.rebuilds == rebuilds
        assert_same_structure(patched, build_tree_structure(forest, 1))

    def test_detach_patches_instead_of_rebuilding(self):
        graph, forest = path_forest(10)
        cache = forest.structures
        structure = cache.get(1)
        rebuilds = cache.rebuilds
        forest.unmark(4, 5)
        patched = cache.get(1)
        assert patched is structure
        assert cache.rebuilds == rebuilds
        assert patched.size == 4
        assert_same_structure(patched, build_tree_structure(forest, 1))

    def test_cycle_mark_falls_back_to_rebuild(self):
        graph = Graph(id_bits=8)
        for u, v in [(1, 2), (2, 3), (3, 4), (1, 4)]:
            graph.add_edge(u, v, weight=u + v)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (3, 4)])
        cache = forest.structures
        cache.get(1)
        rebuilds = cache.rebuilds
        forest.mark(1, 4)  # closes a cycle: not patchable
        patched = cache.get(1)
        assert cache.rebuilds == rebuilds + 1
        assert_same_structure(patched, build_tree_structure(forest, 1))

    def test_clear_falls_back_to_rebuild(self):
        graph, forest = path_forest(6)
        cache = forest.structures
        cache.get(1)
        forest.clear()
        structure = cache.get(1)
        assert structure.size == 1

    def test_lru_eviction(self):
        graph, forest = path_forest(6)
        cache = TreeStructureCache(forest, max_entries=2)
        cache.get(1)
        cache.get(2)
        cache.get(3)  # evicts root 1
        rebuilds = cache.rebuilds
        cache.get(1)
        assert cache.rebuilds == rebuilds + 1

    def test_reference_path_bypasses_cache(self):
        graph, forest = path_forest(5)
        with fastpath.reference_path():
            first = rooted_tree(forest, 1)
            second = rooted_tree(forest, 1)
        assert first is not second
        with fastpath.fast_path():
            third = rooted_tree(forest, 1)
            assert rooted_tree(forest, 1) is third


class TestFuzzAgainstRebuild:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_mutation_sequences(self, seed):
        rng = random.Random(seed)
        n = 24
        graph = random_connected_graph(n, 3 * n, seed=seed)
        forest = random_spanning_tree_forest(graph, seed=seed + 1)
        edges = [(e.u, e.v) for e in graph.edges()]
        nodes = graph.nodes()
        for step in range(120):
            op = rng.random()
            if op < 0.4:
                u, v = edges[rng.randrange(len(edges))]
                if forest.is_marked(u, v):
                    forest.unmark(u, v)
                else:
                    # May close a cycle — that exercises the rebuild fallback.
                    forest.mark(u, v)
            root = nodes[rng.randrange(len(nodes))]
            cached = forest.rooted_structure(root)
            rebuilt = build_tree_structure(forest, root)
            assert_same_structure(cached, rebuilt)


class TestJournalLimitConfiguration:
    def test_constructor_limit_wins(self, triangle_graph):
        forest = SpanningForest(triangle_graph, journal_limit=3)
        assert forest.journal_limit == 3
        v0 = forest.version
        for _ in range(4):
            forest.mark(1, 2)
            forest.unmark(1, 2)
        assert forest.journal_since(v0) is None  # 8 ops > limit 3

    def test_env_override_applies_to_new_forests(self, triangle_graph, monkeypatch):
        from repro.network import fragments

        monkeypatch.setenv("REPRO_JOURNAL_LIMIT", "7")
        assert fragments.default_journal_limit() == 7
        assert SpanningForest(triangle_graph).journal_limit == 7
        monkeypatch.setenv("REPRO_JOURNAL_LIMIT", "not-a-number")
        assert fragments.default_journal_limit() == fragments._JOURNAL_LIMIT
        monkeypatch.setenv("REPRO_JOURNAL_LIMIT", "0")
        assert fragments.default_journal_limit() == 1  # clamped to >= 1

    def test_limit_floor_is_one(self, triangle_graph):
        assert SpanningForest(triangle_graph, journal_limit=-5).journal_limit == 1


class TestCacheStats:
    def test_stats_snapshot_counts_hits_patches_rebuilds(self):
        graph, forest = path_forest(8)
        cache = forest.structures
        cache.get(1)  # rebuild
        cache.get(1)  # exact-version hit
        forest.unmark(4, 5)  # detach: patchable
        cache.get(1)  # patched hit
        stats = cache.stats()
        assert stats["rebuilds"] == 1
        assert stats["hits"] == 2
        assert stats["patches"] == 1
        assert stats["journal_overruns"] == 0
        assert stats["entries"] == 1
        assert stats["max_entries"] == cache.max_entries
        assert stats["journal_limit"] == forest.journal_limit

    def test_journal_overrun_counted_and_forces_rebuild(self, triangle_graph):
        graph = triangle_graph
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3)], journal_limit=2)
        cache = forest.structures
        cache.get(1)
        for _ in range(3):  # 6 ops: blows the 2-entry journal
            forest.unmark(1, 2)
            forest.mark(1, 2)
        rebuilds = cache.rebuilds
        structure = cache.get(1)
        assert cache.journal_overruns == 1
        assert cache.rebuilds == rebuilds + 1
        assert cache.stats()["journal_overruns"] == 1
        assert_same_structure(structure, build_tree_structure(forest, 1))


class TestCsrRebuild:
    """The flat-column BFS builder must equal the per-node one exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_csr_builder_matches_reference(self, seed):
        from repro.network.broadcast import build_tree_structure_csr

        rng = random.Random(seed)
        n = 20
        graph = random_connected_graph(n, 2 * n, seed=seed)
        forest = random_spanning_tree_forest(graph, seed=seed + 1)
        # Split into several components so non-tree rows and empty rows
        # (isolated-in-forest nodes) appear in the CSR columns.
        for key in sorted(forest.marked_edges)[:3]:
            forest.unmark(*key)
        for root in graph.nodes():
            assert_same_structure(
                build_tree_structure_csr(forest, root),
                build_tree_structure(forest, root),
            )

    def test_csr_builder_rejects_missing_root(self):
        from repro.network.broadcast import build_tree_structure_csr
        from repro.network.errors import ProtocolError

        graph, forest = path_forest(4)
        with pytest.raises(ProtocolError):
            build_tree_structure_csr(forest, 99)

    def test_marked_csr_matches_neighbors_and_caches(self):
        graph, forest = path_forest(6)
        ids, pos, indptr, neighbors = forest.marked_csr()
        assert ids == graph.nodes()
        for i, node in enumerate(ids):
            assert pos[node] == i
            assert neighbors[indptr[i]:indptr[i + 1]] == forest.marked_neighbors(node)
        assert forest.marked_csr()[3] is neighbors  # cached at this version
        forest.unmark(3, 4)
        fresh = forest.marked_csr()[3]
        assert fresh is not neighbors
        row = pos[3]
        assert fresh[forest.marked_csr()[2][row]:forest.marked_csr()[2][row + 1]] == [2]

    def test_batched_rebuild_dispatch_is_structure_invariant(self, monkeypatch):
        # With the batch threshold forced down, _build takes the CSR path on
        # covering forests; the resulting structure must be identical.
        monkeypatch.setenv("REPRO_BATCH_MIN_NODES", "2")
        graph = random_connected_graph(16, 32, seed=9)
        forest = random_spanning_tree_forest(graph, seed=10)
        cache = TreeStructureCache(forest)
        structure = cache.get(1)
        assert cache.rebuilds == 1
        assert_same_structure(structure, build_tree_structure(forest, 1))
