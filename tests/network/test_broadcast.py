"""Tests for broadcast-and-echo: fast executor vs per-node reference protocol.

The key test family here validates the claim in DESIGN.md §4.1: the fast
fragment-level executor charges exactly the messages/bits a genuine per-node
execution of broadcast-and-echo sends, and both compute the same aggregate.
"""

import pytest

from repro.network.accounting import MessageAccountant
from repro.network.broadcast import (
    BroadcastEchoExecutor,
    build_tree_structure,
    run_reference_broadcast_echo,
)
from repro.network.errors import ProtocolError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.network.scheduler import LifoScheduler, RandomScheduler


def _tree_graph():
    """A 7-node tree with two extra non-tree edges."""
    graph = Graph(id_bits=4)
    edges = [(1, 2, 4), (2, 3, 1), (2, 4, 7), (4, 5, 2), (4, 6, 9), (1, 7, 3)]
    for u, v, w in edges:
        graph.add_edge(u, v, w)
    graph.add_edge(3, 5, 20)
    graph.add_edge(6, 7, 30)
    forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (2, 4), (4, 5), (4, 6), (1, 7)])
    return graph, forest


class TestTreeStructure:
    def test_parents_children_depths(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        assert tree.root == 1
        assert tree.parent[1] is None
        assert tree.parent[3] == 2
        assert set(tree.children[2]) == {3, 4}
        assert tree.depth[5] == 3
        assert tree.size == 7
        assert tree.num_edges == 6
        assert tree.eccentricity == 3

    def test_postorder_children_before_parents(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        order = tree.postorder()
        assert order[-1] == 1
        assert order.index(3) < order.index(2)
        assert order.index(5) < order.index(4)

    def test_preorder_parents_before_children(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        order = tree.preorder()
        assert order[0] == 1
        assert sorted(order) == tree.nodes
        for node in order:
            if tree.parent[node] is not None:
                assert order.index(tree.parent[node]) < order.index(node)

    def test_preorder_visits_children_ascending(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        # Root 1 has children [2, 7]: 2's whole subtree precedes 7.
        order = tree.preorder()
        assert order.index(2) < order.index(7)
        assert all(order.index(n) < order.index(7) for n in (3, 4, 5, 6))

    def test_invalidate_orders_recomputes(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        before = tree.postorder()
        tree.invalidate_orders()
        assert tree.postorder() == before
        assert tree.preorder()[0] == 1

    def test_path_from_root(self):
        graph, forest = _tree_graph()
        tree = build_tree_structure(forest, root=1)
        assert tree.path_from_root(5) == [1, 2, 4, 5]
        assert tree.path_from_root(1) == [1]

    def test_unknown_root_rejected(self):
        graph, forest = _tree_graph()
        with pytest.raises(ProtocolError):
            build_tree_structure(forest, root=42)

    def test_structure_covers_only_component(self):
        graph, forest = _tree_graph()
        forest.unmark(2, 4)
        tree = build_tree_structure(forest, root=1)
        assert set(tree.nodes) == {1, 2, 3, 7}


class TestExecutorAccounting:
    def test_broadcast_and_echo_counts(self):
        graph, forest = _tree_graph()
        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)
        total = executor.broadcast_and_echo(
            root=1,
            local_value=lambda node: 1,
            combine=lambda local, children: local + sum(children),
            broadcast_bits=10,
            echo_bits=3,
        )
        assert total == 7  # counted the tree size
        assert acct.messages == 12  # 6 edges, broadcast + echo each
        assert acct.bits == 6 * 10 + 6 * 3
        assert acct.rounds == 2 * 3  # twice the eccentricity
        assert acct.broadcast_echoes == 1

    def test_broadcast_only_counts(self):
        graph, forest = _tree_graph()
        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)
        executor.broadcast_only(root=1, broadcast_bits=8)
        assert acct.messages == 6
        assert acct.bits == 48
        assert acct.broadcast_echoes == 0

    def test_singleton_tree_costs_nothing(self):
        graph = Graph()
        graph.add_node(1)
        forest = SpanningForest(graph)
        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)
        value = executor.broadcast_and_echo(
            root=1,
            local_value=lambda node: 5,
            combine=lambda local, children: local + sum(children),
            broadcast_bits=8,
            echo_bits=8,
        )
        assert value == 5
        assert acct.messages == 0

    def test_point_to_point_requires_edge(self):
        graph, forest = _tree_graph()
        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)
        executor.point_to_point_along_edge(3, 5, size_bits=8)
        assert acct.messages == 1
        with pytest.raises(ProtocolError):
            executor.point_to_point_along_edge(3, 6, size_bits=8)

    def test_downward_state_propagation(self):
        graph, forest = _tree_graph()
        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)

        # Compute, at node 5, the maximum edge weight on the path from root 1.
        def propagate(state, parent, child):
            weight = graph.get_edge(parent, child).weight
            return max(state, weight)

        def collect(node, state):
            return state if node == 5 else None

        def combine(local, children):
            values = [v for v in [local] + list(children) if v is not None]
            return values[0] if values else None

        answer = executor.broadcast_with_downward_state(
            root=1,
            initial_state=0,
            propagate=propagate,
            broadcast_bits=8,
            echo_bits=8,
            collect=collect,
            combine=combine,
        )
        # Path 1-2-4-5 has weights 4, 7, 2 -> max 7.
        assert answer == 7


class TestReferenceProtocolAgreement:
    @pytest.mark.parametrize("engine", ["sync", "async"])
    def test_same_aggregate_and_message_count(self, engine):
        graph, forest = _tree_graph()
        local_values = {node: node * node for node in graph.nodes()}

        def combine(local, children):
            return (local or 0) + sum(children)

        reference_value, reference_acct = run_reference_broadcast_echo(
            graph, forest, root=1, local_values=local_values, combine=combine,
            broadcast_bits=9, echo_bits=5, engine=engine,
        )

        acct = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, acct)
        fast_value = executor.broadcast_and_echo(
            root=1,
            local_value=lambda node: local_values[node],
            combine=combine,
            broadcast_bits=9,
            echo_bits=5,
        )
        assert fast_value == reference_value
        assert acct.messages == reference_acct.messages
        assert acct.bits == reference_acct.bits

    @pytest.mark.parametrize(
        "scheduler_factory", [lambda: RandomScheduler(seed=5), LifoScheduler]
    )
    def test_async_schedule_independence(self, scheduler_factory):
        graph, forest = _tree_graph()
        local_values = {node: node for node in graph.nodes()}

        def combine(local, children):
            return (local or 0) + sum(children)

        value, acct = run_reference_broadcast_echo(
            graph, forest, root=2, local_values=local_values, combine=combine,
            broadcast_bits=4, echo_bits=4, engine="async",
            scheduler=scheduler_factory(),
        )
        assert value == sum(graph.nodes())
        assert acct.messages == 2 * 6

    def test_root_only_component_participates(self):
        graph, forest = _tree_graph()
        forest.unmark(2, 4)   # split {1,2,3,7} / {4,5,6}
        local_values = {node: 1 for node in graph.nodes()}

        def combine(local, children):
            return (local or 0) + sum(children)

        value, acct = run_reference_broadcast_echo(
            graph, forest, root=1, local_values=local_values, combine=combine,
            broadcast_bits=4, echo_bits=4,
        )
        assert value == 4
        assert acct.messages == 2 * 3
