"""Unit tests for the asynchronous delivery schedulers."""

import pytest

from repro.network.errors import SimulationError
from repro.network.message import Message
from repro.network.scheduler import (
    EdgeDelayScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
)


def _msg(i, sender=1, receiver=2):
    return Message(sender=sender, receiver=receiver, kind=f"m{i}", size_bits=1)


class TestFifo:
    def test_order(self):
        sched = FifoScheduler()
        messages = [_msg(i) for i in range(5)]
        for message in messages:
            sched.push(message)
        popped = [sched.pop() for _ in range(5)]
        assert [m.kind for m in popped] == [m.kind for m in messages]

    def test_empty_pop_raises(self):
        with pytest.raises(SimulationError):
            FifoScheduler().pop()

    def test_interleaved_push_pop(self):
        sched = FifoScheduler()
        sched.push(_msg(0))
        sched.push(_msg(1))
        assert sched.pop().kind == "m0"
        sched.push(_msg(2))
        assert sched.pop().kind == "m1"
        assert sched.pop().kind == "m2"
        assert sched.empty()

    def test_compaction_keeps_order(self):
        sched = FifoScheduler()
        for i in range(3000):
            sched.push(_msg(i))
        for i in range(2500):
            assert sched.pop().kind == f"m{i}"
        assert len(sched) == 500
        assert sched.pop().kind == "m2500"


class TestLifo:
    def test_order(self):
        sched = LifoScheduler()
        for i in range(3):
            sched.push(_msg(i))
        assert [sched.pop().kind for _ in range(3)] == ["m2", "m1", "m0"]

    def test_empty_pop_raises(self):
        with pytest.raises(SimulationError):
            LifoScheduler().pop()


class TestRandom:
    def test_is_permutation(self):
        sched = RandomScheduler(seed=11)
        kinds = {f"m{i}" for i in range(10)}
        for i in range(10):
            sched.push(_msg(i))
        popped = {sched.pop().kind for _ in range(10)}
        assert popped == kinds

    def test_seeded_determinism(self):
        orders = []
        for _ in range(2):
            sched = RandomScheduler(seed=42)
            for i in range(8):
                sched.push(_msg(i))
            orders.append([sched.pop().kind for _ in range(8)])
        assert orders[0] == orders[1]

    def test_rng_and_seed_mutually_exclusive(self):
        import random

        with pytest.raises(SimulationError):
            RandomScheduler(rng=random.Random(1), seed=2)


class TestEdgeDelay:
    def test_slow_edge_delivered_later(self):
        sched = EdgeDelayScheduler(delays={(1, 2): 10, (3, 4): 0}, default_delay=0)
        slow = _msg(0, sender=1, receiver=2)
        fast = _msg(1, sender=3, receiver=4)
        sched.push(slow)
        sched.push(fast)
        assert sched.pop() is fast
        assert sched.pop() is slow

    def test_default_delay_applies(self):
        sched = EdgeDelayScheduler(default_delay=5)
        first = _msg(0)
        second = _msg(1)
        sched.push(first)
        sched.push(second)
        assert sched.pop() is first

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EdgeDelayScheduler(default_delay=-1)
        with pytest.raises(SimulationError):
            EdgeDelayScheduler(delays={(1, 2): -3})

    def test_empty_pop_raises(self):
        with pytest.raises(SimulationError):
            EdgeDelayScheduler().pop()


class TestFromParamsAndFactory:
    def test_make_scheduler_by_name(self):
        from repro.network.scheduler import make_scheduler

        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("lifo"), LifoScheduler)
        assert isinstance(make_scheduler("random", seed=3), RandomScheduler)
        assert isinstance(make_scheduler("edge-delay"), EdgeDelayScheduler)

    def test_unknown_name_lists_registry(self):
        from repro.network.scheduler import make_scheduler

        with pytest.raises(SimulationError, match="fifo"):
            make_scheduler("quantum")

    def test_unknown_params_rejected(self):
        from repro.network.scheduler import make_scheduler

        with pytest.raises(SimulationError):
            make_scheduler("fifo", seed=1)
        with pytest.raises(SimulationError):
            make_scheduler("random", delays={})

    def test_edge_delay_string_keys(self):
        from repro.network.scheduler import make_scheduler

        sched = make_scheduler("edge-delay", delays={"1-2": 4}, default_delay=0)
        fast = _msg(0, sender=3, receiver=4)
        slow = _msg(1, sender=1, receiver=2)
        sched.push(slow)
        sched.push(fast)
        assert sched.pop() is fast

    def test_edge_delay_triple_list(self):
        from repro.network.scheduler import make_scheduler

        sched = make_scheduler("edge-delay", delays=[[2, 1, 7]])
        sched.push(_msg(0, sender=1, receiver=2))
        assert len(sched) == 1

    def test_edge_delay_bad_keys_rejected(self):
        from repro.network.scheduler import make_scheduler

        with pytest.raises(SimulationError):
            make_scheduler("edge-delay", delays={"one:two": 4})
        with pytest.raises(SimulationError):
            make_scheduler("edge-delay", delays=[[1, 2]])

    def test_random_from_params_is_seeded(self):
        first = RandomScheduler.from_params(seed=5)
        second = RandomScheduler.from_params(seed=5)
        messages = [_msg(i) for i in range(6)]
        for m in messages:
            first.push(m)
            second.push(m)
        assert [first.pop().kind for _ in range(6)] == [
            second.pop().kind for _ in range(6)
        ]
