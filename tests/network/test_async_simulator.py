"""Unit tests for the asynchronous event-driven engine and its schedulers."""

import pytest

from repro.network.async_simulator import AsynchronousSimulator
from repro.network.errors import SimulationError
from repro.network.graph import Graph
from repro.network.message import Message
from repro.network.node import ProtocolNode
from repro.network.scheduler import LifoScheduler, RandomScheduler


class Forwarder(ProtocolNode):
    """Forward a token along a line until it reaches the last node."""

    def __init__(self, node_id, neighbors, start=False, last=False):
        super().__init__(node_id, neighbors)
        self.start_token = start
        self.last = last
        self.got_token = False

    def on_start(self):
        if self.start_token:
            self.send(self.node_id + 1, "TOKEN", size_bits=2)

    def on_message(self, message: Message):
        self.got_token = True
        if not self.last:
            self.send(self.node_id + 1, "TOKEN", size_bits=2)


def _forwarders(graph):
    n = graph.num_nodes
    nodes = []
    for node_id in graph.nodes():
        neighbors = {v: 1 for v in graph.neighbors(node_id)}
        nodes.append(Forwarder(node_id, neighbors, start=(node_id == 1), last=(node_id == n)))
    return nodes


class TestAsyncEngine:
    def test_token_reaches_end(self, unit_line_graph):
        graph = unit_line_graph(5)
        sim = AsynchronousSimulator(graph)
        sim.register_all(_forwarders(graph))
        deliveries = sim.run()
        assert deliveries == 4
        assert sim.nodes[5].got_token
        assert sim.accountant.messages == 4

    def test_causal_depth_equals_chain_length(self, unit_line_graph):
        graph = unit_line_graph(6)
        sim = AsynchronousSimulator(graph)
        sim.register_all(_forwarders(graph))
        sim.run()
        assert sim.causal_depth == 5
        assert sim.accountant.rounds == 5

    def test_random_scheduler_same_outcome(self, unit_line_graph):
        graph = unit_line_graph(5)
        sim = AsynchronousSimulator(graph, scheduler=RandomScheduler(seed=3))
        sim.register_all(_forwarders(graph))
        sim.run()
        assert sim.nodes[5].got_token

    def test_lifo_scheduler_same_outcome(self, unit_line_graph):
        graph = unit_line_graph(5)
        sim = AsynchronousSimulator(graph, scheduler=LifoScheduler())
        sim.register_all(_forwarders(graph))
        sim.run()
        assert sim.nodes[5].got_token

    def test_deliver_one_requires_start(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = AsynchronousSimulator(graph)
        sim.register_all(_forwarders(graph))
        with pytest.raises(SimulationError):
            sim.deliver_one()

    def test_max_deliveries_guard(self, unit_line_graph):
        class PingPong(ProtocolNode):
            def on_start(self):
                self.broadcast_to_neighbors("SPAM")

            def on_message(self, message):
                self.send(message.sender, "SPAM")

        graph = unit_line_graph(2)
        sim = AsynchronousSimulator(graph, max_deliveries=20)
        for node_id in graph.nodes():
            sim.register(PingPong(node_id, {v: 1 for v in graph.neighbors(node_id)}))
        with pytest.raises(SimulationError):
            sim.run()

    def test_start_requires_full_coverage(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = AsynchronousSimulator(graph)
        sim.register(Forwarder(1, {2: 1}, start=True))
        with pytest.raises(SimulationError):
            sim.start()
