"""Unit tests for Message objects and bit-size helpers."""

import pytest

from repro.network.message import Message, message_bits_for_value


class TestMessageBits:
    def test_small_values(self):
        assert message_bits_for_value(0) == 1
        assert message_bits_for_value(1) == 1
        assert message_bits_for_value(2) == 2
        assert message_bits_for_value(255) == 8
        assert message_bits_for_value(256) == 9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            message_bits_for_value(-1)


class TestMessage:
    def test_defaults(self):
        msg = Message(sender=1, receiver=2, kind="PING")
        assert msg.size_bits == 1
        assert msg.payload is None
        assert msg.send_time is None

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            Message(sender=1, receiver=2, kind="PING", size_bits=0)

    def test_sequence_numbers_increase(self):
        a = Message(sender=1, receiver=2, kind="A")
        b = Message(sender=1, receiver=2, kind="B")
        assert b.sequence > a.sequence

    def test_payload_is_free_form(self):
        msg = Message(sender=1, receiver=2, kind="DATA", payload={"x": [1, 2]}, size_bits=32)
        assert msg.payload["x"] == [1, 2]


class TestClone:
    def test_clone_keeps_the_wire_content(self):
        msg = Message(sender=3, receiver=7, kind="ECHO", payload=(1, 2), size_bits=16)
        copy = msg.clone()
        assert (copy.sender, copy.receiver, copy.kind) == (3, 7, "ECHO")
        assert copy.payload is msg.payload  # same content, not a deep copy
        assert copy.size_bits == msg.size_bits

    def test_clone_is_a_fresh_send(self):
        msg = Message(sender=1, receiver=2, kind="PING")
        msg.send_time = 9
        copy = msg.clone()
        assert copy.sequence > msg.sequence  # its own identity
        assert copy.send_time is None  # for the engine to stamp
        assert msg.send_time == 9  # the original is untouched

    def test_clones_of_clones_keep_advancing_the_sequence(self):
        msg = Message(sender=1, receiver=2, kind="PING")
        first, second = msg.clone(), msg.clone().clone()
        assert len({msg.sequence, first.sequence, second.sequence}) == 3
