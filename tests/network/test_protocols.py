"""Tests for the message-level reference protocols vs the fragment-level path."""

import pytest

from repro.core.config import AlgorithmConfig
from repro.core.hashing import random_odd_hash
from repro.core.primes import prime_for_field
from repro.core.repair import TreeRepairer
from repro.core.testout import CutTester
from repro.generators import random_connected_graph, random_spanning_tree_forest
from repro.network.accounting import MessageAccountant
from repro.network.protocols import (
    run_hp_testout_protocol,
    run_path_max_protocol,
    run_testout_protocol,
)
from repro.network.scheduler import LifoScheduler, RandomScheduler


def _split_tree(n=18, m=50, seed=4):
    graph = random_connected_graph(n, m, seed=seed)
    forest = random_spanning_tree_forest(graph, seed=seed + 1)
    key = sorted(forest.marked_edges)[n // 3]
    forest.unmark(*key)
    root = max(key, key=lambda node: len(forest.component_of(node)))
    return graph, forest, root


class TestTestOutProtocol:
    @pytest.mark.parametrize("engine", ["sync", "async"])
    def test_agrees_with_fragment_level_testout(self, engine):
        graph, forest, root = _split_tree()
        config = AlgorithmConfig(n=graph.num_nodes, seed=9)
        tester = CutTester(graph, forest, config, MessageAccountant())
        stats = tester.tree_statistics(root)
        # Use the same hash function in both executions: answers must agree.
        for trial in range(10):
            odd_hash = random_odd_hash(max(stats.max_edge_number, 1), config.rng)
            fragment_answer = tester.test_out(
                root, odd_hash=odd_hash, max_edge_number=stats.max_edge_number
            )
            protocol_answer, _ = run_testout_protocol(
                graph, forest, root, odd_hash, engine=engine
            )
            assert fragment_answer == protocol_answer

    def test_message_count_matches_fast_executor(self):
        graph, forest, root = _split_tree()
        config = AlgorithmConfig(n=graph.num_nodes, seed=10)
        odd_hash = random_odd_hash(max(graph.max_edge_number(), 1), config.rng)
        _, protocol_acct = run_testout_protocol(graph, forest, root, odd_hash)
        tree_size = len(forest.component_of(root))
        assert protocol_acct.messages == 2 * (tree_size - 1)

    def test_empty_cut_never_detected(self):
        graph = random_connected_graph(14, 30, seed=6)
        forest = random_spanning_tree_forest(graph, seed=7)
        config = AlgorithmConfig(n=14, seed=11)
        root = graph.nodes()[0]
        for _ in range(15):
            odd_hash = random_odd_hash(max(graph.max_edge_number(), 1), config.rng)
            detected, _ = run_testout_protocol(graph, forest, root, odd_hash)
            assert not detected

    @pytest.mark.parametrize(
        "scheduler_factory", [lambda: RandomScheduler(seed=3), LifoScheduler]
    )
    def test_adversarial_schedules(self, scheduler_factory):
        graph, forest, root = _split_tree(seed=8)
        config = AlgorithmConfig(n=graph.num_nodes, seed=12)
        odd_hash = random_odd_hash(max(graph.max_edge_number(), 1), config.rng)
        sync_answer, _ = run_testout_protocol(graph, forest, root, odd_hash)
        async_answer, _ = run_testout_protocol(
            graph, forest, root, odd_hash, engine="async", scheduler=scheduler_factory()
        )
        assert sync_answer == async_answer


class TestHPTestOutProtocol:
    @pytest.mark.parametrize("engine", ["sync", "async"])
    def test_agrees_with_fragment_level(self, engine):
        graph, forest, root = _split_tree(seed=9)
        config = AlgorithmConfig(n=graph.num_nodes, seed=13)
        tester = CutTester(graph, forest, config, MessageAccountant())
        stats = tester.tree_statistics(root)
        p = prime_for_field(stats.max_edge_number, stats.num_endpoints, config.epsilon())
        alpha = config.rng.randrange(p)
        detected, acct = run_hp_testout_protocol(
            graph, forest, root, alpha=alpha, field_prime=p, engine=engine
        )
        # a non-empty cut exists by construction; HP-TestOut detects it w.h.p.
        assert detected
        tree_size = len(forest.component_of(root))
        assert acct.messages == 2 * (tree_size - 1)

    def test_empty_cut_always_negative(self):
        graph = random_connected_graph(14, 30, seed=10)
        forest = random_spanning_tree_forest(graph, seed=11)
        config = AlgorithmConfig(n=14, seed=14)
        root = graph.nodes()[0]
        p = prime_for_field(graph.max_edge_number(), 2 * graph.num_edges, 0.001)
        for trial in range(10):
            alpha = config.rng.randrange(p)
            detected, _ = run_hp_testout_protocol(
                graph, forest, root, alpha=alpha, field_prime=p
            )
            assert not detected

    def test_weight_range_restriction(self):
        graph, forest, root = _split_tree(seed=12)
        config = AlgorithmConfig(n=graph.num_nodes, seed=15)
        component = forest.component_of(root)
        cut = forest.outgoing_edges(component)
        lightest = min(cut, key=lambda e: e.augmented_weight(graph.id_bits))
        aug = lightest.augmented_weight(graph.id_bits)
        p = prime_for_field(graph.max_edge_number(), 2 * graph.num_edges, 0.0001)
        alpha = config.rng.randrange(p)
        detected, _ = run_hp_testout_protocol(
            graph, forest, root, alpha=alpha, field_prime=p, low=aug, high=aug
        )
        assert detected
        detected_below, _ = run_hp_testout_protocol(
            graph, forest, root, alpha=alpha, field_prime=p, low=0, high=aug - 1
        )
        assert not detected_below


class TestPathMaxProtocol:
    def test_finds_heaviest_path_edge(self):
        graph = random_connected_graph(16, 40, seed=13)
        forest = random_spanning_tree_forest(graph, seed=14)
        root, target = graph.nodes()[0], graph.nodes()[-1]
        (found, heaviest_key), acct = run_path_max_protocol(graph, forest, root, target)
        assert found
        # Check against an explicit walk of the tree path.
        from repro.network.broadcast import build_tree_structure

        tree = build_tree_structure(forest, root)
        path = tree.path_from_root(target)
        path_edges = [graph.get_edge(a, b) for a, b in zip(path, path[1:])]
        true_heaviest = max(path_edges, key=lambda e: e.augmented_weight(graph.id_bits))
        assert heaviest_key == (true_heaviest.u, true_heaviest.v)
        assert acct.messages == 2 * (graph.num_nodes - 1)

    def test_target_in_other_tree(self):
        graph, forest, root = _split_tree(seed=15)
        other_component_node = next(
            node for node in graph.nodes() if node not in forest.component_of(root)
        )
        (found, heaviest), _ = run_path_max_protocol(
            graph, forest, root, other_component_node
        )
        assert not found
        assert heaviest is None

    def test_agrees_with_repairer_insert_decision(self):
        """The message-level query justifies TreeRepairer's fragment-level one."""
        graph = random_connected_graph(16, 40, seed=16)
        forest = random_spanning_tree_forest(graph, seed=17)
        nodes = graph.nodes()
        pair = next(
            (u, v) for u in nodes for v in nodes if u < v and not graph.has_edge(u, v)
        )
        (found, heaviest_key), _ = run_path_max_protocol(graph, forest, pair[0], pair[1])
        assert found
        heaviest = graph.get_edge(*heaviest_key)

        repairer = TreeRepairer(
            graph, forest, AlgorithmConfig(n=16, seed=18), mode="mst"
        )
        # Insert an edge lighter than the heaviest path edge: the repairer
        # must remove exactly that heaviest edge.
        report = repairer.insert_edge(pair[0], pair[1], weight=0)
        assert report.removed == heaviest
