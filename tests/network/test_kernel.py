"""Unit tests for the unified event kernel and its fault boundary.

The kernel itself is mostly exercised through its two facades (see
``test_sync_simulator.py`` / ``test_async_simulator.py``, whose pinned
error messages now come from the single shared implementation); the tests
here cover what is new: the synchrony policy objects, and deterministic
fault injection at the delivery boundary on both engines.
"""

import pytest

from repro.network.async_simulator import AsynchronousSimulator
from repro.network.errors import SimulationError
from repro.network.faults import DELIVER, DROP, FaultEvent, FaultInjector
from repro.network.graph import Graph
from repro.network.kernel import EventKernel, EventSynchrony, RoundSynchrony
from repro.network.message import Message
from repro.network.node import ProtocolNode
from repro.network.scheduler import RandomScheduler
from repro.network.sync_simulator import SynchronousSimulator


class Pinger(ProtocolNode):
    """Node 1 pings every neighbour; everyone records what arrives."""

    def __init__(self, node_id, neighbors, initiator=False):
        super().__init__(node_id, neighbors)
        self.initiator = initiator
        self.received = []
        self.round_begins = 0

    def on_start(self):
        if self.initiator:
            self.broadcast_to_neighbors("PING", size_bits=4)

    def on_message(self, message):
        self.received.append((message.kind, message.sender))

    def on_round_begin(self, round_number):
        self.round_begins += 1


class Relay(ProtocolNode):
    """Forward a token along a line graph."""

    def __init__(self, node_id, neighbors, start=False, last=False):
        super().__init__(node_id, neighbors)
        self.start_token = start
        self.last = last
        self.received = []

    def on_start(self):
        if self.start_token:
            self.send(self.node_id + 1, "TOKEN", size_bits=2)

    def on_message(self, message):
        self.received.append(message.sender)
        if not self.last:
            self.send(self.node_id + 1, "TOKEN", size_bits=2)


def _star(n=4):
    graph = Graph()
    for i in range(2, n + 1):
        graph.add_edge(1, i, i)
    return graph


def _pingers(graph, initiator=1):
    nodes = []
    for node_id in graph.nodes():
        neighbors = {v: 1 for v in graph.neighbors(node_id)}
        nodes.append(Pinger(node_id, neighbors, initiator=(node_id == initiator)))
    return nodes


def _relays(graph):
    n = graph.num_nodes
    return [
        Relay(
            node_id,
            {v: 1 for v in graph.neighbors(node_id)},
            start=(node_id == 1),
            last=(node_id == n),
        )
        for node_id in graph.nodes()
    ]


class TestKernelStructure:
    def test_facades_are_kernel_instances(self, unit_line_graph):
        graph = unit_line_graph(3)
        sync = SynchronousSimulator(graph)
        asyn = AsynchronousSimulator(graph)
        assert isinstance(sync, EventKernel)
        assert isinstance(asyn, EventKernel)
        assert isinstance(sync.synchrony, RoundSynchrony)
        assert isinstance(asyn.synchrony, EventSynchrony)

    def test_policies_report_their_limit_noun(self):
        assert RoundSynchrony.limit_noun == "rounds"
        assert EventSynchrony.limit_noun == "deliveries"

    def test_shared_registration_is_one_implementation(self):
        # Both facades inherit register() from the kernel, unchanged.
        assert (
            SynchronousSimulator.register
            is AsynchronousSimulator.register
            is EventKernel.register
        )
        assert SynchronousSimulator.submit is EventKernel.submit

    def test_started_property(self, unit_line_graph):
        sim = SynchronousSimulator(unit_line_graph(2))
        sim.register_all(_pingers(unit_line_graph(2)))
        assert not sim.started
        sim.start()
        assert sim.started


class TestFaultInjector:
    def test_probability_validation(self):
        with pytest.raises(SimulationError):
            FaultInjector(drop=1.0)
        with pytest.raises(SimulationError):
            FaultInjector(duplicate=-0.1)

    def test_bad_link_window_rejected(self):
        with pytest.raises(SimulationError):
            FaultInjector(link_down=[(1, 2, 5, 3)])

    def test_crash_and_link_predicates(self):
        injector = FaultInjector(crashes={3: 2}, link_down=[(1, 2, 1, 4), (4, 5, 0, None)])
        assert not injector.is_crashed(3, 1)
        assert injector.is_crashed(3, 2)
        assert injector.crashed_nodes == [3]
        assert not injector.link_is_down(2, 1, 0)
        assert injector.link_is_down(2, 1, 1)
        assert not injector.link_is_down(1, 2, 4)
        assert injector.link_is_down(5, 4, 10 ** 9)  # fail-stop: never heals

    def test_verdict_logs_drops(self):
        injector = FaultInjector(crashes={2: 0})
        message = Message(sender=1, receiver=2, kind="X")
        assert injector.verdict(message, 0) == DROP
        assert injector.verdict(Message(sender=2, receiver=1, kind="X"), 0) == DELIVER
        assert injector.event_log() == [[0, "drop", 1, 2]]

    def test_seeded_decisions_are_reproducible(self):
        def history(seed):
            injector = FaultInjector(drop=0.5, seed=seed)
            return [
                injector.verdict(Message(sender=1, receiver=2, kind="X"), t)
                for t in range(32)
            ]

        assert history(7) == history(7)
        assert history(7) != history(8)

    def test_fault_event_round_trip_shape(self):
        event = FaultEvent(time=3, kind="drop", u=1, v=2)
        assert event.to_list() == [3, "drop", 1, 2]


class TestCrashStopOnBothEngines:
    def test_sync_crashed_node_never_acts(self):
        graph = _star(4)
        injector = FaultInjector(crashes={3: 0})
        sim = SynchronousSimulator(graph, faults=injector)
        sim.register_all(_pingers(graph))
        sim.run()
        assert sim.nodes[3].received == []
        assert sim.nodes[3].round_begins == 0  # handlers fully suppressed
        assert sim.nodes[2].received == [("PING", 1)]
        assert [e.to_list() for e in injector.log] == [[1, "drop", 1, 3]]

    def test_async_crashed_node_never_acts(self, unit_line_graph):
        graph = unit_line_graph(4)
        injector = FaultInjector(crashes={3: 0})
        sim = AsynchronousSimulator(graph, faults=injector)
        sim.register_all(_relays(graph))
        sim.run()
        # The token dies at node 3: node 4 never hears anything.
        assert sim.nodes[2].received == [1]
        assert sim.nodes[3].received == []
        assert sim.nodes[4].received == []

    def test_crashed_initiator_skips_on_start(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = AsynchronousSimulator(graph, faults=FaultInjector(crashes={1: 0}))
        sim.register_all(_relays(graph))
        assert sim.run() == 0  # nothing was ever sent


class TestLinkFaults:
    def test_fail_stop_link_drops_traffic(self, unit_line_graph):
        graph = unit_line_graph(4)
        injector = FaultInjector(link_down=[(2, 3, 0, None)])
        sim = AsynchronousSimulator(graph, faults=injector)
        sim.register_all(_relays(graph))
        sim.run()
        assert sim.nodes[2].received == [1]
        assert sim.nodes[3].received == []
        assert injector.event_log() == [[2, "drop", 2, 3]]

    def test_partition_heals_on_schedule(self, unit_line_graph):
        # Link (2,3) is down only for delivery times < 2; the sender keeps
        # no retransmission logic, so a relay chain dies — but a message
        # delivered at time >= 2 crosses fine.
        graph = unit_line_graph(3)
        injector = FaultInjector(link_down=[(1, 2, 0, 1)])
        sim = AsynchronousSimulator(graph, faults=injector)
        relays = _relays(graph)
        sim.register_all(relays)
        sim.start()
        # Re-send after the heal: delivery times 1, 2 are past the window.
        relays[0].send(2, "TOKEN", size_bits=2)
        sim.run()
        # First copy (delivered at time 1 >= end of window [0,1)) passes.
        assert sim.nodes[2].received == [1, 1]

    def test_sync_round_clock_drives_link_windows(self, unit_line_graph):
        graph = unit_line_graph(3)
        # Down during round 1 only (the round in which round-0 sends land).
        injector = FaultInjector(link_down=[(1, 2, 1, 2)])
        sim = SynchronousSimulator(graph, faults=injector)
        sim.register_all(_pingers(graph))
        sim.run()
        assert sim.nodes[2].received == []
        assert injector.event_log() == [[1, "drop", 1, 2]]


class TestLossyLinks:
    def test_drop_all_messages(self):
        graph = _star(5)
        injector = FaultInjector(drop=0.999999, seed=0)
        sim = SynchronousSimulator(graph, faults=injector)
        sim.register_all(_pingers(graph))
        sim.run()
        assert all(sim.nodes[i].received == [] for i in (2, 3, 4, 5))
        # Accounting still charges the sends: the wire cost happened.
        assert sim.accountant.messages == 4

    def test_duplicate_delivers_twice_and_charges_the_copy(self, unit_line_graph):
        graph = unit_line_graph(2)
        injector = FaultInjector(duplicate=0.999999, seed=1)
        sim = SynchronousSimulator(graph, faults=injector)
        sim.register_all(_pingers(graph))
        sim.run()
        # Original + duplicated copy, and the copy is never re-duplicated.
        assert sim.nodes[2].received == [("PING", 1), ("PING", 1)]
        assert sim.accountant.messages == 2
        assert [e.kind for e in injector.log] == ["duplicate"]

    def test_lossy_run_is_deterministic_per_seed(self, unit_line_graph):
        def counters(seed):
            graph = unit_line_graph(6)
            injector = FaultInjector(drop=0.3, duplicate=0.2, seed=seed)
            sim = AsynchronousSimulator(
                graph, scheduler=RandomScheduler(seed=9), faults=injector
            )
            sim.register_all(_relays(graph))
            sim.run()
            return dict(sim.accountant.summary()), injector.event_log()

        assert counters(5) == counters(5)

    def test_no_injector_means_no_fault_branch(self, unit_line_graph):
        graph = unit_line_graph(3)
        sim = SynchronousSimulator(graph)
        assert sim.faults is None
        sim.register_all(_pingers(graph))
        sim.run()
        assert sim.nodes[2].received == [("PING", 1)]
