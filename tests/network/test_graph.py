"""Unit tests for the dynamic weighted graph and the paper's encodings."""

import pytest

from repro.network.errors import GraphError
from repro.network.graph import Edge, Graph, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_key(3, 3)


class TestEdge:
    def test_requires_canonical_order(self):
        with pytest.raises(GraphError):
            Edge(5, 2, 1)

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphError):
            Edge(1, 2, -1)

    def test_other_endpoint(self):
        edge = Edge(2, 7, 3)
        assert edge.other(2) == 7
        assert edge.other(7) == 2
        with pytest.raises(GraphError):
            edge.other(4)

    def test_edge_number_is_concatenation_smallest_first(self):
        edge = Edge(2, 7, 3)
        assert edge.edge_number(id_bits=4) == (2 << 4) | 7

    def test_augmented_weight_prepends_weight(self):
        edge = Edge(2, 7, 3)
        assert edge.augmented_weight(id_bits=4) == (3 << 8) | (2 << 4) | 7

    def test_augmented_weights_distinct_for_equal_weights(self):
        a = Edge(1, 2, 5)
        b = Edge(1, 3, 5)
        assert a.augmented_weight(8) != b.augmented_weight(8)


class TestGraphBasics:
    def test_add_and_query(self):
        graph = Graph(id_bits=8)
        graph.add_edge(1, 2, 10)
        graph.add_edge(2, 3, 20)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge(2, 1)
        assert graph.get_edge(1, 2).weight == 10
        assert graph.neighbors(2) == [1, 3]
        assert graph.degree(2) == 2
        assert graph.degree(1) == 1

    def test_duplicate_edge_rejected(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        with pytest.raises(GraphError):
            graph.add_edge(2, 1, 5)

    def test_id_space_bounds(self):
        graph = Graph(id_bits=4)
        with pytest.raises(GraphError):
            graph.add_node(16)
        with pytest.raises(GraphError):
            graph.add_node(0)
        graph.add_node(15)
        assert graph.has_node(15)

    def test_remove_edge(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        removed = graph.remove_edge(2, 1)
        assert removed.weight == 1
        assert not graph.has_edge(1, 2)
        with pytest.raises(GraphError):
            graph.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.remove_node(2)
        assert not graph.has_node(2)
        assert graph.num_edges == 0
        assert graph.has_node(1) and graph.has_node(3)

    def test_set_weight(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.set_weight(1, 2, 42)
        assert graph.get_edge(1, 2).weight == 42
        with pytest.raises(GraphError):
            graph.set_weight(1, 3, 5)

    def test_incident_edges_sorted_by_neighbor(self):
        graph = Graph()
        graph.add_edge(2, 9, 1)
        graph.add_edge(2, 4, 2)
        graph.add_edge(1, 2, 3)
        others = [edge.other(2) for edge in graph.incident_edges(2)]
        assert others == [1, 4, 9]

    def test_len_contains_iter(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        assert len(graph) == 2
        assert 1 in graph and 3 not in graph
        assert list(graph) == [1, 2]


class TestGraphEncodings:
    def test_edge_number_roundtrip(self):
        graph = Graph(id_bits=6)
        graph.add_edge(3, 9, 4)
        number = graph.edge_number(9, 3)
        assert number == (3 << 6) | 9
        edge = graph.edge_from_number(number)
        assert edge is not None and edge.endpoints == (3, 9)

    def test_edge_from_number_unknown(self):
        graph = Graph(id_bits=6)
        graph.add_edge(3, 9, 4)
        assert graph.edge_from_number((1 << 6) | 2) is None
        assert graph.edge_from_number(0) is None

    def test_augmented_weight_roundtrip(self):
        graph = Graph(id_bits=6)
        graph.add_edge(3, 9, 4)
        graph.add_edge(2, 9, 4)
        for edge in graph.edges():
            aug = graph.augmented_weight(edge.u, edge.v)
            assert graph.edge_from_augmented_weight(aug) == edge

    def test_augmented_weight_mismatch_returns_none(self):
        graph = Graph(id_bits=6)
        graph.add_edge(3, 9, 4)
        wrong = (5 << 12) | graph.edge_number(3, 9)
        assert graph.edge_from_augmented_weight(wrong) is None

    def test_max_statistics(self):
        graph = Graph(id_bits=6)
        assert graph.max_edge_number() == 0
        assert graph.max_weight() == 0
        graph.add_edge(1, 2, 7)
        graph.add_edge(5, 6, 3)
        assert graph.max_weight() == 7
        assert graph.max_edge_number() == (5 << 6) | 6
        assert graph.max_augmented_weight() == (7 << 12) | (1 << 6) | 2


class TestGraphStructure:
    def test_connected_components(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(3, 4, 1)
        graph.add_node(5)
        components = graph.connected_components()
        assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4], [5]]
        assert not graph.is_connected()

    def test_is_connected(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 1)
        assert graph.is_connected()

    def test_subgraph(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 2)
        graph.add_edge(1, 3, 3)
        sub = graph.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.get_edge(1, 2).weight == 1

    def test_copy_is_independent(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        dup = graph.copy()
        dup.remove_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not dup.has_edge(1, 2)

    def test_total_weight(self):
        graph = Graph()
        graph.add_edge(1, 2, 3)
        graph.add_edge(2, 3, 4)
        assert graph.total_weight() == 7


class TestIncidentCacheInvalidation:
    """Single-edge mutations must only drop the touched nodes' entries.

    A whole-cache flush per mutation made every repair step rebuild the
    incident arrays of all n nodes; the fine-grained invalidation in
    ``Graph._note_mutation`` keeps untouched nodes' tuples alive across a
    one-edge change (checked by object identity, which is what makes repair
    workloads O(degree) instead of O(n) per update on the fast path).
    """

    def build(self):
        graph = Graph(id_bits=8)
        for u, v, w in [(1, 2, 5), (2, 3, 6), (3, 4, 7), (4, 5, 8), (1, 5, 9)]:
            graph.add_edge(u, v, w)
        return graph

    def test_single_edge_mutation_keeps_other_entries(self):
        graph = self.build()
        before = {node: graph.incident_arrays(node) for node in graph.nodes()}
        graph.set_weight(2, 3, 60)  # remove + add: touches only nodes 2 and 3
        for node in (1, 4, 5):
            assert graph.incident_arrays(node) is before[node]
        for node in (2, 3):
            fresh = graph.incident_arrays(node)
            assert fresh is not before[node]
            assert 60 in {edge.weight for edge in fresh.edges}

    def test_consecutive_mutations_each_evict_their_endpoints(self):
        # _note_mutation keeps the cache version in sync, so a *sequence*
        # of single-edge mutations still only evicts the union of the
        # touched endpoints — node 5 is untouched by either removal.
        graph = self.build()
        before = {node: graph.incident_arrays(node) for node in graph.nodes()}
        graph.remove_edge(1, 2)
        graph.remove_edge(3, 4)
        assert graph.incident_arrays(5) is before[5]
        for node in (1, 2, 3, 4):
            assert graph.incident_arrays(node) is not before[node]
        assert len(graph.incident_arrays(1).edges) == 1

    def test_version_skew_flushes_whole_cache(self):
        # The safety net: a version bump that bypassed _note_mutation (a
        # subclass, say) makes fine-grained eviction unsound, so the next
        # notification must flush everything.
        graph = self.build()
        before = {node: graph.incident_arrays(node) for node in graph.nodes()}
        graph._version += 2
        graph._note_mutation(2, 3)
        for node in graph.nodes():
            assert graph.incident_arrays(node) is not before[node]

    def test_remove_node_invalidates_only_its_neighborhood(self):
        graph = self.build()
        graph.add_edge(2, 4, 10)  # give node 4 a neighbor outside the cycle
        before = {node: graph.incident_arrays(node) for node in graph.nodes()}
        graph.remove_node(1)  # touches 1 and its neighbors 2, 5
        for node in (3, 4):
            assert graph.incident_arrays(node) is before[node]
        for node in (2, 5):
            assert graph.incident_arrays(node) is not before[node]

    def test_cached_arrays_stay_correct_after_partial_drop(self):
        graph = self.build()
        for node in graph.nodes():
            graph.incident_arrays(node)
        graph.set_weight(4, 5, 80)
        for node in graph.nodes():
            arrays = graph.incident_arrays(node)
            edges = graph.incident_edges(node)
            assert arrays.edges == tuple(edges)
            assert arrays.numbers == tuple(
                edge.edge_number(graph.id_bits) for edge in edges
            )
