"""Unit tests for tree leader election and stalled-election cycle detection."""

import pytest

from repro.network.accounting import MessageAccountant
from repro.network.errors import ForestError
from repro.network.fragments import SpanningForest
from repro.network.graph import Graph
from repro.network.leader_election import detect_cycle, elect_leader


def _path_forest(n):
    graph = Graph()
    for i in range(1, n):
        graph.add_edge(i, i + 1, 1)
    forest = SpanningForest(graph, marked=[(i, i + 1) for i in range(1, n)])
    return graph, forest


def _star_forest(n):
    graph = Graph()
    for i in range(2, n + 1):
        graph.add_edge(1, i, 1)
    forest = SpanningForest(graph, marked=[(1, i) for i in range(2, n + 1)])
    return graph, forest


class TestElectLeader:
    def test_singleton(self):
        graph = Graph()
        graph.add_node(5)
        forest = SpanningForest(graph)
        result = elect_leader(forest, {5})
        assert result.leader == 5
        assert result.messages == 0

    def test_two_nodes_higher_id_wins(self):
        graph, forest = _path_forest(2)
        result = elect_leader(forest, {1, 2})
        assert result.leader == 2

    def test_odd_path_single_median(self):
        graph, forest = _path_forest(5)
        result = elect_leader(forest, {1, 2, 3, 4, 5})
        assert result.leader == 3

    def test_even_path_two_medians_higher_wins(self):
        graph, forest = _path_forest(4)
        result = elect_leader(forest, {1, 2, 3, 4})
        assert result.leader == 3

    def test_star_center_is_leader(self):
        graph, forest = _star_forest(6)
        result = elect_leader(forest, set(range(1, 7)))
        assert result.leader == 1

    def test_message_count_linear_in_size(self):
        graph, forest = _path_forest(9)
        result = elect_leader(forest, set(range(1, 10)), announce=True)
        # saturation <= n messages, announce = n-1 messages
        assert result.messages <= 2 * 9

    def test_accountant_is_charged(self):
        graph, forest = _path_forest(5)
        acct = MessageAccountant()
        result = elect_leader(forest, {1, 2, 3, 4, 5}, accountant=acct)
        assert acct.messages == result.messages
        assert acct.rounds == result.rounds

    def test_without_announce_is_cheaper(self):
        graph, forest = _path_forest(7)
        with_announce = elect_leader(forest, set(range(1, 8)), announce=True)
        without = elect_leader(forest, set(range(1, 8)), announce=False)
        assert without.messages < with_announce.messages

    def test_rejects_cyclic_component(self):
        graph = Graph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 3, 1)
        graph.add_edge(1, 3, 1)
        forest = SpanningForest(graph, marked=[(1, 2), (2, 3), (1, 3)])
        with pytest.raises(ForestError):
            elect_leader(forest, {1, 2, 3})

    def test_leader_is_deterministic(self):
        graph, forest = _path_forest(6)
        leaders = {elect_leader(forest, set(range(1, 7))).leader for _ in range(3)}
        assert len(leaders) == 1


class TestDetectCycle:
    def test_tree_has_no_cycle(self):
        graph, forest = _path_forest(5)
        result = detect_cycle(forest, {1, 2, 3, 4, 5})
        assert not result.has_cycle
        assert result.leader is not None

    def test_pure_cycle_detected(self):
        graph = Graph()
        edges = [(1, 2), (2, 3), (3, 4), (1, 4)]
        for u, v in edges:
            graph.add_edge(u, v, 1)
        forest = SpanningForest(graph, marked=edges)
        result = detect_cycle(forest, {1, 2, 3, 4})
        assert result.has_cycle
        assert result.cycle_nodes == [1, 2, 3, 4]
        assert result.leader is None

    def test_cycle_with_tail(self):
        graph = Graph()
        cycle = [(1, 2), (2, 3), (1, 3)]
        for u, v in cycle:
            graph.add_edge(u, v, 1)
        graph.add_edge(3, 4, 1)
        graph.add_edge(4, 5, 1)
        forest = SpanningForest(graph, marked=cycle + [(3, 4), (4, 5)])
        result = detect_cycle(forest, {1, 2, 3, 4, 5})
        assert result.cycle_nodes == [1, 2, 3]
        # the tail nodes still sent their saturation messages
        assert result.messages >= 2

    def test_singleton_component(self):
        graph = Graph()
        graph.add_node(9)
        forest = SpanningForest(graph)
        result = detect_cycle(forest, {9})
        assert not result.has_cycle
        assert result.leader == 9
