"""Differential fuzzing for the KKT reproduction.

The curated test grids pin correctness at ~1000 hand-picked points; this
package *generates* scenarios adversarially across the whole
``GraphSpec × WorkloadSpec × ScheduleSpec × FaultSpec`` space and checks
every registered algorithm against the paper's own ground truth — the
sequential MST and its cut/cycle certificates — plus the reproduction's
standing guarantees (fast path == reference path, parallel == serial,
provenance in every result).

The pieces
----------
:mod:`~repro.fuzz.specgen`
    Seeded random generation of valid experiment specs, with registry
    introspection so new workloads and fault programs are fuzzed
    automatically.
:mod:`~repro.fuzz.oracles`
    The pluggable oracle stack (differential, fastpath, determinism,
    provenance) over a shared per-case run cache.
:mod:`~repro.fuzz.shrink`
    A delta-debugging shrinker that reduces a failing spec to a minimal
    reproducer (drop axes, fewer nodes, shorter streams, simpler schedule).
:mod:`~repro.fuzz.corpus`
    The JSON corpus of minimized reproducers, replayable byte-for-byte.
:mod:`~repro.fuzz.engine`
    :class:`FuzzCampaign`, which wires it all together — also exposed as
    the ``repro fuzz run / replay / corpus`` CLI.

>>> from repro.fuzz import FuzzCampaign
>>> campaign = FuzzCampaign(budget=5, seed=0)
>>> report = campaign.run()
>>> report["violation_count"]
0
"""

from .corpus import CORPUS_VERSION, Corpus, CorpusEntry
from .engine import REPORT_VERSION, FuzzCampaign, replay_entry, report_to_json
from .oracles import (
    ORACLE_FACTORIES,
    CaseContext,
    DeterminismOracle,
    DifferentialOracle,
    FastpathOracle,
    ProvenanceOracle,
    Violation,
    default_algorithms,
    default_oracles,
    make_oracles,
    restore_final_state,
    run_recorded,
)
from .shrink import ShrinkOutcome, shrink_spec
from .specgen import SpecGenerator, SpecSpace

__all__ = [
    "CORPUS_VERSION",
    "CaseContext",
    "Corpus",
    "CorpusEntry",
    "DeterminismOracle",
    "DifferentialOracle",
    "FastpathOracle",
    "FuzzCampaign",
    "ORACLE_FACTORIES",
    "ProvenanceOracle",
    "REPORT_VERSION",
    "ShrinkOutcome",
    "SpecGenerator",
    "SpecSpace",
    "Violation",
    "default_algorithms",
    "default_oracles",
    "make_oracles",
    "replay_entry",
    "report_to_json",
    "restore_final_state",
    "run_recorded",
    "shrink_spec",
]
