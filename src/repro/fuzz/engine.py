"""The fuzz campaign: generate specs, run the oracle stack, shrink failures.

:class:`FuzzCampaign` wires the subsystem together: a seeded
:class:`~repro.fuzz.specgen.SpecGenerator` produces ``budget`` random
scenarios, each is examined by the oracle stack through a shared
:class:`~repro.fuzz.oracles.CaseContext`, every violation is delta-debugged
with :func:`~repro.fuzz.shrink.shrink_spec` down to a minimal reproducer,
and the reproducers land in a :class:`~repro.fuzz.corpus.Corpus`.

Campaigns are deterministic end to end: the same seed, budget and
configuration produce byte-identical report and corpus JSON (wall-clock
times never enter either), which is what lets CI compare two invocations
and lets a teammate regenerate any corpus entry from its campaign
coordinates alone.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..network.errors import AlgorithmError
from ..api import get_runner
from .corpus import Corpus, CorpusEntry
from .oracles import (
    CaseContext,
    Violation,
    default_algorithms,
    make_oracles,
)
from .shrink import ShrinkOutcome, shrink_spec
from .specgen import SpecGenerator, SpecSpace

__all__ = ["FuzzCampaign", "REPORT_VERSION", "report_to_json", "replay_entry"]

REPORT_VERSION = 1


def report_to_json(report: Dict[str, Any]) -> str:
    """Canonical report JSON: sorted keys, two-space indent, newline."""
    import json

    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _examine(oracle: Any, spec, context: CaseContext) -> List[Violation]:
    """Run one oracle defensively: a crash *is* a finding, not an abort."""
    try:
        return list(oracle.examine(spec, context))
    except AlgorithmError as exc:
        return [Violation(oracle.name, f"oracle raised AlgorithmError: {exc}")]
    except Exception as exc:  # noqa: BLE001 - fuzzing must survive anything
        return [Violation(oracle.name, f"oracle crashed: {exc!r}")]


class FuzzCampaign:
    """One seeded fuzzing run over ``budget`` random experiment specs.

    Parameters
    ----------
    budget:
        Number of specs to generate and examine.
    seed:
        Campaign seed — drives spec generation and nothing else.
    algorithms:
        Algorithms the oracles exercise (default: the whole registry).
    oracles:
        Oracle names from :data:`~repro.fuzz.oracles.ORACLE_FACTORIES`
        (default: the full stack).  Instantiated oracle objects are also
        accepted, which is how tests plant deliberately buggy oracles.
    space:
        The sampled :class:`SpecSpace` (default: the standard small region).
    parallel_every:
        Every Nth case additionally runs the whole case through a
        two-worker experiment engine and compares it against the serial
        engine (``0`` disables the cross-process check).
    shrink:
        Delta-debug failing specs to minimal reproducers (on by default;
        campaigns that only want detection can turn it off).
    progress:
        Optional callable receiving one line per progress event.
    """

    def __init__(
        self,
        budget: int = 100,
        seed: int = 0,
        algorithms: Optional[Sequence[str]] = None,
        oracles: Optional[Sequence[Any]] = None,
        space: Optional[SpecSpace] = None,
        parallel_every: int = 25,
        shrink: bool = True,
        min_nodes: int = 3,
        max_shrink_attempts: int = 250,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if budget < 1:
            raise AlgorithmError("a fuzz campaign needs a budget of at least 1")
        if parallel_every < 0:
            raise AlgorithmError("parallel_every must be >= 0 (0 disables it)")
        self.budget = budget
        self.seed = seed
        self.algorithms = list(algorithms) if algorithms else default_algorithms()
        for algorithm in self.algorithms:
            get_runner(algorithm)  # fail fast (and actionably) on typos
        self.oracles = self._resolve_oracles(oracles)
        self.space = space or SpecSpace()
        self.parallel_every = parallel_every
        self.shrink = shrink
        self.min_nodes = min_nodes
        self.max_shrink_attempts = max_shrink_attempts
        self.progress = progress
        self.corpus = Corpus()

    @staticmethod
    def _resolve_oracles(oracles: Optional[Sequence[Any]]) -> List[Any]:
        if oracles is None:
            return make_oracles(None)
        resolved: List[Any] = []
        names: List[str] = []
        for oracle in oracles:
            if isinstance(oracle, str):
                names.append(oracle)
            else:
                resolved.append(oracle)
        return make_oracles(names) + resolved if names else resolved

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _oracle_by_name(self, name: str) -> Any:
        for oracle in self.oracles:
            if oracle.name == name:
                return oracle
        raise AlgorithmError(f"no active oracle named {name!r}")

    def _still_fails(self, violation: Violation) -> Callable[[Any], bool]:
        """The shrink predicate: does the violated oracle still reject?"""
        oracle = self._oracle_by_name(violation.oracle)
        # A determinism violation may have come from the cross-process
        # check, which needs the full job list and check_parallel on to
        # reproduce; every other oracle shrinks faster on just the one
        # implicated algorithm.
        check_parallel = violation.oracle == "determinism"
        algorithms = (
            [violation.algorithm]
            if violation.algorithm and not check_parallel
            else list(self.algorithms)
        )

        def predicate(candidate) -> bool:
            context = CaseContext(candidate, algorithms, check_parallel=check_parallel)
            stats = getattr(oracle, "stats", None)
            before = dict(stats) if stats is not None else None
            try:
                found = _examine(oracle, candidate, context)
            finally:
                if before is not None:
                    # Shrink re-examinations must not inflate the campaign
                    # statistics published in the report.
                    stats.clear()
                    stats.update(before)
            if violation.algorithm is None:
                return bool(found)
            return any(v.algorithm in (None, violation.algorithm) for v in found)

        return predicate

    def _shrink(self, spec, violation: Violation) -> ShrinkOutcome:
        if not self.shrink:
            return ShrinkOutcome(spec=spec, attempts=0, accepted=())
        return shrink_spec(
            spec,
            self._still_fails(violation),
            min_nodes=self.min_nodes,
            max_attempts=self.max_shrink_attempts,
        )

    def _record(self, index: int, spec, violation: Violation) -> CorpusEntry:
        outcome = self._shrink(spec, violation)
        entry = CorpusEntry(
            oracle=violation.oracle,
            detail=violation.detail,
            algorithm=violation.algorithm,
            spec=spec.to_dict(),
            minimized=outcome.spec.to_dict(),
            campaign_seed=self.seed,
            case_index=index,
            shrink_attempts=outcome.attempts,
            shrink_steps=outcome.accepted,
        )
        if self.corpus.add(entry):
            self._emit(
                f"case {index}: {violation} -> minimized to "
                f"{outcome.spec.graph.nodes} nodes ({entry.id})"
            )
        return entry

    @staticmethod
    def _count(coverage: Dict[str, int], key: str) -> None:
        coverage[key] = coverage.get(key, 0) + 1

    def run(self) -> Dict[str, Any]:
        """Execute the campaign; returns the (deterministic) report dict."""
        generator = SpecGenerator(seed=self.seed, space=self.space)
        oracle_checks: Dict[str, int] = {oracle.name: 0 for oracle in self.oracles}
        coverage: Dict[str, Dict[str, int]] = {
            "densities": {},
            "weight_models": {},
            "workloads": {},
            "schedulers": {},
            "faults": {},
        }
        violation_records: List[Dict[str, Any]] = []
        for index in range(self.budget):
            spec = generator.generate()
            self._count(coverage["densities"], spec.graph.density)
            self._count(coverage["weight_models"], spec.graph.weight_model)
            self._count(
                coverage["workloads"],
                spec.workload.name if spec.workload else "<none>",
            )
            self._count(
                coverage["schedulers"],
                spec.schedule.scheduler if spec.schedule else "<none>",
            )
            self._count(
                coverage["faults"], spec.faults.name if spec.faults else "<none>"
            )
            check_parallel = (
                self.parallel_every > 0 and (index + 1) % self.parallel_every == 0
            )
            context = CaseContext(spec, self.algorithms, check_parallel=check_parallel)
            for oracle in self.oracles:
                found = _examine(oracle, spec, context)
                oracle_checks[oracle.name] += 1
                for violation in found:
                    entry = self._record(index, spec, violation)
                    violation_records.append(entry.to_dict())
            if (index + 1) % 25 == 0 or index + 1 == self.budget:
                self._emit(
                    f"{index + 1}/{self.budget} cases, "
                    f"{len(self.corpus)} distinct reproducer(s)"
                )
        violation_records.sort(key=lambda record: (record["id"], record["case_index"]))
        oracle_stats = {
            oracle.name: dict(getattr(oracle, "stats", {}))
            for oracle in self.oracles
            if getattr(oracle, "stats", None)
        }
        return {
            "version": REPORT_VERSION,
            "seed": self.seed,
            "budget": self.budget,
            "cases": self.budget,
            "algorithms": list(self.algorithms),
            "oracles": sorted(oracle.name for oracle in self.oracles),
            "space": asdict(self.space),
            "parallel_every": self.parallel_every,
            "oracle_checks": oracle_checks,
            "oracle_stats": oracle_stats,
            "axis_coverage": coverage,
            "violation_count": len(violation_records),
            "violations": violation_records,
        }


def replay_entry(
    entry: CorpusEntry, algorithms: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Re-run a corpus entry's oracle on its minimized spec.

    Returns the violations observed now — non-empty means the reproducer
    still fails (the bug is alive), empty means it has been fixed.
    Determinism entries replay against the full algorithm list with the
    cross-process check enabled, since that is the only way a parallel
    divergence can reproduce.
    """
    oracles = make_oracles([entry.oracle])
    spec = entry.minimized_spec()
    check_parallel = entry.oracle == "determinism"
    if algorithms is None:
        algorithms = (
            [entry.algorithm]
            if entry.algorithm and not check_parallel
            else default_algorithms()
        )
    context = CaseContext(spec, algorithms, check_parallel=check_parallel)
    return _examine(oracles[0], spec, context)
