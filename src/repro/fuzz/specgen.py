"""Seeded random generation of valid :class:`~repro.api.scenario.ExperimentSpec`s.

The curated test grids pin correctness at hand-picked points of the
``GraphSpec × WorkloadSpec × ScheduleSpec × FaultSpec`` space; the
:class:`SpecGenerator` samples the *whole* space instead.  Everything it
emits is a valid, buildable, JSON-round-trippable spec:

* the axes are discovered by **registry introspection** —
  :func:`~repro.api.scenario.list_workloads`,
  :func:`~repro.api.faults.list_faults` and
  :func:`~repro.network.scheduler.list_schedulers` — filtered through
  :func:`~repro.api.scenario.workload_required_params` /
  :func:`~repro.api.faults.fault_required_params`, so a newly registered
  workload or fault program is fuzzed automatically while programs that
  need un-guessable parameters (``trace-replay`` needs a ``path``) are
  skipped;
* every spec carries explicit seeds (graph always; workload/schedule/fault
  seeds are sometimes set, sometimes left to resolve against the graph
  seed — both paths are part of the contract being fuzzed);
* the ``default`` and ``adversarial`` weight models keep the paper's
  distinct-weight invariant; the ``uniform`` model deliberately breaks it,
  and the oracles relax exact-MST agreement to minimum-total-weight
  agreement on such graphs — the invariant is honored by *checking the
  right property*, not by avoiding the hard inputs.

Generation is fully deterministic: two generators built with the same seed
and :class:`SpecSpace` yield the identical spec sequence, which is what
makes fuzz campaigns, their reports and their corpora replayable
byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..api import (
    DENSITY_PROFILES,
    WEIGHT_MODELS,
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    ScheduleSpec,
    WorkloadSpec,
    fault_required_params,
    list_faults,
    list_workloads,
    workload_required_params,
)
from ..network.errors import AlgorithmError
from ..network.scheduler import list_schedulers

__all__ = ["SpecSpace", "SpecGenerator"]


#: Optional-parameter fuzzers for the built-in workloads and fault programs.
#: Unknown names simply fuzz with empty params (which every registered
#: generator must accept), so the table is an enrichment, not a gate.
_PARAM_FUZZERS: Dict[Tuple[str, str], Callable[[random.Random], Dict[str, Any]]] = {
    ("workload", "insert-heavy"): lambda rng: {
        "insert_fraction": rng.choice([0.5, 0.75, 0.9])
    },
    ("workload", "weight-ramp"): lambda rng: {"max_delta": rng.choice([2, 5, 10])},
    ("fault", "crash-leaves"): lambda rng: {
        "fraction": rng.choice([0.25, 0.5, 1.0])
    },
    ("fault", "link-storm"): lambda rng: {"count": rng.randint(1, 4)},
    ("fault", "lossy-uniform"): lambda rng: {
        "drop": rng.choice([0.02, 0.05, 0.15]),
        "duplicate": rng.choice([0.0, 0.1]),
    },
    ("fault", "partition-heal"): lambda rng: {
        "fraction": rng.choice([0.25, 0.4])
    },
    ("fault", "byz-corrupt"): lambda rng: {
        "count": rng.randint(1, 2),
        "rate": rng.choice([0.5, 1.0]),
    },
    ("fault", "byz-equivocate"): lambda rng: {"count": rng.randint(1, 2)},
    ("fault", "byz-replay"): lambda rng: {
        "count": rng.randint(1, 2),
        "rate": rng.choice([0.25, 0.5]),
    },
    ("fault", "byz-silent"): lambda rng: {"count": rng.randint(1, 2)},
}


@dataclass(frozen=True)
class SpecSpace:
    """The sampled region of the experiment-spec space.

    The defaults keep individual cases cheap (a few tens of nodes) while
    still crossing every density profile, weight model, registered workload,
    scheduler and fault program.  Probabilities are per-axis: an axis that
    is not drawn stays ``None``, so default-path behaviour (no workload, no
    schedule, fault-free) is fuzzed too.
    """

    min_nodes: int = 4
    max_nodes: int = 24
    densities: Tuple[str, ...] = tuple(sorted(DENSITY_PROFILES))
    weight_models: Tuple[str, ...] = tuple(WEIGHT_MODELS)
    min_updates: int = 1
    max_updates: int = 8
    workload_probability: float = 0.6
    schedule_probability: float = 0.45
    fault_probability: float = 0.45
    param_probability: float = 0.5
    explicit_seed_probability: float = 0.5
    seed_range: int = 2 ** 20

    def __post_init__(self) -> None:
        if self.min_nodes < 2:
            raise AlgorithmError("SpecSpace.min_nodes must be at least 2")
        if self.max_nodes < self.min_nodes:
            raise AlgorithmError("SpecSpace.max_nodes must be >= min_nodes")
        if self.min_updates < 1 or self.max_updates < self.min_updates:
            raise AlgorithmError("SpecSpace update bounds must satisfy 1 <= min <= max")


class SpecGenerator:
    """Deterministic random :class:`ExperimentSpec` source.

    >>> gen = SpecGenerator(seed=0)
    >>> spec = gen.generate()
    >>> ExperimentSpec.from_json(spec.to_json()) == spec
    True
    """

    def __init__(self, seed: int = 0, space: Optional[SpecSpace] = None) -> None:
        self.seed = seed
        self.space = space or SpecSpace()
        self._rng = random.Random(seed)
        # Introspect the registries once, in sorted order, so the sampled
        # axis lists are stable within a campaign.
        self.workloads: List[str] = [
            name for name in list_workloads() if not workload_required_params(name)
        ]
        self.faults: List[str] = [
            name
            for name in list_faults()
            if name != "none" and not fault_required_params(name)
        ]
        self.schedulers: List[str] = sorted(list_schedulers())

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _seed_for(self, rng: random.Random) -> Optional[int]:
        """An explicit axis seed, or ``None`` to resolve against the graph's."""
        if rng.random() < self.space.explicit_seed_probability:
            return rng.randrange(self.space.seed_range)
        return None

    def _params_for(self, kind: str, name: str, rng: random.Random) -> Dict[str, Any]:
        fuzzer = _PARAM_FUZZERS.get((kind, name))
        if fuzzer is None or rng.random() >= self.space.param_probability:
            return {}
        return fuzzer(rng)

    def _graph_spec(self, rng: random.Random) -> GraphSpec:
        space = self.space
        return GraphSpec(
            nodes=rng.randint(space.min_nodes, space.max_nodes),
            density=rng.choice(space.densities),
            weight_model=rng.choice(space.weight_models),
            seed=rng.randrange(space.seed_range),
        )

    def _workload_spec(self, rng: random.Random) -> Optional[WorkloadSpec]:
        if not self.workloads or rng.random() >= self.space.workload_probability:
            return None
        name = rng.choice(self.workloads)
        return WorkloadSpec(
            name=name,
            updates=rng.randint(self.space.min_updates, self.space.max_updates),
            seed=self._seed_for(rng),
            params=self._params_for("workload", name, rng),
        )

    def _schedule_spec(self, rng: random.Random) -> Optional[ScheduleSpec]:
        if not self.schedulers or rng.random() >= self.space.schedule_probability:
            return None
        scheduler = rng.choice(self.schedulers)
        seed = self._seed_for(rng) if scheduler == "random" else None
        # Occasionally pin a repair wave size so the grid also fuzzes the
        # batched-repair path through the spec itself (None = sequential).
        batch_size = rng.choice([None, None, None, 2, 3, 4])
        return ScheduleSpec(scheduler=scheduler, seed=seed, batch_size=batch_size)

    def _fault_spec(self, rng: random.Random) -> Optional[FaultSpec]:
        if not self.faults or rng.random() >= self.space.fault_probability:
            return None
        name = rng.choice(self.faults)
        return FaultSpec(
            name=name,
            seed=self._seed_for(rng),
            params=self._params_for("fault", name, rng),
        )

    def generate(self) -> ExperimentSpec:
        """The next random spec (advances the generator's stream)."""
        rng = self._rng
        return ExperimentSpec(
            graph=self._graph_spec(rng),
            workload=self._workload_spec(rng),
            schedule=self._schedule_spec(rng),
            faults=self._fault_spec(rng),
        )

    def stream(self, count: int) -> Iterator[ExperimentSpec]:
        """Yield ``count`` specs (a fuzz campaign's case list)."""
        for _ in range(count):
            yield self.generate()
