"""The pluggable oracle stack: what "correct" means for a fuzzed spec.

Each oracle examines one :class:`~repro.api.scenario.ExperimentSpec` through
a shared :class:`CaseContext` (which caches algorithm runs so the stack does
not re-execute them per oracle) and returns a list of :class:`Violation`
records — empty when the case passes.

Shipped oracles
---------------
``differential``
    Every registered algorithm must agree with the sequential baseline: the
    run's own checks must pass, and the final tree — shipped back via the
    runners' ``record_state`` snapshot — is independently re-verified with
    :func:`~repro.verify.mst_check.mst_difference` (exact agreement with
    Kruskal) *and* :func:`~repro.verify.certificates.check_mst_certificates`
    (cut/cycle certificates, which do not trust Kruskal either) on graphs
    whose weights stayed distinct; on pre-churned or duplicate-weight graphs
    agreement is relaxed to minimum total weight, mirroring the runners'
    documented semantics.  :func:`~repro.api.registry.algorithm_traits`
    supplies each algorithm's claimed invariant, so newly registered
    algorithms are checked at exactly the strength they declare.  Under an
    *adversarial* (Byzantine) fault program, algorithms without the
    ``byzantine_tolerant`` trait are flagged-not-failed: their divergence is
    the attack's expected outcome, counted in the oracle's stats rather than
    reported as a violation, while tolerant algorithms stay fully checked.
    Repair runners (those accepting ``repair_batch``) additionally run a
    forced-sequential and a batched-wave leg and must produce the same
    final forest — the batched-repair equality contract.
``fastpath``
    A deterministically chosen sample of algorithms is re-run under
    :func:`repro.fastpath.reference_path`; messages/bits/rounds/phases and
    all checks must be bit-identical to the fast-path run.
``determinism``
    Every algorithm is re-run in-process and must reproduce the identical
    result payload (wall time aside); on cases flagged by the campaign the
    whole case is additionally executed through a two-worker
    :class:`~repro.api.engine.ExperimentEngine` and compared against the
    serial engine, extending the parallel==serial guarantee to fuzzed specs.
``provenance``
    Structural consistency of the spec and its results: the spec survives a
    JSON round-trip, and every result records the workload/schedule/fault
    provenance the spec demanded (names match, fault seeds are resolved,
    active fault programs leave an event log, node counts line up).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api import (
    ExperimentEngine,
    ExperimentJob,
    ExperimentSpec,
    RunResult,
    algorithm_traits,
    derive_seed,
    fault_adversarial,
    get_runner,
    list_algorithms,
)
from ..fastpath import reference_path
from ..network.errors import AlgorithmError, ForestError
from ..network.fragments import SpanningForest
from ..network.graph import Graph
from ..verify import (
    check_mst_certificates,
    check_spanning_forest,
    is_minimum_weight_forest,
    mst_difference,
)

__all__ = [
    "Violation",
    "CaseContext",
    "DifferentialOracle",
    "FastpathOracle",
    "DeterminismOracle",
    "ProvenanceOracle",
    "ORACLE_FACTORIES",
    "default_algorithms",
    "default_oracles",
    "make_oracles",
    "restore_final_state",
    "run_recorded",
]


@dataclass(frozen=True)
class Violation:
    """One oracle failure on one spec (the fuzzer's unit of bad news)."""

    oracle: str
    detail: str
    algorithm: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "algorithm": self.algorithm,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        where = f" [{self.algorithm}]" if self.algorithm else ""
        return f"{self.oracle}{where}: {self.detail}"


def _accepts(runner: Any, option: str) -> bool:
    import inspect

    try:
        return option in inspect.signature(runner.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic runners
        return False


def run_recorded(algorithm: str, spec: ExperimentSpec) -> RunResult:
    """Run ``algorithm`` on ``spec``, asking for the final-state snapshot.

    ``record_state`` is forwarded only to runners that accept it (mirroring
    the CLI's signature-based option routing), so third-party runners
    without the snapshot hook still execute — their trees simply cannot be
    independently re-verified.
    """
    runner = get_runner(algorithm)
    options = {"record_state": True} if _accepts(runner, "record_state") else {}
    return runner.run(spec, **options)


def restore_final_state(result: RunResult) -> Optional[Tuple[Graph, SpanningForest]]:
    """Rebuild the final graph and tree from a ``record_state`` snapshot.

    Returns ``None`` when the result carries no snapshot.  The rebuilt graph
    contains exactly the recorded nodes and edges; note that edge *numbers*
    (insertion order) may differ from the live run, so verification against
    the snapshot must only rely on raw weights — which is precisely what the
    differential oracle does.
    """
    extra = result.extra
    if "tree_edges" not in extra or "graph_edges" not in extra:
        return None
    graph = Graph(id_bits=int(extra.get("graph_id_bits", 32)))
    for node in extra.get("graph_nodes", []):
        graph.add_node(int(node))
    for u, v, weight in extra["graph_edges"]:
        graph.add_edge(int(u), int(v), int(weight))
    marked = [(int(u), int(v)) for u, v in extra["tree_edges"]]
    return graph, SpanningForest(graph, marked=marked)


def _canonical(result: RunResult) -> str:
    """The result as canonical JSON with the nondeterministic wall time gone."""
    payload = result.to_dict()
    payload.pop("wall_time_s", None)
    return json.dumps(payload, sort_keys=True)


def _stable_digest(text: str) -> int:
    """A process-independent integer digest (``hash()`` is salted for str)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def _active_faults(spec: ExperimentSpec) -> bool:
    return spec.faults is not None and not spec.faults.is_none


class CaseContext:
    """Shared per-case state: one state-recorded run of each algorithm.

    Oracles pull results through :meth:`result` so the expensive first
    execution happens once no matter how many oracles inspect it.
    ``check_parallel`` is set by the campaign on the (sampled) cases where
    the determinism oracle should also spin up worker processes.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        algorithms: Sequence[str],
        check_parallel: bool = False,
    ) -> None:
        self.spec = spec
        self.algorithms = list(algorithms)
        self.check_parallel = check_parallel
        self._results: Dict[str, RunResult] = {}

    def result(self, algorithm: str) -> RunResult:
        if algorithm not in self._results:
            self._results[algorithm] = run_recorded(algorithm, self.spec)
        return self._results[algorithm]


# ---------------------------------------------------------------------- #
# the oracles
# ---------------------------------------------------------------------- #
class DifferentialOracle:
    """Cross-check every algorithm's tree against the sequential baseline.

    For Monte Carlo algorithms (``algorithm_traits(...)["monte_carlo"]``) a
    single failed run is *allowed* — the paper only bounds the failure
    probability by ``n^-c`` over the algorithm's coins.  A suspect case is
    therefore re-run ``retries`` times with independent ``algorithm_seed``
    values (and the error exponent boosted to ``retry_c``); only a failure
    that persists through every retry is a violation.  Random blips are
    counted in :attr:`stats` so campaigns stay honest about how often the
    allowed failure mode actually fired.

    Runners that accept ``repair_batch`` are additionally run twice more —
    once forced sequential (``repair_batch=0``) and once with a
    spec-derived wave size — and must land on the *same final forest*.
    That is the batched-repair contract: per-update counters are replaced
    by per-wave amortized accounting, but in MST mode the maintained tree
    is the unique minimum spanning forest of the final graph (augmented
    weights are always distinct), so the processing order cannot change
    the answer.  Monte Carlo repair runners get the same reseed-and-retry
    treatment on divergence.
    """

    name = "differential"

    def __init__(self, retries: int = 3, retry_c: float = 3.0) -> None:
        if retries < 1:
            raise AlgorithmError("the differential oracle needs at least 1 retry")
        self.retries = retries
        self.retry_c = retry_c
        self.stats: Dict[str, int] = {
            "monte_carlo_suspects": 0,
            "monte_carlo_blips": 0,
            "byzantine_flagged": 0,
            "batched_compared": 0,
            "batched_blips": 0,
        }

    def examine(self, spec: ExperimentSpec, context: CaseContext) -> List[Violation]:
        violations: List[Violation] = []
        faults_active = _active_faults(spec)
        byzantine = faults_active and fault_adversarial(spec.faults.name)
        for algorithm in context.algorithms:
            traits = algorithm_traits(algorithm)
            if faults_active and traits["may_fail_under_faults"]:
                # An incomplete tree under injected faults is the
                # experiment's finding, not a bug — nothing to cross-check.
                continue
            if byzantine and not traits["byzantine_tolerant"]:
                # Under an adversarial program a non-tolerant algorithm may
                # legitimately diverge — that is the attack working.  Flag
                # the casualty in stats; never trust it, never fail it.
                result = context.result(algorithm)
                if not all(result.checks.values()):
                    self.stats["byzantine_flagged"] += 1
                continue
            result = context.result(algorithm)
            failed = sorted(name for name, ok in result.checks.items() if not ok)
            if failed:
                retried = False
                if traits["monte_carlo"]:
                    blip = self._is_random_blip(spec, algorithm)
                    if blip:
                        continue
                    retried = blip is False  # None: no reseed hook, no retries ran
                violations.append(
                    Violation(
                        self.name,
                        f"runner checks failed: {failed}"
                        + (
                            f" (persistent across {self.retries} independent seeds)"
                            if retried
                            else ""
                        ),
                        algorithm,
                    )
                )
                continue
            state = restore_final_state(result)
            if state is None:
                continue
            graph, forest = state
            detail = self._verify_tree(
                graph, forest, traits["invariant"], pre_churned=spec.workload is not None
            )
            if detail is not None:
                violations.append(Violation(self.name, detail, algorithm))
        violations.extend(self._check_batched(spec, context, faults_active, byzantine))
        return violations

    def _check_batched(
        self,
        spec: ExperimentSpec,
        context: CaseContext,
        faults_active: bool,
        byzantine: bool,
    ) -> List[Violation]:
        """Batched waves must reach the same final forest as sequential.

        Applies to every algorithm whose runner accepts both ``repair_batch``
        and ``record_state``.  The wave size is derived from the spec digest
        (2–4) so the whole fuzz grid exercises different wave geometries
        deterministically.  Passing ``repair_batch=0`` explicitly forces the
        sequential leg even when ``REPRO_REPAIR_BATCH`` is set, so this
        check stays meaningful inside forced-batching CI legs.
        """
        violations: List[Violation] = []
        for algorithm in context.algorithms:
            runner = get_runner(algorithm)
            if not (_accepts(runner, "repair_batch") and _accepts(runner, "record_state")):
                continue
            traits = algorithm_traits(algorithm)
            if faults_active and traits["may_fail_under_faults"]:
                continue
            if byzantine and not traits["byzantine_tolerant"]:
                continue
            base = _stable_digest(spec.to_json() + algorithm) & 0x7FFFFFFF
            wave = 2 + base % 3
            self.stats["batched_compared"] += 1
            detail = self._batched_divergence(runner, spec, wave)
            if detail is None:
                continue
            retried = False
            if traits["monte_carlo"] and _accepts(runner, "algorithm_seed"):
                blip = False
                for attempt in range(self.retries):
                    seed = derive_seed(base, attempt)
                    if (
                        self._batched_divergence(
                            runner, spec, wave, seed=seed, c=self.retry_c
                        )
                        is None
                    ):
                        blip = True
                        break
                if blip:
                    self.stats["batched_blips"] += 1
                    continue
                retried = True
            violations.append(
                Violation(
                    self.name,
                    f"batched wave={wave} diverged from sequential: {detail}"
                    + (
                        f" (persistent across {self.retries} independent seeds)"
                        if retried
                        else ""
                    ),
                    algorithm,
                )
            )
        return violations

    @staticmethod
    def _batched_divergence(
        runner: Any,
        spec: ExperimentSpec,
        wave: int,
        seed: Optional[int] = None,
        c: Optional[float] = None,
    ) -> Optional[str]:
        """Run one sequential and one batched leg; describe any divergence."""
        options: Dict[str, Any] = {} if seed is None else {"algorithm_seed": seed}
        if c is not None and _accepts(runner, "c"):
            # Retry legs boost the error exponent like _is_random_blip does:
            # at tiny n the paper's n^-c bound is weak enough that unboosted
            # reseeds can all blip, misreporting chance as divergence.
            options["c"] = c
        sequential = runner.run(spec, record_state=True, repair_batch=0, **options)
        batched = runner.run(spec, record_state=True, repair_batch=wave, **options)
        if not all(sequential.checks.values()):
            # The algorithm itself failed on this spec — a Monte Carlo
            # casualty the main differential loop already polices (with
            # boosted-c reseeds).  Batching is only on trial for *diverging
            # from sequential*, and a failed sequential leg leaves no
            # trusted baseline to diverge from.
            return None
        failed = sorted(name for name, ok in batched.checks.items() if not ok)
        if failed:
            return f"batched run failed its own checks: {failed}"
        seq_graph = sorted(map(tuple, sequential.extra.get("graph_edges", [])))
        bat_graph = sorted(map(tuple, batched.extra.get("graph_edges", [])))
        if seq_graph != bat_graph:
            # Both legs replay the identical update stream, so even the raw
            # graphs must agree — a mismatch means coalescing lost an edge.
            return "final graphs differ"
        seq_tree = sorted(map(tuple, sequential.extra.get("tree_edges", [])))
        bat_tree = sorted(map(tuple, batched.extra.get("tree_edges", [])))
        if seq_tree != bat_tree:
            extra = [e for e in bat_tree if e not in seq_tree]
            missing = [e for e in seq_tree if e not in bat_tree]
            return f"final trees differ: extra={extra[:6]} missing={missing[:6]}"
        return None

    def _is_random_blip(self, spec: ExperimentSpec, algorithm: str) -> Optional[bool]:
        """Retry a suspect Monte Carlo failure with independent coins.

        Returns True — an allowed random failure, not a bug — as soon as any
        reseeded run passes all its checks; False when the failure survived
        every retry; None when the runner offers no reseed hook, so no
        retries ran at all.  The retry seeds derive from the spec digest, so
        campaigns stay deterministic.
        """
        self.stats["monte_carlo_suspects"] += 1
        runner = get_runner(algorithm)
        if not _accepts(runner, "algorithm_seed"):
            # Claims to be Monte Carlo but offers no way to reseed its
            # coins: nothing to retry, so the failure stands as reported.
            return None
        base = _stable_digest(spec.to_json()) & 0x7FFFFFFF
        options: Dict[str, Any] = {}
        if _accepts(runner, "c"):
            options["c"] = self.retry_c
        for attempt in range(self.retries):
            retry = runner.run(
                spec, algorithm_seed=derive_seed(base, attempt), **options
            )
            if retry.ok:
                self.stats["monte_carlo_blips"] += 1
                return True
        return False

    @staticmethod
    def _verify_tree(
        graph: Graph, forest: SpanningForest, invariant: str, pre_churned: bool
    ) -> Optional[str]:
        try:
            check_spanning_forest(forest)
        except ForestError as exc:
            return f"final tree is not a spanning forest: {exc}"
        if invariant != "minimum":
            return None
        weights = [edge.weight for edge in graph.edges()]
        distinct = len(weights) == len(set(weights))
        if distinct and not pre_churned:
            extra, missing = mst_difference(forest)
            if extra or missing:
                return (
                    "tree disagrees with the sequential MST: "
                    f"extra={sorted(extra)} missing={sorted(missing)}"
                )
            try:
                check_mst_certificates(forest)
            except ForestError as exc:
                return f"MST certificates rejected the tree: {exc}"
        elif not is_minimum_weight_forest(forest):
            return "tree weight exceeds the sequential minimum forest weight"
        return None


class FastpathOracle:
    """Fast-path counters must be bit-identical to the reference path."""

    name = "fastpath"

    def __init__(self, sample: int = 2) -> None:
        if sample < 1:
            raise AlgorithmError("the fastpath oracle needs a sample of at least 1")
        self.sample = sample

    def _sampled(self, spec: ExperimentSpec, algorithms: Sequence[str]) -> List[str]:
        if len(algorithms) <= self.sample:
            return list(algorithms)
        start = _stable_digest(spec.to_json()) % len(algorithms)
        return [
            algorithms[(start + offset) % len(algorithms)]
            for offset in range(self.sample)
        ]

    def examine(self, spec: ExperimentSpec, context: CaseContext) -> List[Violation]:
        violations: List[Violation] = []
        for algorithm in self._sampled(spec, context.algorithms):
            fast = context.result(algorithm)
            with reference_path():
                reference = run_recorded(algorithm, spec)
            if fast.counters() != reference.counters():
                violations.append(
                    Violation(
                        self.name,
                        f"counters diverged: fast={fast.counters()} "
                        f"reference={reference.counters()}",
                        algorithm,
                    )
                )
            elif fast.checks != reference.checks:
                violations.append(
                    Violation(
                        self.name,
                        f"checks diverged: fast={fast.checks} "
                        f"reference={reference.checks}",
                        algorithm,
                    )
                )
        return violations


class DeterminismOracle:
    """Same spec, same result — in-process, and (sampled) across processes."""

    name = "determinism"

    def examine(self, spec: ExperimentSpec, context: CaseContext) -> List[Violation]:
        violations: List[Violation] = []
        for algorithm in context.algorithms:
            first = context.result(algorithm)
            second = run_recorded(algorithm, spec)
            if _canonical(first) != _canonical(second):
                violations.append(
                    Violation(
                        self.name, "two serial runs produced different results", algorithm
                    )
                )
        if context.check_parallel and len(context.algorithms) > 1:
            violations.extend(self._parallel_check(spec, context))
        return violations

    def _parallel_check(
        self, spec: ExperimentSpec, context: CaseContext
    ) -> List[Violation]:
        jobs = [ExperimentJob(algorithm, spec) for algorithm in context.algorithms]
        serial = ExperimentEngine(jobs=1).run(jobs)
        parallel = ExperimentEngine(jobs=2).run(jobs)
        for algorithm, one, two in zip(context.algorithms, serial, parallel):
            if _canonical(one) != _canonical(two):
                return [
                    Violation(
                        self.name,
                        "parallel engine result diverged from the serial engine",
                        algorithm,
                    )
                ]
        return []


class ProvenanceOracle:
    """Specs round-trip and results record the scenario that produced them."""

    name = "provenance"

    def examine(self, spec: ExperimentSpec, context: CaseContext) -> List[Violation]:
        violations: List[Violation] = []
        restored = ExperimentSpec.from_json(spec.to_json())
        if restored != spec or hash(restored) != hash(spec):
            return [Violation(self.name, "spec does not survive a JSON round-trip")]
        for algorithm in context.algorithms:
            result = context.result(algorithm)
            detail = self._check_result(spec, result)
            if detail is not None:
                violations.append(Violation(self.name, detail, algorithm))
        return violations

    @staticmethod
    def _check_result(spec: ExperimentSpec, result: RunResult) -> Optional[str]:
        if result.spec != spec.graph:
            return "result lost the graph spec it ran on"
        if result.n != spec.graph.nodes:
            return f"result reports n={result.n} for a {spec.graph.nodes}-node spec"
        if spec.workload is not None:
            if result.workload is None or result.workload.name != spec.workload.name:
                return f"workload provenance lost (expected {spec.workload.name!r})"
        if spec.schedule is not None:
            if (
                result.schedule is None
                or result.schedule.scheduler != spec.schedule.scheduler
            ):
                return f"schedule provenance lost (expected {spec.schedule.scheduler!r})"
        if _active_faults(spec):
            if result.faults is None or result.faults.name != spec.faults.name:
                return f"fault provenance lost (expected {spec.faults.name!r})"
            if result.faults.seed is None:
                return "fault seed was not resolved (run is not replayable)"
            if "fault_events" not in result.extra:
                return "active fault program left no fault_events record"
        return None


#: name -> zero-argument factory for the shipped oracle stack.
ORACLE_FACTORIES = {
    "differential": DifferentialOracle,
    "fastpath": FastpathOracle,
    "determinism": DeterminismOracle,
    "provenance": ProvenanceOracle,
}


def default_oracles() -> List[Any]:
    """The full shipped stack, in deterministic order."""
    return [ORACLE_FACTORIES[name]() for name in sorted(ORACLE_FACTORIES)]


def make_oracles(names: Optional[Sequence[str]]) -> List[Any]:
    """Instantiate a named subset of the stack (``None`` = all of it)."""
    if names is None:
        return default_oracles()
    oracles = []
    for name in names:
        factory = ORACLE_FACTORIES.get(name)
        if factory is None:
            known = ", ".join(sorted(ORACLE_FACTORIES))
            raise AlgorithmError(f"unknown oracle {name!r}; registered oracles: {known}")
        oracles.append(factory())
    return oracles


def default_algorithms() -> List[str]:
    """Every registered algorithm, sorted (the differential fleet)."""
    return list_algorithms()
