"""Delta-debugging shrinker: reduce a failing spec to a minimal reproducer.

A fuzz violation on a 24-node, four-axis scenario is a lousy bug report.
:func:`shrink_spec` greedily simplifies the spec while a caller-supplied
``still_fails`` predicate keeps returning ``True`` — the classic ddmin loop
specialised to the structure of an :class:`~repro.api.scenario.ExperimentSpec`:

* drop whole axes first (faults, then schedule, then workload) — a
  reproducer without a fault program rules the fault model out entirely;
* then shrink the graph (fewer nodes: a halving ladder down to
  ``min_nodes``, then single decrements);
* then shorten the workload (halving the update count toward 1);
* finally simplify what remains (FIFO delivery, empty parameter dicts,
  ``sparse`` density, ``default`` weights).

Every candidate is validated before it is tried (a transformation that
produces an invalid spec is skipped, not an error), every accepted step
restarts the pass so earlier — more powerful — transformations get another
chance, and the whole loop is deterministic: same spec, same predicate,
same minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Tuple

from ..api import ExperimentSpec, ScheduleSpec
from ..network.errors import AlgorithmError

__all__ = ["ShrinkOutcome", "shrink_spec"]


@dataclass(frozen=True)
class ShrinkOutcome:
    """The result of a shrink run: the minimal spec plus an audit trail."""

    spec: ExperimentSpec
    attempts: int
    accepted: Tuple[str, ...]

    @property
    def shrunk(self) -> bool:
        return bool(self.accepted)


def _node_ladder(nodes: int, min_nodes: int) -> List[int]:
    """Candidate node counts, most aggressive first: min, halves, n-1."""
    ladder: List[int] = []
    if nodes > min_nodes:
        ladder.append(min_nodes)
        half = nodes // 2
        while half > min_nodes:
            ladder.append(half)
            half //= 2
        ladder.append(nodes - 1)
    seen = set()
    return [n for n in ladder if min_nodes <= n < nodes and not (n in seen or seen.add(n))]


def _candidates(
    spec: ExperimentSpec, min_nodes: int
) -> Iterator[Tuple[str, ExperimentSpec]]:
    """Ordered simplification candidates for one pass (lazily built)."""
    graph = spec.graph
    if spec.faults is not None:
        yield "drop-faults", replace(spec, faults=None)
    if spec.schedule is not None:
        yield "drop-schedule", replace(spec, schedule=None)
    if spec.workload is not None:
        yield "drop-workload", replace(spec, workload=None)
    for nodes in _node_ladder(graph.nodes, min_nodes):
        yield f"nodes={nodes}", replace(spec, graph=replace(graph, nodes=nodes))
    workload = spec.workload
    if workload is not None and workload.updates is not None and workload.updates > 1:
        for updates in dict.fromkeys([1, workload.updates // 2]):
            if 1 <= updates < workload.updates:
                yield (
                    f"updates={updates}",
                    replace(spec, workload=replace(workload, updates=updates)),
                )
    if workload is not None and workload.params:
        yield "workload-params={}", replace(
            spec, workload=replace(workload, params={})
        )
    schedule = spec.schedule
    if schedule is not None and (
        schedule.scheduler != "fifo" or schedule.params or schedule.seed is not None
    ):
        yield "schedule=fifo", replace(spec, schedule=ScheduleSpec(scheduler="fifo"))
    if spec.faults is not None and spec.faults.params:
        yield "fault-params={}", replace(
            spec, faults=replace(spec.faults, params={})
        )
    if graph.density != "sparse":
        yield "density=sparse", replace(spec, graph=replace(graph, density="sparse"))
    if graph.weight_model != "default":
        yield "weights=default", replace(
            spec, graph=replace(graph, weight_model="default", max_weight=None)
        )


def shrink_spec(
    spec: ExperimentSpec,
    still_fails: Callable[[ExperimentSpec], bool],
    min_nodes: int = 3,
    max_attempts: int = 250,
) -> ShrinkOutcome:
    """Greedily minimise ``spec`` while ``still_fails`` keeps returning True.

    ``still_fails`` is typically "re-run the violated oracle on the
    candidate"; it must treat a crash as a failure too, so a spec that
    makes the system raise keeps shrinking instead of aborting the loop.
    ``max_attempts`` bounds the total number of predicate evaluations, which
    bounds fuzz-campaign time on pathological cases.
    """
    attempts = 0
    accepted: List[str] = []
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for step, candidate in _candidates(current, min_nodes):
            if attempts >= max_attempts:
                break
            try:
                # Revalidate through the JSON round-trip: a transformation
                # that builds an invalid spec is skipped, not fatal.
                candidate = ExperimentSpec.from_dict(candidate.to_dict())
            except AlgorithmError:
                continue
            attempts += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = True
            if failing:
                current = candidate
                accepted.append(step)
                progress = True
                break
    return ShrinkOutcome(spec=current, attempts=attempts, accepted=tuple(accepted))
