"""The reproducer corpus: minimized failing specs, persisted as JSON.

Every oracle violation a fuzz campaign finds is shrunk and stored as a
:class:`CorpusEntry`: the original spec, the minimized reproducer, which
oracle (and algorithm) rejected it, and the campaign coordinates (seed and
case index) that regenerate it from scratch.  The corpus file is canonical
JSON — entries sorted by id, keys sorted, two-space indent, trailing newline
— so two identical campaigns write byte-identical corpora and a corpus diff
in review shows exactly the new reproducers.

File format (version 1)::

    {
      "version": 1,
      "entries": [
        {
          "id": "9f2c51f0e3a8",            // sha256 of (oracle, algorithm, minimized)
          "oracle": "differential",
          "algorithm": "kkt-mst",          // null for spec-level violations
          "detail": "tree disagrees ...",  // the violation message
          "campaign_seed": 0,
          "case_index": 17,
          "shrink_attempts": 23,
          "shrink_steps": ["drop-faults", "nodes=3"],
          "spec": { ... ExperimentSpec ... },       // as generated
          "minimized": { ... ExperimentSpec ... }   // the reproducer
        }
      ]
    }

``repro fuzz replay`` re-runs each entry's oracle on its minimized spec and
reports whether the failure still reproduces.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..api import ExperimentSpec
from ..api.canonical import short_hash
from ..network.errors import AlgorithmError

__all__ = ["CorpusEntry", "Corpus", "CORPUS_VERSION"]

CORPUS_VERSION = 1


def entry_id(oracle: str, algorithm: Optional[str], minimized: Mapping[str, Any]) -> str:
    """A stable 12-hex-digit id for a reproducer (dedup key).

    Built on the shared canonical-JSON content hash
    (:mod:`repro.api.canonical`), so ids written by earlier releases stay
    valid: the payload shape and rendering are unchanged.
    """
    return short_hash({"oracle": oracle, "algorithm": algorithm, "minimized": dict(minimized)})


@dataclass(frozen=True)
class CorpusEntry:
    """One minimized reproducer."""

    oracle: str
    detail: str
    spec: Dict[str, Any]
    minimized: Dict[str, Any]
    algorithm: Optional[str] = None
    campaign_seed: Optional[int] = None
    case_index: Optional[int] = None
    shrink_attempts: int = 0
    shrink_steps: Sequence[str] = ()

    @property
    def id(self) -> str:
        return entry_id(self.oracle, self.algorithm, self.minimized)

    def minimized_spec(self) -> ExperimentSpec:
        """The reproducer as a runnable spec."""
        return ExperimentSpec.from_dict(self.minimized)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "oracle": self.oracle,
            "algorithm": self.algorithm,
            "detail": self.detail,
            "campaign_seed": self.campaign_seed,
            "case_index": self.case_index,
            "shrink_attempts": self.shrink_attempts,
            "shrink_steps": list(self.shrink_steps),
            "spec": dict(self.spec),
            "minimized": dict(self.minimized),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CorpusEntry":
        for key in ("oracle", "detail", "spec", "minimized"):
            if key not in payload:
                raise AlgorithmError(f"corpus entry missing field {key!r}")
        return cls(
            oracle=payload["oracle"],
            detail=payload["detail"],
            spec=dict(payload["spec"]),
            minimized=dict(payload["minimized"]),
            algorithm=payload.get("algorithm"),
            campaign_seed=payload.get("campaign_seed"),
            case_index=payload.get("case_index"),
            shrink_attempts=int(payload.get("shrink_attempts", 0)),
            shrink_steps=tuple(payload.get("shrink_steps", ())),
        )


@dataclass
class Corpus:
    """An ordered, deduplicated set of reproducers with JSON persistence."""

    entries: List[CorpusEntry] = field(default_factory=list)

    def add(self, entry: CorpusEntry) -> bool:
        """Add a reproducer; returns False when its id is already present."""
        if any(existing.id == entry.id for existing in self.entries):
            return False
        self.entries.append(entry)
        return True

    def get(self, entry_id_: str) -> CorpusEntry:
        for entry in self.entries:
            if entry.id == entry_id_:
                return entry
        known = ", ".join(entry.id for entry in self.entries) or "<empty corpus>"
        raise AlgorithmError(f"no corpus entry {entry_id_!r}; known entries: {known}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(sorted(self.entries, key=lambda entry: entry.id))

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CORPUS_VERSION,
            "entries": [entry.to_dict() for entry in self],
        }

    def to_json(self) -> str:
        """Canonical form: sorted entries, sorted keys, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return os.fspath(path)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Corpus":
        if not isinstance(payload, Mapping) or "entries" not in payload:
            raise AlgorithmError("a corpus file needs an 'entries' section")
        version = payload.get("version", CORPUS_VERSION)
        if version != CORPUS_VERSION:
            raise AlgorithmError(
                f"unsupported corpus version {version!r} (this build reads "
                f"version {CORPUS_VERSION})"
            )
        corpus = cls()
        for raw in payload["entries"]:
            corpus.add(CorpusEntry.from_dict(raw))
        return corpus

    @classmethod
    def load(cls, path: str) -> "Corpus":
        """Load a corpus with the CLI error contract (actionable messages)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise AlgorithmError(f"corpus file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise AlgorithmError(f"invalid corpus file {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise AlgorithmError(f"corpus file {path} must hold a JSON object")
        return cls.from_dict(payload)
