"""ASCII table rendering for the experiment harness.

Every benchmark prints a table in the same format so EXPERIMENTS.md can be
assembled mechanically: a title line, a header row, aligned columns, and an
optional notes block tying the measured columns back to the paper's bound.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_cell", "ExperimentTable"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


class ExperimentTable:
    """Accumulate rows for one experiment and render / print them."""

    def __init__(self, experiment_id: str, title: str, headers: Sequence[str]) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Cell]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text

    def print(self) -> None:  # pragma: no cover - console side effect
        print()
        print(self.render())
        print()
