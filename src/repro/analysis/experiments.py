"""Experiment-running utilities shared by the benchmark harness and the CLI.

The benchmark modules under ``benchmarks/`` own the experiment *definitions*
(which workload, which sweep); this module owns the reusable mechanics:

* :class:`MeasurementSeries` — a size-indexed series of measurements with
  normalisation against the bounds of :mod:`repro.analysis.complexity`;
* :func:`run_construction_measurement` — one (n, density) construction run of
  KKT MST/ST plus the matching baseline, returning all the counters the
  experiment tables report;
* :func:`estimate_crossover` — given two measured series (e.g. Build-ST and
  flooding), estimate the input size at which the first drops below the
  second by log-log extrapolation — used to report "where the o(m) crossover
  falls" when it lies outside the swept range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api.spec import GraphSpec
from ..baselines.flooding_st import flooding_spanning_tree
from ..baselines.ghs import GHSBuildMST
from ..core.build_mst import BuildMST
from ..core.build_st import BuildST
from ..core.config import AlgorithmConfig
from ..network.errors import AlgorithmError
from .complexity import bound_value

__all__ = [
    "MeasurementSeries",
    "ConstructionMeasurement",
    "run_construction_measurement",
    "estimate_crossover",
    "geometric_sizes",
]


def geometric_sizes(start: int, stop: int, factor: float = 1.5) -> List[int]:
    """Geometrically spaced problem sizes in [start, stop] (inclusive-ish)."""
    if start < 1 or stop < start:
        raise AlgorithmError("need 1 <= start <= stop")
    sizes = [start]
    current = float(start)
    while True:
        current *= factor
        value = int(round(current))
        if value > stop:
            break
        if value != sizes[-1]:
            sizes.append(value)
    if sizes[-1] != stop:
        sizes.append(stop)
    return sizes


@dataclass
class MeasurementSeries:
    """A named series of measurements indexed by (n, m)."""

    name: str
    sizes: List[Tuple[int, int]] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, n: int, m: int, value: float) -> None:
        self.sizes.append((n, m))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def normalised_by(self, bound: str) -> List[float]:
        """Pointwise value / bound(n, m)."""
        return [
            value / max(bound_value(bound, n, m), 1e-12)
            for (n, m), value in zip(self.sizes, self.values)
        ]

    def ratio_to(self, other: "MeasurementSeries") -> List[float]:
        if len(self) != len(other):
            raise AlgorithmError("series lengths differ")
        return [
            mine / theirs if theirs else float("inf")
            for mine, theirs in zip(self.values, other.values)
        ]


@dataclass
class ConstructionMeasurement:
    """All the counters one construction experiment row needs."""

    n: int
    m: int
    kkt_messages: int
    kkt_bits: int
    kkt_rounds: int
    kkt_phases: int
    baseline_messages: int
    baseline_name: str

    @property
    def kkt_over_m(self) -> float:
        return self.kkt_messages / max(self.m, 1)

    @property
    def baseline_over_m(self) -> float:
        return self.baseline_messages / max(self.m, 1)

    def kkt_over_bound(self, bound: str) -> float:
        return self.kkt_messages / max(bound_value(bound, self.n, self.m), 1e-12)


def run_construction_measurement(
    n: int,
    kind: str = "mst",
    density: str = "complete",
    seed: int = 1,
    c: float = 1.0,
) -> ConstructionMeasurement:
    """Run one KKT construction plus its baseline and collect the counters."""
    if kind not in ("mst", "st"):
        raise AlgorithmError("kind must be 'mst' or 'st'")
    spec = GraphSpec(nodes=n, density=density, seed=seed)
    graph = spec.build()
    config = AlgorithmConfig(n=n, seed=seed, c=c)
    builder = BuildMST(graph, config=config) if kind == "mst" else BuildST(graph, config=config)
    report = builder.run()

    baseline_graph = spec.build()
    if kind == "mst":
        baseline_messages = GHSBuildMST(baseline_graph).run().messages
        baseline_name = "ghs"
    else:
        _, acct = flooding_spanning_tree(baseline_graph)
        baseline_messages = acct.messages
        baseline_name = "flooding"

    return ConstructionMeasurement(
        n=n,
        m=graph.num_edges,
        kkt_messages=report.messages,
        kkt_bits=report.bits,
        kkt_rounds=report.rounds_parallel,
        kkt_phases=report.phases,
        baseline_messages=baseline_messages,
        baseline_name=baseline_name,
    )


def estimate_crossover(
    first: MeasurementSeries,
    second: MeasurementSeries,
    size_axis: str = "n",
) -> Optional[float]:
    """Estimate the size at which ``first`` drops below ``second``.

    Both series must be measured at the same sizes.  If the crossover happens
    inside the measured range, the first measured size where
    ``first < second`` is returned.  Otherwise both series are fitted as
    power laws (``value ~ a · size^b`` by least squares in log-log space) and
    the analytic intersection is returned; ``None`` if the fitted exponents
    never cross (first grows at least as fast as second).
    """
    if len(first) != len(second) or len(first) < 2:
        raise AlgorithmError("need two series of equal length >= 2")
    axis_index = {"n": 0, "m": 1}[size_axis]
    sizes = [size[axis_index] for size in first.sizes]
    if sizes != [size[axis_index] for size in second.sizes]:
        raise AlgorithmError("series were measured at different sizes")

    for size, a, b in zip(sizes, first.values, second.values):
        if a < b:
            return float(size)

    def fit(values: Sequence[float]) -> Tuple[float, float]:
        xs = [math.log(size) for size in sizes]
        ys = [math.log(max(value, 1e-9)) for value in values]
        n_points = len(xs)
        mean_x = sum(xs) / n_points
        mean_y = sum(ys) / n_points
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x == 0:
            raise AlgorithmError("degenerate size axis")
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        intercept = mean_y - slope * mean_x
        return slope, intercept

    slope_a, intercept_a = fit(first.values)
    slope_b, intercept_b = fit(second.values)
    if slope_a >= slope_b:
        return None
    log_size = (intercept_a - intercept_b) / (slope_b - slope_a)
    return math.exp(log_size)
