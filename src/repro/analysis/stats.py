"""Small statistics helpers for aggregating runs over random seeds."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..network.errors import AlgorithmError

__all__ = ["Summary", "summarize", "mean", "stdev", "median", "percentile"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise AlgorithmError("mean of an empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100])."""
    if not values:
        raise AlgorithmError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise AlgorithmError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass
class Summary:
    """Mean / spread summary of a list of measurements."""

    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    maximum: float
    p90: float

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation half-width of the mean's confidence interval."""
        if self.count == 0:
            return 0.0
        return z * self.stdev / math.sqrt(self.count)


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (must be non-empty)."""
    if not values:
        raise AlgorithmError("cannot summarize an empty sequence")
    values = list(values)
    return Summary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        minimum=min(values),
        median=median(values),
        maximum=max(values),
        p90=percentile(values, 90.0),
    )
