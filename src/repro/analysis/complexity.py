"""Fitting measured costs against the paper's asymptotic bounds.

The benchmarks report, for each input size, both the measured message count
and the value of the claimed bound (e.g. ``n log² n / log log n``); the
functions here compute the implied constants and check whether the ratio
*measured / bound* stays flat (the empirical signature of matching the
asymptotic shape) while *measured / m* shrinks (the ``o(m)`` claim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..network.errors import AlgorithmError

__all__ = [
    "BOUNDS",
    "bound_value",
    "FitResult",
    "fit_constant",
    "ratio_series",
    "is_sublinear_in",
]


def _safe_log2(x: float) -> float:
    return math.log2(max(x, 2.0))


#: The complexity bounds quoted in Theorems 1.1 / 1.2, keyed by a short name.
BOUNDS: Dict[str, Callable[[int, int], float]] = {
    "n": lambda n, m: float(n),
    "m": lambda n, m: float(m),
    "n_log_n": lambda n, m: n * _safe_log2(n),
    "n_log2_n_over_loglog_n": lambda n, m: n
    * _safe_log2(n) ** 2
    / max(_safe_log2(_safe_log2(n)), 1.0),
    "n_log_n_over_loglog_n": lambda n, m: n
    * _safe_log2(n)
    / max(_safe_log2(_safe_log2(n)), 1.0),
    "log_n_over_loglog_n": lambda n, m: _safe_log2(n)
    / max(_safe_log2(_safe_log2(n)), 1.0),
    "m_plus_n_log_n": lambda n, m: m + n * _safe_log2(n),
}


def bound_value(name: str, n: int, m: int) -> float:
    """Evaluate the named bound at ``(n, m)``."""
    try:
        return BOUNDS[name](n, m)
    except KeyError as exc:
        raise AlgorithmError(f"unknown bound {name!r}; known: {sorted(BOUNDS)}") from exc


@dataclass
class FitResult:
    """Constant-fit of measurements against a bound."""

    bound: str
    constants: List[float]
    mean_constant: float
    max_constant: float
    min_constant: float

    @property
    def spread(self) -> float:
        """max/min ratio of the implied constants — close to 1 means a good fit."""
        if self.min_constant == 0:
            return float("inf")
        return self.max_constant / self.min_constant


def fit_constant(
    sizes: Sequence[Tuple[int, int]], measurements: Sequence[float], bound: str
) -> FitResult:
    """Implied constants ``measurement / bound(n, m)`` for each data point."""
    if len(sizes) != len(measurements):
        raise AlgorithmError("sizes and measurements must have equal length")
    if not sizes:
        raise AlgorithmError("at least one data point is required")
    constants = [
        measurement / max(bound_value(bound, n, m), 1e-12)
        for (n, m), measurement in zip(sizes, measurements)
    ]
    return FitResult(
        bound=bound,
        constants=constants,
        mean_constant=sum(constants) / len(constants),
        max_constant=max(constants),
        min_constant=min(constants),
    )


def ratio_series(
    measurements: Sequence[float], references: Sequence[float]
) -> List[float]:
    """Pointwise ``measurement / reference`` (0 when the reference is 0)."""
    if len(measurements) != len(references):
        raise AlgorithmError("series must have equal length")
    return [
        (measurement / reference) if reference else 0.0
        for measurement, reference in zip(measurements, references)
    ]


def is_sublinear_in(
    measurements: Sequence[float],
    references: Sequence[float],
    shrink_factor: float = 0.75,
) -> bool:
    """Empirical o(·) check: does measurement/reference shrink along the series?

    Returns True iff the last ratio is at most ``shrink_factor`` times the
    first ratio — i.e. the measured quantity is growing strictly slower than
    the reference along the sampled sizes.
    """
    ratios = ratio_series(measurements, references)
    if len(ratios) < 2 or ratios[0] == 0:
        raise AlgorithmError("need at least two points with a non-zero first ratio")
    return ratios[-1] <= shrink_factor * ratios[0]
