"""Analysis utilities: complexity fits, statistics, experiment tables."""

from .complexity import (
    BOUNDS,
    FitResult,
    bound_value,
    fit_constant,
    is_sublinear_in,
    ratio_series,
)
from .experiments import (
    ConstructionMeasurement,
    MeasurementSeries,
    estimate_crossover,
    geometric_sizes,
    run_construction_measurement,
)
from .reporting import ExperimentTable, format_cell, format_table
from .stats import Summary, mean, median, percentile, stdev, summarize

__all__ = [
    "BOUNDS",
    "ConstructionMeasurement",
    "ExperimentTable",
    "FitResult",
    "MeasurementSeries",
    "Summary",
    "bound_value",
    "estimate_crossover",
    "fit_constant",
    "format_cell",
    "format_table",
    "geometric_sizes",
    "is_sublinear_in",
    "mean",
    "median",
    "percentile",
    "ratio_series",
    "run_construction_measurement",
    "stdev",
    "summarize",
]
