"""The Bracha delivery substrate: what Byzantine hardening costs.

The fast-path broadcast-and-echo executor charges each logical hop as one
point-to-point message.  Running the same primitives over Bracha reliable
broadcast replaces every hop with a full three-wave instance among a group
of ``g`` witnesses, which fault-free costs

* ``g - 1`` INIT messages,
* ``g * (g - 1)`` ECHO messages (every node echoes to everyone),
* ``g * (g - 1)`` READY messages,

i.e. ``(g - 1) * (2g + 1)`` messages of ``value_bits + TAG_BITS`` each, and
three causal waves of latency instead of one round.  :class:`BrachaSubstrate`
encodes exactly this closed form, and the tests cross-validate it against an
actual kernel execution of :func:`~repro.byzantine.bracha.run_bracha_broadcast`
— the accounting model and the executable protocol are the same object seen
from two sides, in the same way the fast path mirrors the reference path.

Registering the class under the name ``"bracha"``
(:func:`~repro.network.broadcast.register_substrate`) makes it available to
the CLI's ``run --substrate bracha`` and to
:func:`~repro.network.broadcast.delivery_substrate`.
"""

from __future__ import annotations

from typing import Optional

from ..network.accounting import MessageAccountant
from ..network.broadcast import DeliverySubstrate, register_substrate
from .bracha import TAG_BITS, BrachaConfig

__all__ = ["BrachaSubstrate", "default_resilience"]


def default_resilience(n: int) -> int:
    """The largest Byzantine bound a group of ``n`` tolerates: (n - 1) // 3."""
    return max(0, (n - 1) // 3)


class BrachaSubstrate(DeliverySubstrate):
    """Charge every broadcast-and-echo hop as one Bracha instance.

    Parameters
    ----------
    n:
        The witness-group size ``g`` of each reliable-broadcast instance.
        The natural (and default CLI) choice is the whole network.
    t:
        The Byzantine bound the thresholds must survive; defaults to the
        maximum the group tolerates, ``(n - 1) // 3``.  Construction
        enforces ``n > 3t`` via :class:`~repro.byzantine.bracha.BrachaConfig`.
    """

    name = "bracha"
    #: INIT, ECHO and READY are three causally chained waves: each logical
    #: hop of the plain executor costs three rounds of latency here.
    rounds_per_hop = 3

    def __init__(self, n: int, t: Optional[int] = None) -> None:
        if t is None:
            t = default_resilience(n)
        self.config = BrachaConfig(n=n, t=t)

    @property
    def hop_messages(self) -> int:
        """Fault-free messages of one Bracha instance: (g-1)(2g+1)."""
        g = self.config.n
        return (g - 1) * (2 * g + 1)

    def charge_messages(
        self, accountant: MessageAccountant, count: int, size_bits: int, kind: str
    ) -> None:
        """Charge ``count`` logical sends of ``size_bits`` run over Bracha.

        Each wave is tagged separately (``<kind>@brb-init`` etc.) so the
        accountant's per-kind breakdown shows where the hardening overhead
        goes; every Bracha message carries the value plus the 2-bit wave
        discriminator.
        """
        g = self.config.n
        bits = size_bits + TAG_BITS
        accountant.record_messages(count * (g - 1), bits, kind=f"{kind}@brb-init")
        accountant.record_messages(count * g * (g - 1), bits, kind=f"{kind}@brb-echo")
        accountant.record_messages(count * g * (g - 1), bits, kind=f"{kind}@brb-ready")


@register_substrate("bracha")
def _build_bracha_substrate(n: int, t: Optional[int] = None) -> BrachaSubstrate:
    """Builder for ``make_substrate("bracha", n=..., t=...)``."""
    return BrachaSubstrate(n=n, t=t)
