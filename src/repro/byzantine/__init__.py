"""The Byzantine fault tier: adversarial nodes and the Bracha defence.

The benign fault subsystem (PR 4) models crashes, dead links and lossy
delivery.  This package adds the adversary that *lies*, in two halves that
mirror attack and defence:

* :mod:`repro.byzantine.behaviors` — compromised-node programs (payload
  corruption, equivocation, stale replay, send omission) injected at the
  event kernel's single delivery boundary, plus
  :mod:`repro.byzantine.programs`, which publishes them as ``byz-*`` fault
  programs in the experiment registry;
* :mod:`repro.byzantine.bracha` — Bracha's reliable broadcast
  (INIT/ECHO/READY, sound for ``n > 3t``) as an executable per-node
  protocol, plus :mod:`repro.byzantine.substrate`, which registers its
  closed-form cost model as the ``"bracha"`` delivery substrate the
  broadcast-and-echo executor can charge through.

The benchmark pair ``bench_broadcast_byzantine*`` measures what the
hardening costs.
"""

from .behaviors import (
    BYZANTINE_PROGRAMS,
    ByzantineBehavior,
    ByzantineInjector,
    corrupt_value,
)
from .bracha import (
    BrachaConfig,
    BrachaNode,
    BrachaRun,
    complete_graph,
    run_bracha_broadcast,
)
from .programs import choose_byzantine_nodes, max_tolerated
from .substrate import BrachaSubstrate, default_resilience

__all__ = [
    "BYZANTINE_PROGRAMS",
    "ByzantineBehavior",
    "ByzantineInjector",
    "corrupt_value",
    "BrachaConfig",
    "BrachaNode",
    "BrachaRun",
    "complete_graph",
    "run_bracha_broadcast",
    "choose_byzantine_nodes",
    "max_tolerated",
    "BrachaSubstrate",
    "default_resilience",
]
