"""Bracha's reliable broadcast (Bracha 1987): INIT / ECHO / READY.

The KKT broadcast-and-echo primitives assume a reliable tree: whatever the
root sends is what every node receives.  Under the Byzantine tier that
assumption breaks, and the classic repair is Bracha's asynchronous reliable
broadcast, which guarantees for ``n`` nodes with at most ``t < n/3``
Byzantine among them:

* **validity** — if the sender is honest, every honest node delivers the
  sender's value;
* **agreement** — no two honest nodes deliver different values;
* **totality** — if any honest node delivers, every honest node delivers.

The protocol is three message waves over a complete graph:

1. the sender sends ``INIT(v)`` to everyone;
2. on the first ``INIT(v)`` (and never again) a node sends ``ECHO(v)`` to
   everyone; on ``ceil((n + t + 1) / 2)`` matching echoes it sends
   ``READY(v)``;
3. ``t + 1`` matching readies also trigger ``READY(v)`` (amplification, so
   totality holds even for nodes that missed the echo quorum), and
   ``2t + 1`` matching readies *deliver* ``v``.

The thresholds only work when ``n > 3t``; :class:`BrachaConfig` refuses
anything else.  Nodes count their *own* echo and ready alongside received
ones, the standard formulation in which the thresholds are quorum sizes
over all ``n`` nodes.

This module is the executable protocol — real :class:`ProtocolNode` state
machines on the event kernel, attackable through
:class:`~repro.byzantine.behaviors.ByzantineInjector`.  The *accounting
model* the fast-path executor charges when the substrate is enabled lives
in :mod:`repro.byzantine.substrate` and is cross-validated against this
implementation by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..network.accounting import MessageAccountant
from ..network.async_simulator import AsynchronousSimulator
from ..network.errors import AlgorithmError, ProtocolError, SimulationError
from ..network.faults import FaultInjector
from ..network.graph import Graph
from ..network.message import Message
from ..network.node import ProtocolNode
from ..network.scheduler import Scheduler
from ..network.sync_simulator import SynchronousSimulator

__all__ = [
    "TAG_BITS",
    "BrachaConfig",
    "BrachaNode",
    "BrachaRun",
    "complete_graph",
    "run_bracha_broadcast",
]

#: Wire overhead per Bracha message: a 2-bit INIT/ECHO/READY discriminator.
TAG_BITS = 2

INIT = "INIT"
ECHO = "ECHO"
READY = "READY"


@dataclass(frozen=True)
class BrachaConfig:
    """The (n, t) resilience parameters of one Bracha instance.

    ``n`` is the group size and ``t`` the number of Byzantine nodes the
    instance must survive.  Bracha's thresholds are sound **only** when
    ``n > 3t``; construction fails loudly otherwise, because silently
    running an unsound configuration would let tests "pass" against a
    broadcast that guarantees nothing.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise AlgorithmError("Bracha broadcast needs at least one node")
        if self.t < 0:
            raise AlgorithmError("the Byzantine bound t cannot be negative")
        if self.n <= 3 * self.t:
            raise AlgorithmError(
                f"Bracha reliable broadcast requires n > 3t: n={self.n} "
                f"tolerates at most t={max(0, (self.n - 1) // 3)} Byzantine "
                f"nodes, got t={self.t}"
            )

    @property
    def echo_threshold(self) -> int:
        """Matching echoes needed to turn ECHO into READY: ceil((n+t+1)/2)."""
        return (self.n + self.t + 2) // 2

    @property
    def ready_support(self) -> int:
        """Matching readies that amplify into our own READY: t + 1."""
        return self.t + 1

    @property
    def ready_threshold(self) -> int:
        """Matching readies needed to deliver: 2t + 1."""
        return 2 * self.t + 1

    def message_bits(self, value_bits: int) -> int:
        """Wire size of one Bracha message carrying a value of ``value_bits``."""
        return value_bits + TAG_BITS


class BrachaNode(ProtocolNode):
    """One participant of a Bracha reliable-broadcast instance.

    The node follows the three-wave state machine above, counting its own
    echo/ready towards the quorums.  ``accepted`` holds the delivered value
    (``None`` until delivery); ``delivered`` records whether the 2t+1 ready
    quorum was reached.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Dict[int, int],
        config: BrachaConfig,
        sender: int,
        value: Any = None,
        value_bits: int = 8,
    ) -> None:
        super().__init__(node_id, neighbors)
        self.config = config
        self.sender = sender
        self.value = value
        self.value_bits = value_bits
        self.echo_sent = False
        self.ready_sent = False
        self.delivered = False
        self.accepted: Any = None
        # Quorum bookkeeping: value -> the set of nodes heard from (a set,
        # so replayed/duplicated messages never double-count a voter).
        self._echoes: Dict[Any, Set[int]] = {}
        self._readies: Dict[Any, Set[int]] = {}

    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        if self.node_id != self.sender:
            return
        bits = self.config.message_bits(self.value_bits)
        self.broadcast_to_neighbors(INIT, payload=self.value, size_bits=bits)
        # The sender processes its own INIT locally (no self-loop edge).
        self._handle_init(self.value)

    def on_message(self, message: Message) -> None:
        if self.delivered:
            return
        if message.kind == INIT:
            # Only the designated sender's INIT counts; an INIT relayed or
            # forged from another node is ignored outright.
            if message.sender == self.sender:
                self._handle_init(message.payload)
        elif message.kind == ECHO:
            self._handle_echo(message.sender, message.payload)
        elif message.kind == READY:
            self._handle_ready(message.sender, message.payload)
        else:
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------ #
    def _handle_init(self, value: Any) -> None:
        if self.echo_sent:
            return
        self.echo_sent = True
        bits = self.config.message_bits(self.value_bits)
        self.broadcast_to_neighbors(ECHO, payload=value, size_bits=bits)
        self._handle_echo(self.node_id, value)

    def _handle_echo(self, voter: int, value: Any) -> None:
        votes = self._echoes.setdefault(value, set())
        votes.add(voter)
        if len(votes) >= self.config.echo_threshold:
            self._send_ready(value)

    def _send_ready(self, value: Any) -> None:
        if self.ready_sent:
            return
        self.ready_sent = True
        bits = self.config.message_bits(self.value_bits)
        self.broadcast_to_neighbors(READY, payload=value, size_bits=bits)
        self._handle_ready(self.node_id, value)

    def _handle_ready(self, voter: int, value: Any) -> None:
        votes = self._readies.setdefault(value, set())
        votes.add(voter)
        if len(votes) >= self.config.ready_support and not self.ready_sent:
            self._send_ready(value)
        if len(votes) >= self.config.ready_threshold and not self.delivered:
            self.delivered = True
            self.accepted = value
            self.halt()


def complete_graph(n: int, weight: int = 1) -> Graph:
    """The complete graph on nodes ``1..n`` — Bracha's communication medium."""
    if n < 1:
        raise AlgorithmError("a broadcast group needs at least one node")
    id_bits = max(1, n.bit_length())
    graph = Graph(id_bits=id_bits)
    for node in range(1, n + 1):
        graph.add_node(node)
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            graph.add_edge(u, v, weight)
    return graph


@dataclass
class BrachaRun:
    """Outcome of one executed Bracha instance."""

    config: BrachaConfig
    sender: int
    #: node id -> delivered value (``None`` if the node never delivered).
    delivered: Dict[int, Any]
    accountant: MessageAccountant
    fault_events: List[List] = field(default_factory=list)

    def honest_delivered(self, byzantine: Set[int]) -> Dict[int, Any]:
        """The delivered values of the honest nodes only."""
        return {
            node: value
            for node, value in self.delivered.items()
            if node not in byzantine
        }


def run_bracha_broadcast(
    n: int,
    t: int,
    value: Any,
    sender: int = 1,
    value_bits: int = 8,
    engine: str = "sync",
    scheduler: Optional[Scheduler] = None,
    faults: Optional[FaultInjector] = None,
) -> BrachaRun:
    """Execute one Bracha broadcast of ``value`` in a group of ``n`` nodes.

    ``t`` is the resilience bound baked into the thresholds (the adversary,
    if any, arrives via ``faults``, typically a
    :class:`~repro.byzantine.behaviors.ByzantineInjector` controlling at
    most ``t`` nodes).  Fault-free, the run costs exactly
    ``(n-1) + 2·n·(n-1)`` messages: one INIT wave plus full ECHO and READY
    waves.
    """
    config = BrachaConfig(n=n, t=t)
    if not 1 <= sender <= n:
        raise AlgorithmError(f"sender {sender} is not one of the {n} group nodes")
    graph = complete_graph(n)
    nodes = []
    for node_id in graph.nodes():
        neighbors = {
            nbr: graph.get_edge(node_id, nbr).weight for nbr in graph.neighbors(node_id)
        }
        nodes.append(
            BrachaNode(
                node_id=node_id,
                neighbors=neighbors,
                config=config,
                sender=sender,
                value=value if node_id == sender else None,
                value_bits=value_bits,
            )
        )
    if engine == "sync":
        simulator: Any = SynchronousSimulator(graph, faults=faults)
    elif engine == "async":
        simulator = AsynchronousSimulator(graph, scheduler=scheduler, faults=faults)
    else:
        raise SimulationError(f"unknown engine {engine!r}")
    simulator.register_all(nodes)
    simulator.run()
    delivered = {node.node_id: node.accepted for node in nodes}
    events = faults.event_log() if faults is not None else []
    return BrachaRun(
        config=config,
        sender=sender,
        delivered=delivered,
        accountant=simulator.accountant,
        fault_events=events,
    )
