"""The Byzantine fault programs: ``byz-*`` entries in the fault registry.

Each program compromises a seed-chosen subset of nodes and runs one
:class:`~repro.byzantine.behaviors.ByzantineBehavior` over them at the event
kernel's delivery boundary.  The subset size is **capped at the honest
majority bound** ``(n - 1) // 3`` — the most Byzantine nodes a Bracha-style
defence can survive — so every registered scenario stays in the regime
where "tolerant algorithms keep working" is a meaningful claim.  On graphs
too small to tolerate any Byzantine node (``n <= 3``) the programs degrade
to an honest no-op with an empty compromised set.

All four programs are runnable from ``(name, seed)`` alone
(``requires=()``), so the fuzzing spec generator picks them up
automatically, and all are registered ``adversarial=True`` so the
differential oracle knows their divergences are attacks, not bugs.

The compromised-node choice is part of provenance: each program plans one
``[at, "byz-<program>", node, None]`` row per compromised node, and every
attack that actually fires is appended by the injector at run time.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..api.faults import FaultProgram, register_fault
from ..network.errors import AlgorithmError
from ..network.fragments import SpanningForest
from ..network.graph import Graph
from .behaviors import ByzantineBehavior, ByzantineInjector

__all__ = [
    "max_tolerated",
    "choose_byzantine_nodes",
]


def max_tolerated(n: int) -> int:
    """The honest-majority Byzantine cap for ``n`` nodes: (n - 1) // 3."""
    return max(0, (n - 1) // 3)


def choose_byzantine_nodes(
    graph: Graph, seed: Optional[int], count: Optional[int]
) -> List[int]:
    """The seed-chosen compromised subset, capped at :func:`max_tolerated`.

    ``count=None`` asks for the worst tolerated adversary (the full
    ``(n-1)//3`` budget); explicit counts are clamped into the tolerated
    band rather than rejected, so a fuzzer-drawn ``count=2`` on a 5-node
    graph degrades to the 1 compromised node the graph can survive.
    """
    cap = max_tolerated(graph.num_nodes)
    if count is None:
        count = cap
    if count < 0:
        raise AlgorithmError("the Byzantine node count cannot be negative")
    count = min(count, cap)
    if count == 0:
        return []
    rng = random.Random(seed)
    return sorted(rng.sample(sorted(graph.nodes()), count))


def _byzantine_program(
    name: str,
    program: str,
    graph: Graph,
    seed: Optional[int],
    count: Optional[int],
    rate: float,
    at: int,
) -> FaultProgram:
    """Common body of the four ``byz-*`` builders."""
    if at < 0:
        raise AlgorithmError("Byzantine start times must be non-negative")
    nodes = choose_byzantine_nodes(graph, seed, count)
    behavior = ByzantineBehavior(nodes, program, seed=seed, rate=rate, at=at)
    injector = ByzantineInjector(behavior)
    planned = [[at, name, node, None] for node in nodes]
    return FaultProgram(name, injector=injector, planned=planned)


@register_fault(
    "byz-corrupt",
    summary="Compromised nodes flip bits in their outgoing payloads",
    adversarial=True,
)
def byz_corrupt_fault(
    graph: Graph,
    forest: SpanningForest,
    seed: Optional[int] = None,
    count: Optional[int] = None,
    rate: float = 1.0,
    at: int = 0,
) -> FaultProgram:
    """Payload corruption: each outgoing message lies with probability ``rate``."""
    return _byzantine_program("byz-corrupt", "corrupt", graph, seed, count, rate, at)


@register_fault(
    "byz-equivocate",
    summary="Compromised nodes tell different neighbours different values",
    adversarial=True,
)
def byz_equivocate_fault(
    graph: Graph,
    forest: SpanningForest,
    seed: Optional[int] = None,
    count: Optional[int] = None,
    at: int = 0,
) -> FaultProgram:
    """Equivocation: a fixed half of each compromised node's peers is lied to."""
    return _byzantine_program("byz-equivocate", "equivocate", graph, seed, count, 1.0, at)


@register_fault(
    "byz-replay",
    summary="Compromised nodes re-inject stale copies of old messages",
    adversarial=True,
)
def byz_replay_fault(
    graph: Graph,
    forest: SpanningForest,
    seed: Optional[int] = None,
    count: Optional[int] = None,
    rate: float = 0.5,
    at: int = 0,
) -> FaultProgram:
    """Replay: each later send re-injects the node's first message w.p. ``rate``."""
    return _byzantine_program("byz-replay", "replay", graph, seed, count, rate, at)


@register_fault(
    "byz-silent",
    summary="Compromised nodes receive and compute but never speak",
    adversarial=True,
)
def byz_silent_fault(
    graph: Graph,
    forest: SpanningForest,
    seed: Optional[int] = None,
    count: Optional[int] = None,
    at: int = 0,
) -> FaultProgram:
    """Send omission: every outgoing message of a compromised node is dropped."""
    return _byzantine_program("byz-silent", "silent", graph, seed, count, 1.0, at)
