"""Adversarial node behaviours injected at the kernel's delivery boundary.

The crash/lossy/partition tier (PR 4) models a *benign* adversary: messages
disappear or double, but nobody lies.  This module adds the Byzantine tier:
a seeded subset of nodes is compromised and their *outgoing* traffic is
tampered with at the single :meth:`~repro.network.kernel.EventKernel._admit`
seam, so every protocol running on the kernel faces the same adversary
without knowing about it.

Four behaviours are provided (the ``program`` of a
:class:`ByzantineBehavior`):

``silent``
    The compromised node's outgoing messages are all suppressed from time
    ``at`` on — a sender-side crash: the node still *receives* and computes,
    it just never speaks.
``corrupt``
    Each outgoing payload is deterministically corrupted (numeric payloads
    get a bit flipped) with probability ``rate``, drawn in delivery order
    from the behaviour's own RNG.
``equivocate``
    The classic Byzantine lie: for a fixed, seed-determined half of its
    peers the node's payloads are replaced with one consistent *altered*
    value while the other half sees the truth — conflicting claims about
    the same logical send.
``replay``
    The node's first observed message is remembered and stale copies of it
    are re-injected (with probability ``rate``) whenever the node speaks
    again.

Every action that actually fires is logged as a
:class:`~repro.network.faults.FaultEvent` with kind ``byz-<program>``, which
is how Byzantine runs carry their full adversarial history in
``RunResult.extra["fault_events"]`` provenance.  Payloads that cannot be
meaningfully corrupted (``None``, strings, objects) pass through unchanged
— and *unlogged*, so the event log never claims an attack that did not
happen.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set

from ..network.errors import SimulationError
from ..network.faults import DELIVER, DROP, FaultInjector
from ..network.message import Message

__all__ = [
    "BYZANTINE_PROGRAMS",
    "ByzantineBehavior",
    "ByzantineInjector",
    "corrupt_value",
]

#: The adversarial programs a :class:`ByzantineBehavior` can run.
BYZANTINE_PROGRAMS = ("corrupt", "equivocate", "replay", "silent")


def corrupt_value(value: Any, salt: int) -> Optional[Any]:
    """A deterministic corruption of ``value``, or ``None`` if impossible.

    Non-negative integers get one bit (chosen by ``salt``) flipped at or
    below their most significant bit, so the result is a *different*
    non-negative integer of comparable magnitude — a plausible wire-level
    lie, not a crash-inducing type error.  Tuples and lists are corrupted in
    their first corruptible element.  Everything else (``None``, strings,
    arbitrary objects) is not corruptible: returning ``None`` tells the
    caller to leave the message alone.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        if value < 0:
            return -value
        width = max(1, value.bit_length())
        return value ^ (1 << (salt % width))
    if isinstance(value, (tuple, list)):
        for index, item in enumerate(value):
            corrupted = corrupt_value(item, salt + index)
            if corrupted is not None:
                items = list(value)
                items[index] = corrupted
                return tuple(items) if isinstance(value, tuple) else items
        return None
    return None


class ByzantineBehavior:
    """One seeded adversary controlling a fixed set of compromised nodes.

    Parameters
    ----------
    nodes:
        The compromised node IDs.  An empty set is a valid (inert)
        adversary — what the fault programs build on graphs too small to
        tolerate any Byzantine node (``n <= 3``).
    program:
        One of :data:`BYZANTINE_PROGRAMS`.
    seed:
        Drives every decision the adversary makes; ``None`` means seed 0,
        so a behaviour is *always* deterministic.
    rate:
        Per-message firing probability for the ``corrupt`` and ``replay``
        programs (``equivocate`` and ``silent`` are deterministic per edge
        and per message respectively).
    at:
        Kernel time (round / delivery count) from which the adversary acts.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        program: str,
        seed: Optional[int] = None,
        rate: float = 1.0,
        at: int = 0,
    ) -> None:
        if program not in BYZANTINE_PROGRAMS:
            known = ", ".join(BYZANTINE_PROGRAMS)
            raise SimulationError(
                f"unknown Byzantine program {program!r}; known programs: {known}"
            )
        if not 0.0 <= rate <= 1.0:
            raise SimulationError("Byzantine rate must be in [0, 1]")
        if at < 0:
            raise SimulationError("Byzantine start times must be non-negative")
        self.nodes = frozenset(int(node) for node in nodes)
        self.program = program
        self.seed = 0 if seed is None else int(seed)
        self.rate = float(rate)
        self.at = int(at)
        self._rng = random.Random(self.seed)

    def is_byzantine(self, node: int) -> bool:
        return node in self.nodes

    def acts_on(self, message: Message, time: int) -> bool:
        """Does this adversary tamper with ``message`` delivered at ``time``?"""
        return time >= self.at and message.sender in self.nodes

    def fires(self) -> bool:
        """One seeded coin flip at ``rate``, drawn in delivery order."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

    def lies_to(self, sender: int, receiver: int) -> bool:
        """Equivocation split: does ``sender`` lie on the edge to ``receiver``?

        The split is a fixed function of (seed, sender, receiver) — not of
        delivery order — so the same logical broadcast always shows one
        consistent false value to the lied-to half and the truth to the
        rest, no matter how the scheduler interleaves deliveries.
        """
        coin = random.Random(self.seed * 1_000_003 + sender * 8_191 + receiver)
        return coin.random() < 0.5


class ByzantineInjector(FaultInjector):
    """A :class:`~repro.network.faults.FaultInjector` with a Byzantine layer.

    Benign faults (crashes, link windows, lossy drop/duplication) work
    exactly as in the base class; on top, every admitted message from a
    compromised sender runs through the :class:`ByzantineBehavior`:

    * ``silent`` suppresses it (an extra :meth:`verdict` drop, logged as
      ``byz-silent``);
    * ``corrupt`` / ``equivocate`` mutate its payload in place via
      :meth:`on_deliver`, which the kernel calls just before the receiver's
      handler;
    * ``replay`` hands the kernel a stale clone to enqueue (charged like a
      duplicate).

    With an inert behaviour (no compromised nodes) the injector is
    bit-identical to the plain :class:`FaultInjector`.
    """

    def __init__(self, behavior: ByzantineBehavior, **kwargs: Any) -> None:
        kwargs.setdefault("seed", behavior.seed)
        super().__init__(**kwargs)
        self.behavior = behavior
        # Sequence numbers of replayed clones: a replay never triggers
        # further tampering, so replay chains cannot grow unboundedly.
        self._replays: Set[int] = set()
        # The first message observed per compromised sender — the stale
        # template later replays are cloned from.
        self._stale: Dict[int, Message] = {}

    # ------------------------------------------------------------------ #
    # the delivery boundary
    # ------------------------------------------------------------------ #
    def verdict(self, message: Message, time: int) -> str:
        verdict = super().verdict(message, time)
        if verdict != DELIVER:
            return verdict
        behavior = self.behavior
        if behavior.program == "silent" and behavior.acts_on(message, time):
            self._log(time, "byz-silent", message)
            return DROP
        return DELIVER

    def on_deliver(self, message: Message, time: int) -> Optional[Message]:
        behavior = self.behavior
        if message.sequence in self._replays or not behavior.acts_on(message, time):
            return None
        if behavior.program == "corrupt":
            if behavior.fires():
                self._tamper(message, time, "byz-corrupt", salt=behavior.seed + 1)
            return None
        if behavior.program == "equivocate":
            if behavior.lies_to(message.sender, message.receiver):
                self._tamper(message, time, "byz-equivocate", salt=behavior.seed + 1)
            return None
        if behavior.program == "replay":
            stale = self._stale.get(message.sender)
            if stale is None:
                self._stale[message.sender] = message.clone()
                return None
            if behavior.fires():
                replay = stale.clone()
                self._replays.add(replay.sequence)
                self._log(time, "byz-replay", replay)
                return replay
        return None

    def _tamper(self, message: Message, time: int, kind: str, salt: int) -> None:
        """Corrupt the payload in place; log only when a lie actually lands."""
        corrupted = corrupt_value(message.payload, salt)
        if corrupted is None:
            return
        message.payload = corrupted
        self._log(time, kind, message)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def byzantine_nodes(self) -> List[int]:
        return sorted(self.behavior.nodes)
