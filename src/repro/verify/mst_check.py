"""Minimum-spanning-forest verification.

Because augmented weights are distinct, the minimum spanning forest of a
graph is unique, so the distributed construction is correct iff its marked
edge set equals Kruskal's.  For diagnostics, :func:`mst_difference` reports
the symmetric difference, and :func:`check_minimum_spanning_forest` also
validates the structural invariants first (so a failure message distinguishes
"not a spanning forest" from "spanning but not minimum").
"""

from __future__ import annotations

from typing import Set, Tuple

from ..baselines.sequential import kruskal_mst, mst_edge_keys
from ..network.errors import ForestError
from ..network.fragments import SpanningForest
from .forest_check import check_spanning_forest

__all__ = [
    "check_minimum_spanning_forest",
    "is_minimum_spanning_forest",
    "is_minimum_weight_forest",
    "mst_difference",
]


def mst_difference(forest: SpanningForest) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
    """Return ``(extra, missing)`` marked edges w.r.t. the true minimum forest."""
    optimal = mst_edge_keys(kruskal_mst(forest.graph))
    marked = forest.marked_edges
    return marked - optimal, optimal - marked


def check_minimum_spanning_forest(forest: SpanningForest) -> None:
    """Raise :class:`ForestError` unless the forest is the (unique) minimum one."""
    check_spanning_forest(forest)
    extra, missing = mst_difference(forest)
    if extra or missing:
        raise ForestError(
            f"forest is spanning but not minimum: extra edges {sorted(extra)}, "
            f"missing edges {sorted(missing)}"
        )


def is_minimum_spanning_forest(forest: SpanningForest) -> bool:
    """Boolean form of :func:`check_minimum_spanning_forest`."""
    try:
        check_minimum_spanning_forest(forest)
    except ForestError:
        return False
    return True


def is_minimum_weight_forest(forest: SpanningForest) -> bool:
    """Is the forest spanning and of minimum total *raw* weight?

    When raw weights are distinct this coincides with
    :func:`is_minimum_spanning_forest`.  On graphs that violate the paper's
    distinct-weight assumption (e.g. after a workload inserted random-weight
    edges) the minimum forest is no longer unique, so correctness means
    matching Kruskal's total weight rather than its exact edge set.
    """
    try:
        check_spanning_forest(forest)
    except ForestError:
        return False
    graph = forest.graph
    optimal = sum(edge.weight for edge in kruskal_mst(graph))
    marked = sum(graph.get_edge(u, v).weight for u, v in forest.marked_edges)
    return marked == optimal
