"""Correctness verifiers for maintained trees and forests."""

from .certificates import (
    check_mst_certificates,
    has_valid_mst_certificates,
    tree_path,
    violating_non_tree_edges,
    violating_tree_edges,
)
from .forest_check import (
    check_properly_marked,
    check_spanning_forest,
    is_spanning_forest,
)
from .mst_check import (
    check_minimum_spanning_forest,
    is_minimum_spanning_forest,
    is_minimum_weight_forest,
    mst_difference,
)

__all__ = [
    "check_minimum_spanning_forest",
    "check_mst_certificates",
    "check_properly_marked",
    "check_spanning_forest",
    "has_valid_mst_certificates",
    "is_minimum_spanning_forest",
    "is_minimum_weight_forest",
    "is_spanning_forest",
    "mst_difference",
    "tree_path",
    "violating_non_tree_edges",
    "violating_tree_edges",
]
