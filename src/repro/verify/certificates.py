"""Certificate-based MST verification (cut and cycle properties).

:mod:`repro.verify.mst_check` verifies a constructed tree by recomputing the
MST with Kruskal and comparing edge sets.  This module provides the
*certificate* route instead: a spanning forest is the minimum one iff

* **cycle property** — every non-tree edge is the (unique) heaviest edge on
  the cycle it closes with the tree, equivalently heavier than every tree
  edge on the tree path between its endpoints; and
* **cut property** — every tree edge is the (unique) lightest edge across the
  cut obtained by removing it from its tree.

Checking the certificates does not rely on any other MST algorithm being
correct, so the test suite can use it to cross-validate both the distributed
constructions and the sequential baselines against each other.  The
implementation is deliberately straightforward (O(n·m) worst case) — it is a
verifier, not a competitor.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..network.errors import ForestError
from ..network.fragments import SpanningForest
from ..network.graph import Edge, Graph
from .forest_check import check_spanning_forest

__all__ = [
    "tree_path",
    "violating_non_tree_edges",
    "violating_tree_edges",
    "check_mst_certificates",
    "has_valid_mst_certificates",
]


def tree_path(forest: SpanningForest, source: int, target: int) -> Optional[List[int]]:
    """The unique marked-edge path from ``source`` to ``target`` (None if absent)."""
    if not forest.graph.has_node(source) or not forest.graph.has_node(target):
        raise ForestError("both endpoints must exist in the graph")
    if source == target:
        return [source]
    parent: Dict[int, Optional[int]] = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in forest.marked_neighbors(node):
            if nbr in parent:
                continue
            parent[nbr] = node
            if nbr == target:
                path = [nbr]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            queue.append(nbr)
    return None


def _aug(graph: Graph, edge: Edge) -> int:
    return edge.augmented_weight(graph.id_bits)


def violating_non_tree_edges(forest: SpanningForest) -> List[Edge]:
    """Non-tree edges that violate the cycle property.

    A non-tree edge violates the property if some tree edge on the path
    between its endpoints is *heavier* than it (that tree edge should have
    been replaced).
    """
    graph = forest.graph
    violations = []
    for edge in graph.edges():
        if forest.is_marked(edge.u, edge.v):
            continue
        path = tree_path(forest, edge.u, edge.v)
        if path is None:
            # Endpoints in different trees: with a spanning forest this means
            # different graph components, so the edge cannot close a cycle —
            # but then it should have connected them, which is a violation of
            # maximality handled by check_spanning_forest, not here.
            continue
        path_edges = [graph.get_edge(a, b) for a, b in zip(path, path[1:])]
        if any(_aug(graph, pe) > _aug(graph, edge) for pe in path_edges):
            violations.append(edge)
    return violations


def violating_tree_edges(forest: SpanningForest) -> List[Edge]:
    """Tree edges that violate the cut property.

    A tree edge violates the property if removing it leaves a cut across
    which some non-tree edge is *lighter* than it.
    """
    graph = forest.graph
    violations = []
    for u, v in sorted(forest.marked_edges):
        tree_edge = graph.get_edge(u, v)
        forest.unmark(u, v)
        try:
            side = forest.component_of(u)
            crossing = forest.outgoing_edges(side)
        finally:
            forest.mark(u, v)
        lighter = [
            edge
            for edge in crossing
            if edge != tree_edge and _aug(graph, edge) < _aug(graph, tree_edge)
        ]
        if lighter:
            violations.append(tree_edge)
    return violations


def check_mst_certificates(forest: SpanningForest) -> None:
    """Raise :class:`ForestError` unless both MST certificates hold."""
    check_spanning_forest(forest)
    cycle_violations = violating_non_tree_edges(forest)
    if cycle_violations:
        raise ForestError(
            "cycle property violated by non-tree edges: "
            f"{[(e.u, e.v) for e in cycle_violations]}"
        )
    cut_violations = violating_tree_edges(forest)
    if cut_violations:
        raise ForestError(
            "cut property violated by tree edges: "
            f"{[(e.u, e.v) for e in cut_violations]}"
        )


def has_valid_mst_certificates(forest: SpanningForest) -> bool:
    """Boolean form of :func:`check_mst_certificates`."""
    try:
        check_mst_certificates(forest)
    except ForestError:
        return False
    return True
