"""Spanning-forest invariants.

A maintained forest is correct when (Section 1):

* the network is *properly marked* — by construction of
  :class:`~repro.network.fragments.SpanningForest` an edge is marked for both
  endpoints or neither, but :func:`check_properly_marked` also checks the
  marked edges still exist in the graph (a deleted edge must not stay
  marked);
* the marked subgraph is acyclic;
* every maintained tree is *maximal*: it spans the whole connected component
  of the graph that contains it (no marked component can be extended).
"""

from __future__ import annotations

from typing import List

from ..network.errors import ForestError
from ..network.fragments import SpanningForest

__all__ = ["check_properly_marked", "check_spanning_forest", "is_spanning_forest"]


def check_properly_marked(forest: SpanningForest) -> None:
    """Raise :class:`ForestError` if a marked edge is missing from the graph."""
    for u, v in forest.marked_edges:
        if not forest.graph.has_edge(u, v):
            raise ForestError(f"marked edge ({u}, {v}) does not exist in the graph")


def check_spanning_forest(forest: SpanningForest) -> None:
    """Raise :class:`ForestError` unless ``forest`` is a maximal spanning forest."""
    check_properly_marked(forest)
    forest.check_forest()
    graph_components = sorted(
        (sorted(component) for component in forest.graph.connected_components())
    )
    forest_components = sorted(
        (sorted(component) for component in forest.components())
    )
    if graph_components != forest_components:
        raise ForestError(
            "maintained trees do not span the graph's connected components: "
            f"graph has {len(graph_components)} components, "
            f"forest has {len(forest_components)}"
        )


def is_spanning_forest(forest: SpanningForest) -> bool:
    """Boolean form of :func:`check_spanning_forest`."""
    try:
        check_spanning_forest(forest)
    except ForestError:
        return False
    return True
