"""The unified event kernel shared by both simulation engines.

Historically the synchronous and asynchronous CONGEST engines were two
separate, partially duplicated implementations.  :class:`EventKernel` is the
one simulation core both are now thin facades over: node registration and
validation, outbox/submit validation, the delivery loop, round and
causal-depth accounting and the max-steps safety valve all live here, once.

Synchrony is a *policy object*, not a separate engine:

* :class:`RoundSynchrony` — the global-clock model of Theorem 1.1.  Messages
  submitted in round ``r`` are buffered and delivered together at the
  beginning of round ``r + 1``; each batch advances the accountant's round
  counter by one.
* :class:`EventSynchrony` — the asynchronous model of Theorem 1.2.  A
  pluggable :class:`~repro.network.scheduler.Scheduler` picks the next
  message; "time" is the causal depth of the execution, advanced to the
  length of the longest causal chain.

Faults are injected at the kernel's delivery boundary: when a
:class:`~repro.network.faults.FaultInjector` is installed, every message
popped for delivery is first passed through :meth:`EventKernel._admit`, which
drops messages to crashed nodes, messages on failed or partitioned links and
(seed-deterministically) messages on lossy links, and enqueues duplicate
copies.  Adversarial *node* behaviours (see :mod:`repro.byzantine`) ride the
same boundary: an installed :class:`~repro.byzantine.ByzantineInjector` may
additionally silence, corrupt or equivocate the payloads of compromised
senders and replay their stale messages.  Every protocol — flooding,
broadcast-and-echo, leader election — therefore sees the same fault model
without knowing about it.  With no
injector installed the kernel behaves bit-identically to the historical
engines: same counters, same delivery orders, same error messages.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from .accounting import MessageAccountant
from .errors import SimulationError
from .graph import Graph
from .message import Message
from .node import ProtocolNode
from .scheduler import FifoScheduler, Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

__all__ = [
    "EventKernel",
    "SynchronyModel",
    "RoundSynchrony",
    "EventSynchrony",
]


class SynchronyModel:
    """Policy interface: how pending messages are queued, clocked, delivered.

    A synchrony model owns the message store (round outbox or scheduler
    queue), the engine-specific notion of time (rounds or deliveries — this
    is also the clock fault programs are keyed on) and the per-step delivery
    semantics.  Everything else — registration, validation, the fault
    boundary, the quiescence loop — is the kernel's.
    """

    #: Noun used in the safety-valve error ("rounds" / "deliveries").
    limit_noun = "steps"

    kernel: "EventKernel"

    def bind(self, kernel: "EventKernel") -> None:
        self.kernel = kernel

    def clock(self) -> int:
        """The current fault-model time (round number or delivery count)."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook run once by :meth:`EventKernel.start` before ``on_start``s."""

    def stamp_and_queue(self, message: Message) -> None:
        """Record the send time on ``message`` and queue it for delivery."""
        raise NotImplementedError

    def stamp_duplicate(self, copy: Message, original: Message) -> None:
        """Queue a fault-duplicated ``copy`` of ``original``.

        By default a copy is queued like a fresh send; models with per-send
        bookkeeping (causal depth) override this to make the copy inherit
        the original's, since a duplicate is the *same* send on the wire.
        """
        self.stamp_and_queue(copy)

    def pending(self) -> bool:
        """Is at least one message waiting for delivery?"""
        raise NotImplementedError

    def deliver_next(self):
        """Deliver the next unit of work (one round / one message)."""
        raise NotImplementedError

    def limit_exceeded(self, executed: int, max_steps: int) -> bool:
        """Safety valve: has the execution outrun ``max_steps``?"""
        raise NotImplementedError


class RoundSynchrony(SynchronyModel):
    """Global-clock rounds: all round-``r`` sends are delivered in ``r + 1``."""

    limit_noun = "rounds"

    def __init__(self) -> None:
        self.round = 0
        self.outbox: List[Message] = []
        # Registration order is stable once start() runs; the sorted node
        # list is computed once there instead of once per round.
        self.node_order: List[int] = []

    def clock(self) -> int:
        return self.round

    def on_start(self) -> None:
        self.node_order = sorted(self.kernel._nodes)

    def stamp_and_queue(self, message: Message) -> None:
        message.send_time = self.round
        self.outbox.append(message)

    def pending(self) -> bool:
        return bool(self.outbox)

    def deliver_next(self) -> int:
        """Run one round: deliver last round's messages.  Returns #delivered."""
        kernel = self.kernel
        deliveries = self.outbox
        self.outbox = []
        self.round += 1
        kernel.accountant.record_rounds(1)

        per_node: Dict[int, List[Message]] = defaultdict(list)
        for message in deliveries:
            per_node[message.receiver].append(message)

        faults = kernel.faults
        for node_id in self.node_order:
            if faults is not None and faults.is_crashed(node_id, self.round):
                continue
            kernel._nodes[node_id].on_round_begin(self.round)
        for node_id in sorted(per_node):
            node = kernel._nodes[node_id]
            for message in per_node[node_id]:
                if kernel._admit(message):
                    node.on_message(message)
        return len(deliveries)

    def limit_exceeded(self, executed: int, max_steps: int) -> bool:
        # The synchronous valve bounds the rounds of *this* run() call.
        return executed >= max_steps


class EventSynchrony(SynchronyModel):
    """Scheduler-driven delivery with causal-depth round accounting."""

    limit_noun = "deliveries"

    def __init__(self, scheduler: Optional[Scheduler] = None) -> None:
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.deliveries = 0
        # Causal depth bookkeeping: depth of the message currently being
        # processed (0 while running on_start handlers).
        self.current_depth = 0
        self.max_depth = 0
        self._depth_of_message: Dict[int, int] = {}

    def clock(self) -> int:
        return self.deliveries

    def on_start(self) -> None:
        self.current_depth = 0

    def stamp_and_queue(self, message: Message) -> None:
        message.send_time = self.deliveries
        self._depth_of_message[message.sequence] = self.current_depth + 1
        self.scheduler.push(message)

    def stamp_duplicate(self, copy: Message, original: Message) -> None:
        # A duplicate is the same send delivered twice: it sits at the
        # original's causal depth, not at depth 1 (the original's depth is
        # still recorded here — it is only popped after the fault boundary).
        copy.send_time = self.deliveries
        self._depth_of_message[copy.sequence] = self._depth_of_message.get(
            original.sequence, 1
        )
        self.scheduler.push(copy)

    def pending(self) -> bool:
        return not self.scheduler.empty()

    def deliver_next(self) -> Message:
        """Deliver a single message chosen by the scheduler."""
        kernel = self.kernel
        message = self.scheduler.pop()
        self.deliveries += 1
        if not kernel._admit(message):
            # A faulted message extends no causal chain: nothing happened.
            self._depth_of_message.pop(message.sequence, None)
            return message
        depth = self._depth_of_message.pop(message.sequence, 1)
        self.current_depth = depth
        if depth > self.max_depth:
            extra = depth - self.max_depth
            self.max_depth = depth
            kernel.accountant.record_rounds(extra)
        kernel._nodes[message.receiver].on_message(message)
        self.current_depth = 0
        return message

    def limit_exceeded(self, executed: int, max_steps: int) -> bool:
        # The asynchronous valve bounds the *total* deliveries of the run.
        return self.deliveries >= max_steps


class EventKernel:
    """One simulation core; synchrony and faults are pluggable policies.

    Parameters
    ----------
    graph:
        The communication graph.  Node protocols may only send along its
        edges.
    synchrony:
        The :class:`SynchronyModel` policy (rounds or scheduled events).
    accountant:
        Message accountant; a fresh one is created when omitted.
    max_steps:
        Safety valve against non-terminating protocols, in the synchrony
        model's own unit (rounds / deliveries).
    faults:
        Optional :class:`~repro.network.faults.FaultInjector` applied at the
        delivery boundary.  ``None`` (the default) short-circuits every fault
        check, so fault-free executions are bit-identical to the historical
        engines.
    """

    def __init__(
        self,
        graph: Graph,
        synchrony: SynchronyModel,
        accountant: Optional[MessageAccountant] = None,
        max_steps: int = 1_000_000,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.graph = graph
        self.synchrony = synchrony
        synchrony.bind(self)
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self.max_steps = max_steps
        self.faults = faults
        self._nodes: Dict[int, ProtocolNode] = {}
        self._started = False

    # ------------------------------------------------------------------ #
    # setup (the one copy of the node bookkeeping both engines shared)
    # ------------------------------------------------------------------ #
    def register(self, node: ProtocolNode) -> None:
        """Register a protocol node; its ID must exist in the graph."""
        if not self.graph.has_node(node.node_id):
            raise SimulationError(f"node {node.node_id} is not in the graph")
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        node.attach(self)
        self._nodes[node.node_id] = node

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    @property
    def nodes(self) -> Dict[int, ProtocolNode]:
        return dict(self._nodes)

    @property
    def started(self) -> bool:
        return self._started

    # ------------------------------------------------------------------ #
    # engine interface used by ProtocolNode.send
    # ------------------------------------------------------------------ #
    def submit(self, message: Message) -> None:
        if message.receiver not in self._nodes:
            raise SimulationError(
                f"message addressed to unregistered node {message.receiver}"
            )
        if not self.graph.has_edge(message.sender, message.receiver):
            raise SimulationError(
                f"no edge ({message.sender}, {message.receiver}) in the graph"
            )
        self.synchrony.stamp_and_queue(message)
        self.accountant.record_message(message.size_bits, kind=message.kind)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Call every node's ``on_start`` (time-zero sends happen here)."""
        if self._started:
            raise SimulationError("simulation already started")
        if set(self._nodes) != set(self.graph.nodes()):
            missing = set(self.graph.nodes()) - set(self._nodes)
            raise SimulationError(f"nodes without a protocol: {sorted(missing)}")
        self._started = True
        self.synchrony.on_start()
        clock = self.synchrony.clock()
        for node_id in sorted(self._nodes):
            if self.faults is not None and self.faults.is_crashed(node_id, clock):
                continue
            self._nodes[node_id].on_start()

    def run_to_quiescence(self) -> int:
        """Deliver until nothing is pending.  Returns the steps executed."""
        executed = 0
        synchrony = self.synchrony
        while synchrony.pending():
            if synchrony.limit_exceeded(executed, self.max_steps):
                raise SimulationError(
                    f"protocol did not quiesce within "
                    f"{self.max_steps} {synchrony.limit_noun}"
                )
            synchrony.deliver_next()
            executed += 1
        return executed

    def all_halted(self) -> bool:
        return all(node.halted for node in self._nodes.values())

    # ------------------------------------------------------------------ #
    # the fault boundary
    # ------------------------------------------------------------------ #
    def _admit(self, message: Message) -> bool:
        """Should this popped message reach its receiver's handler?

        This is the single point where faults act: crash-stop receivers,
        failed or partitioned links and lossy drops suppress the delivery;
        lossy duplication re-queues a copy (whose wire cost is charged to the
        accountant like any other message).  Byzantine behaviours act here
        too: an admitted message takes one last trip through the injector's
        :meth:`~repro.network.faults.FaultInjector.on_deliver` hook, which
        may tamper with it in place (corruption, equivocation) and/or hand
        back a stale replay the kernel enqueues — and charges — like a
        duplicate.
        """
        if self.faults is None:
            return True
        from .faults import DELIVER, DUPLICATE  # local: avoid import cycle

        clock = self.synchrony.clock()
        verdict = self.faults.verdict(message, clock)
        if verdict == DUPLICATE:
            copy = message.clone()
            self.faults.mark_duplicate(copy)
            self.synchrony.stamp_duplicate(copy, message)
            self.accountant.record_message(copy.size_bits, kind=copy.kind)
        elif verdict != DELIVER:
            return False
        extra = self.faults.on_deliver(message, clock)
        if extra is not None:
            # A replayed message is the *same* stale send put back on the
            # wire: like a duplicate it sits at the triggering delivery's
            # causal depth and its wire cost is charged as a fresh message.
            self.synchrony.stamp_duplicate(extra, message)
            self.accountant.record_message(extra.size_bits, kind=extra.kind)
        return True
