"""Broadcast-and-echo: the paper's basic communication step.

The paper (Section 1) builds every algorithm out of a single primitive, a
broadcast from a root node ``x`` over the maintained tree followed by an echo
that aggregates values from the leaves back up to ``x``.  Two realisations
are provided:

* :class:`BroadcastEchoExecutor` — the *fast path* used by all algorithms in
  :mod:`repro.core`.  It walks the tree structure directly and charges the
  accountant exactly the messages a per-node execution would send: one
  broadcast message and one echo message per tree edge, with the declared bit
  widths, and ``2 × eccentricity(root)`` rounds.  Local computation is
  restricted to the node-local callback it is given (a node sees only its own
  ID, its incident edges and the broadcast payload), so the distributed
  semantics are preserved even though the execution is centralised.

* :class:`BroadcastEchoProtocolNode` — a genuine per-node protocol for the
  message-level engines.  Tests run the same aggregation through both paths
  and assert that message counts, bit counts and results agree
  (``tests/network/test_broadcast.py``); this is what justifies using the
  fast path for the large benchmark runs.

Both realisations assume reliable point-to-point delivery.  That assumption
is itself pluggable: a registered :class:`DeliverySubstrate` (see
:func:`register_substrate` / :func:`delivery_substrate`) replaces each
logical tree-hop message with a hardened delivery protocol — the Bracha
reliable-broadcast substrate of :mod:`repro.byzantine` being the shipped
example — and charges its messages, bits and rounds through the same
accountant.  The plain substrate is the historical direct send and keeps
every counter bit-identical.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .. import fastpath
from .accounting import MessageAccountant
from .errors import ProtocolError, SimulationError
from .fragments import SpanningForest
from .graph import Graph
from .message import Message
from .node import ProtocolNode

__all__ = [
    "TreeStructure",
    "build_tree_structure",
    "build_tree_structure_csr",
    "BroadcastEchoExecutor",
    "BroadcastEchoProtocolNode",
    "run_reference_broadcast_echo",
    "DeliverySubstrate",
    "register_substrate",
    "list_substrates",
    "make_substrate",
    "delivery_substrate",
    "active_substrate",
]

# A node-local value callback: (node_id) -> value.  The callback must only use
# information local to the node (its incident edges / the broadcast payload);
# algorithms in repro.core honour this contract.
LocalValueFn = Callable[[int], Any]
# Combine a node's local value with the already-combined values of its
# children; must be associative in the children argument.
CombineFn = Callable[[Any, Sequence[Any]], Any]


class TreeStructure:
    """Rooted view of one maintained tree: parents, children, depths.

    On the fast path (see :mod:`repro.fastpath`) structures live across many
    broadcast-and-echoes via the
    :class:`~repro.network.tree_cache.TreeStructureCache`, so the traversal
    orders and the eccentricity are memoised; the cache calls
    :meth:`invalidate_orders` whenever it patches the structure.
    """

    def __init__(
        self,
        root: int,
        parent: Dict[int, Optional[int]],
        children: Dict[int, List[int]],
        depth: Dict[int, int],
    ) -> None:
        self.root = root
        self.parent = parent
        self.children = children
        self.depth = depth
        self._postorder: Optional[List[int]] = None
        self._preorder: Optional[List[int]] = None
        self._eccentricity: Optional[int] = None

    @property
    def nodes(self) -> List[int]:
        return sorted(self.parent)

    @property
    def size(self) -> int:
        return len(self.parent)

    @property
    def num_edges(self) -> int:
        return self.size - 1

    @property
    def eccentricity(self) -> int:
        """Depth of the deepest node (the root's eccentricity in the tree)."""
        if self._eccentricity is not None:
            return self._eccentricity
        value = max(self.depth.values(), default=0)
        if fastpath.is_enabled():
            self._eccentricity = value
        return value

    def invalidate_orders(self) -> None:
        """Forget memoised traversals after the structure was patched."""
        self._postorder = None
        self._preorder = None
        self._eccentricity = None

    def postorder(self) -> List[int]:
        """Nodes in post-order (children before parents), deterministic.

        The returned list is memoised on the fast path — treat it as
        read-only.
        """
        if self._postorder is not None:
            return self._postorder
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            stack.append((node, True))
            for child in reversed(self.children[node]):
                stack.append((child, False))
        if fastpath.is_enabled():
            self._postorder = order
        return order

    def preorder(self) -> List[int]:
        """Nodes in pre-order (parents before children), deterministic.

        Used by :meth:`BroadcastEchoExecutor.broadcast_with_downward_state`
        for the downward sweep instead of reversing a fresh post-order copy.
        The returned list is memoised on the fast path — treat it as
        read-only.
        """
        if self._preorder is not None:
            return self._preorder
        order: List[int] = []
        stack: List[int] = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            for child in reversed(self.children[node]):
                stack.append(child)
        if fastpath.is_enabled():
            self._preorder = order
        return order

    def path_from_root(self, node: int) -> List[int]:
        """The tree path root -> ... -> node."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path


def build_tree_structure(forest: SpanningForest, root: int) -> TreeStructure:
    """Root the maintained tree ``T_root`` at ``root`` via BFS over marked edges."""
    if not forest.graph.has_node(root):
        raise ProtocolError(f"root {root} is not a node of the graph")
    parent: Dict[int, Optional[int]] = {root: None}
    children: Dict[int, List[int]] = {root: []}
    depth: Dict[int, int] = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for nbr in forest.marked_neighbors(node):
            if nbr in parent:
                continue
            parent[nbr] = node
            children[nbr] = []
            children[node].append(nbr)
            depth[nbr] = depth[node] + 1
            queue.append(nbr)
    return TreeStructure(root, parent, children, depth)


def build_tree_structure_csr(forest: SpanningForest, root: int) -> TreeStructure:
    """:func:`build_tree_structure` over the forest's flat marked columns.

    Identical output (same BFS order, parents, sorted children, depths) —
    the CSR rows preserve the sorted neighbour order — but reads the
    version-stamped :meth:`~repro.network.fragments.SpanningForest.marked_csr`
    snapshot instead of allocating one neighbour list per node, which is what
    makes whole-graph rebuilds at n >= 10^5 affordable.  The
    :class:`~repro.network.tree_cache.TreeStructureCache` dispatches here for
    large covering forests; counters derived from either structure are
    bit-identical.
    """
    if not forest.graph.has_node(root):
        raise ProtocolError(f"root {root} is not a node of the graph")
    ids, pos, indptr, neighbors = forest.marked_csr()
    parent: Dict[int, Optional[int]] = {root: None}
    children: Dict[int, List[int]] = {root: []}
    depth: Dict[int, int] = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        row = pos[node]
        node_depth = depth[node] + 1
        kids = children[node]
        for slot in range(indptr[row], indptr[row + 1]):
            nbr = neighbors[slot]
            if nbr in parent:
                continue
            parent[nbr] = node
            children[nbr] = []
            kids.append(nbr)
            depth[nbr] = node_depth
            queue.append(nbr)
    return TreeStructure(root, parent, children, depth)


# ---------------------------------------------------------------------- #
# delivery substrates
# ---------------------------------------------------------------------- #
class DeliverySubstrate:
    """How one logical tree-hop message is realised on the wire.

    The plain substrate (``None`` everywhere) is a direct CONGEST send: one
    message, the declared bit width, one round per hop — exactly the
    historical accounting.  A hardened substrate replaces each logical hop
    with a reliable-delivery protocol instance and charges *its* messages,
    bits and rounds instead (see
    :class:`repro.byzantine.substrate.BrachaSubstrate`).  Substrates only
    change the accounting: the values flowing through the broadcast are
    untouched, which is what makes "same tree, higher cost" a checkable
    contract.
    """

    name = "substrate"
    #: Wire rounds one logical hop costs (plain delivery: 1).
    rounds_per_hop = 1

    def charge_messages(
        self, accountant: MessageAccountant, count: int, size_bits: int, kind: str
    ) -> None:
        """Charge ``count`` logical messages of ``size_bits`` bits each."""
        raise NotImplementedError


#: A substrate builder: ``(n=..., **params) -> Optional[DeliverySubstrate]``.
SubstrateBuilder = Callable[..., Optional[DeliverySubstrate]]

_SUBSTRATES: Dict[str, SubstrateBuilder] = {}

#: The process-wide default substrate installed by :func:`delivery_substrate`.
_ACTIVE_SUBSTRATE: Optional[DeliverySubstrate] = None


def register_substrate(name: str) -> Callable[[SubstrateBuilder], SubstrateBuilder]:
    """Function decorator: publish a delivery-substrate builder under ``name``.

    Mirrors the fault/workload registries: builders take keyword parameters
    (at least ``n``, the system size) and return a
    :class:`DeliverySubstrate` — or ``None`` for the plain direct-send
    substrate, which keeps the executor on its historical bit-identical
    code path.
    """
    if not name or name != name.strip().lower():
        raise ProtocolError(f"substrate names must be non-empty lowercase, got {name!r}")

    def decorate(fn: SubstrateBuilder) -> SubstrateBuilder:
        if name in _SUBSTRATES and _SUBSTRATES[name] is not fn:
            raise ProtocolError(f"delivery substrate {name!r} is already registered")
        _SUBSTRATES[name] = fn
        return fn

    return decorate


def list_substrates() -> List[str]:
    """The registered delivery-substrate names, sorted."""
    return sorted(_SUBSTRATES)


def make_substrate(name: str, **params: Any) -> Optional[DeliverySubstrate]:
    """Build the substrate registered under ``name`` (``"plain"`` -> ``None``)."""
    try:
        builder = _SUBSTRATES[name]
    except KeyError:
        known = ", ".join(list_substrates()) or "<none>"
        raise ProtocolError(
            f"unknown delivery substrate {name!r}; registered substrates: {known}"
        ) from None
    return builder(**params)


@register_substrate("plain")
def _plain_substrate(**_params: Any) -> None:
    """Direct CONGEST sends: the historical, bit-identical accounting."""
    return None


@contextmanager
def delivery_substrate(substrate: Optional[DeliverySubstrate]) -> Iterator[None]:
    """Install ``substrate`` as the process-wide default for the block.

    Executors constructed without an explicit ``substrate`` consult the
    active default at charge time, so a whole algorithm run — including the
    executors it builds internally — can be hardened by wrapping it here.
    ``None`` (the plain substrate) makes the block a no-op.
    """
    global _ACTIVE_SUBSTRATE
    previous = _ACTIVE_SUBSTRATE
    _ACTIVE_SUBSTRATE = substrate
    try:
        yield
    finally:
        _ACTIVE_SUBSTRATE = previous


def active_substrate() -> Optional[DeliverySubstrate]:
    """The process-wide default substrate (``None`` = plain delivery)."""
    return _ACTIVE_SUBSTRATE


class BroadcastEchoExecutor:
    """Fast-path broadcast-and-echo with exact CONGEST accounting.

    ``substrate`` optionally names how each logical tree-hop message is
    realised on the wire (default: the plain direct send, or whatever
    :func:`delivery_substrate` installed for the surrounding block).
    """

    def __init__(
        self,
        graph: Graph,
        forest: SpanningForest,
        accountant: MessageAccountant,
        substrate: Optional[DeliverySubstrate] = None,
    ):
        self.graph = graph
        self.forest = forest
        self.accountant = accountant
        self.substrate = substrate

    def _substrate(self) -> Optional[DeliverySubstrate]:
        return self.substrate if self.substrate is not None else _ACTIVE_SUBSTRATE

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    def broadcast_and_echo(
        self,
        root: int,
        local_value: LocalValueFn,
        combine: CombineFn,
        broadcast_bits: int,
        echo_bits: int,
        tree: Optional[TreeStructure] = None,
        kind: str = "b&e",
    ) -> Any:
        """One broadcast-and-echo rooted at ``root``; returns the aggregate.

        Charges ``num_edges`` broadcast messages of ``broadcast_bits`` bits,
        ``num_edges`` echo messages of ``echo_bits`` bits, and
        ``2 × eccentricity`` rounds (the paper's time for one B&E).
        """
        structure = tree if tree is not None else self.forest.rooted_structure(root)
        self._charge(structure, broadcast_bits, echo_bits, kind)
        values: Dict[int, Any] = {}
        for node in structure.postorder():
            child_values = [values[child] for child in structure.children[node]]
            values[node] = combine(local_value(node), child_values)
        return values[structure.root]

    def broadcast_only(
        self,
        root: int,
        broadcast_bits: int,
        tree: Optional[TreeStructure] = None,
        kind: str = "bcast",
    ) -> TreeStructure:
        """A broadcast with no echo (e.g. "stop", "add edge", leader announce)."""
        structure = tree if tree is not None else self.forest.rooted_structure(root)
        substrate = self._substrate()
        if substrate is None:
            self.accountant.record_messages(structure.num_edges, broadcast_bits, kind=kind)
            self.accountant.record_rounds(structure.eccentricity)
        else:
            substrate.charge_messages(
                self.accountant, structure.num_edges, broadcast_bits, kind
            )
            self.accountant.record_rounds(
                substrate.rounds_per_hop * structure.eccentricity
            )
        return structure

    def broadcast_with_downward_state(
        self,
        root: int,
        initial_state: Any,
        propagate: Callable[[Any, int, int], Any],
        broadcast_bits: int,
        echo_bits: int,
        collect: Callable[[int, Any], Any],
        combine: CombineFn,
        tree: Optional[TreeStructure] = None,
        kind: str = "b&e",
    ) -> Any:
        """Broadcast-and-echo where the broadcast carries state down the tree.

        ``propagate(parent_state, parent, child)`` computes the state handed
        to ``child`` when the broadcast crosses the tree edge
        ``(parent, child)`` — e.g. the maximum edge weight seen on the path
        from the root, used by ``Insert`` (Section 3.2).  ``collect(node,
        state)`` produces the node's local echo value, which is aggregated
        with ``combine`` as usual.
        """
        structure = tree if tree is not None else self.forest.rooted_structure(root)
        self._charge(structure, broadcast_bits, echo_bits, kind)
        state: Dict[int, Any] = {structure.root: initial_state}
        for node in structure.preorder():  # parents first
            for child in structure.children[node]:
                state[child] = propagate(state[node], node, child)
        values: Dict[int, Any] = {}
        for node in structure.postorder():
            child_values = [values[child] for child in structure.children[node]]
            values[node] = combine(collect(node, state[node]), child_values)
        return values[structure.root]

    def point_to_point_along_edge(self, u: int, v: int, size_bits: int, kind: str = "p2p") -> None:
        """Charge a single message over the (graph) edge ``{u, v}``."""
        if not self.graph.has_edge(u, v):
            raise ProtocolError(f"no edge ({u}, {v}) to send along")
        substrate = self._substrate()
        if substrate is None:
            self.accountant.record_message(size_bits, kind=kind)
            self.accountant.record_rounds(1)
        else:
            substrate.charge_messages(self.accountant, 1, size_bits, kind)
            self.accountant.record_rounds(substrate.rounds_per_hop)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _charge(
        self, structure: TreeStructure, broadcast_bits: int, echo_bits: int, kind: str
    ) -> None:
        self.accountant.record_broadcast_echo()
        edges = structure.num_edges
        substrate = self._substrate()
        if substrate is None:
            self.accountant.record_messages(edges, broadcast_bits, kind=f"{kind}:bcast")
            self.accountant.record_messages(edges, echo_bits, kind=f"{kind}:echo")
            self.accountant.record_rounds(2 * structure.eccentricity)
        else:
            substrate.charge_messages(
                self.accountant, edges, broadcast_bits, f"{kind}:bcast"
            )
            substrate.charge_messages(self.accountant, edges, echo_bits, f"{kind}:echo")
            self.accountant.record_rounds(
                substrate.rounds_per_hop * 2 * structure.eccentricity
            )


# ---------------------------------------------------------------------- #
# Reference per-node protocol
# ---------------------------------------------------------------------- #
class BroadcastEchoProtocolNode(ProtocolNode):
    """Message-level broadcast-and-echo node (reference implementation).

    Every node knows its tree neighbours (its marked incident edges).  The
    designated root starts the broadcast in ``on_start``.  A node receiving
    the broadcast designates the sender as its parent and forwards to its
    other tree neighbours; leaves echo immediately; an internal node echoes
    once it has heard from all children, combining its local value with
    theirs.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Dict[int, int],
        tree_neighbors: List[int],
        is_root: bool,
        local_value: Any,
        combine: CombineFn,
        broadcast_bits: int,
        echo_bits: int,
    ) -> None:
        super().__init__(node_id, neighbors)
        self.tree_neighbors = list(tree_neighbors)
        self.is_root = is_root
        self.local_value = local_value
        self.combine = combine
        self.broadcast_bits = broadcast_bits
        self.echo_bits = echo_bits
        self.parent: Optional[int] = None
        self.pending_children: Set[int] = set()
        self.child_values: List[Any] = []
        self.result: Any = None
        self.done = False

    def on_start(self) -> None:
        if self.is_root:
            self.pending_children = set(self.tree_neighbors)
            if not self.pending_children:
                self.result = self.combine(self.local_value, [])
                self.done = True
                self.halt()
                return
            for nbr in self.tree_neighbors:
                self.send(nbr, "BCAST", size_bits=self.broadcast_bits)

    def on_message(self, message: Message) -> None:
        if message.kind == "BCAST":
            self._handle_broadcast(message.sender)
        elif message.kind == "ECHO":
            self._handle_echo(message.sender, message.payload)
        else:
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    def _handle_broadcast(self, sender: int) -> None:
        if self.parent is not None or self.is_root:
            raise ProtocolError(
                f"node {self.node_id} received a second broadcast (not a tree?)"
            )
        self.parent = sender
        self.pending_children = set(self.tree_neighbors) - {sender}
        if not self.pending_children:
            value = self.combine(self.local_value, [])
            self.send(sender, "ECHO", payload=value, size_bits=self.echo_bits)
            self.done = True
            self.halt()
            return
        for nbr in sorted(self.pending_children):
            self.send(nbr, "BCAST", size_bits=self.broadcast_bits)

    def _handle_echo(self, sender: int, value: Any) -> None:
        if sender not in self.pending_children:
            raise ProtocolError(
                f"node {self.node_id} received an unexpected echo from {sender}"
            )
        self.pending_children.discard(sender)
        self.child_values.append(value)
        if self.pending_children:
            return
        combined = self.combine(self.local_value, self.child_values)
        if self.is_root:
            self.result = combined
        else:
            assert self.parent is not None
            self.send(self.parent, "ECHO", payload=combined, size_bits=self.echo_bits)
        self.done = True
        self.halt()


def run_reference_broadcast_echo(
    graph: Graph,
    forest: SpanningForest,
    root: int,
    local_values: Dict[int, Any],
    combine: CombineFn,
    broadcast_bits: int,
    echo_bits: int,
    engine: str = "sync",
    scheduler=None,
) -> Tuple[Any, MessageAccountant]:
    """Run the per-node reference protocol and return (root value, accountant).

    ``engine`` is ``"sync"`` or ``"async"``.  Only the nodes of ``root``'s
    component participate actively, but every node of the graph gets a
    (possibly idle) protocol instance as both engines require full coverage.
    """
    from .async_simulator import AsynchronousSimulator
    from .sync_simulator import SynchronousSimulator

    component = forest.component_of(root)
    nodes = []
    for node_id in graph.nodes():
        neighbors = {nbr: graph.get_edge(node_id, nbr).weight for nbr in graph.neighbors(node_id)}
        tree_neighbors = forest.marked_neighbors(node_id) if node_id in component else []
        nodes.append(
            BroadcastEchoProtocolNode(
                node_id=node_id,
                neighbors=neighbors,
                tree_neighbors=tree_neighbors,
                is_root=(node_id == root),
                local_value=local_values.get(node_id),
                combine=combine,
                broadcast_bits=broadcast_bits,
                echo_bits=echo_bits,
            )
        )
    if engine == "sync":
        sim: Any = SynchronousSimulator(graph)
    elif engine == "async":
        sim = AsynchronousSimulator(graph, scheduler=scheduler)
    else:
        raise SimulationError(f"unknown engine {engine!r}")
    sim.register_all(nodes)
    sim.run()
    root_node = sim.nodes[root]
    return root_node.result, sim.accountant
