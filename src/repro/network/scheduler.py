"""Delivery schedulers for the asynchronous engine.

The asynchronous CONGEST model only guarantees that every message is
*eventually* delivered.  Correctness of the paper's repair algorithms must
therefore not depend on delivery order.  The schedulers below let tests and
benchmarks exercise a protocol under different adversaries:

* :class:`FifoScheduler` — messages delivered in send order (the friendliest
  schedule; equivalent to a synchronous execution for many protocols).
* :class:`RandomScheduler` — each delivery picks a uniformly random pending
  message (a common model of an oblivious adversary).
* :class:`LifoScheduler` — always delivers the most recently sent message
  first (a simple adaptive-looking adversary that tends to starve old
  messages as long as new ones keep arriving).
* :class:`EdgeDelayScheduler` — assigns each edge a fixed integer delay and
  delivers in (send time + delay) order, modelling heterogeneous links.

Each scheduler also has a :meth:`~Scheduler.from_params` constructor that
accepts plain JSON-friendly data (so a ``ScheduleSpec`` can name a scheduler
in a serialised experiment description), and :func:`make_scheduler` builds
any of them by their registered short name (``fifo`` / ``lifo`` / ``random``
/ ``edge-delay``).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .errors import SimulationError
from .graph import edge_key
from .message import Message

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "EdgeDelayScheduler",
    "SCHEDULERS",
    "list_schedulers",
    "make_scheduler",
]


def _reject_unknown(cls_name: str, params: Mapping[str, Any], known: Tuple[str, ...]) -> None:
    unknown = set(params) - set(known)
    if unknown:
        raise SimulationError(
            f"{cls_name} does not accept parameters {sorted(unknown)}; "
            f"known parameters: {sorted(known) or '<none>'}"
        )


class Scheduler:
    """Interface: a queue of pending messages with a pluggable pop order."""

    def push(self, message: Message) -> None:
        raise NotImplementedError

    def pop(self) -> Message:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def from_params(cls, **params: Any) -> "Scheduler":
        """Build the scheduler from plain (JSON-friendly) keyword data."""
        _reject_unknown(cls.__name__, params, ())
        return cls()


class FifoScheduler(Scheduler):
    """Deliver messages in the order they were submitted."""

    def __init__(self) -> None:
        self._queue: List[Message] = []
        self._head = 0

    def push(self, message: Message) -> None:
        self._queue.append(message)

    def pop(self) -> Message:
        if self.empty():
            raise SimulationError("no pending messages")
        message = self._queue[self._head]
        self._head += 1
        if self._head > 1024 and self._head * 2 > len(self._queue):
            # Compact occasionally so memory stays proportional to the backlog.
            self._queue = self._queue[self._head:]
            self._head = 0
        return message

    def __len__(self) -> int:
        return len(self._queue) - self._head


class LifoScheduler(Scheduler):
    """Always deliver the most recently submitted message first."""

    def __init__(self) -> None:
        self._stack: List[Message] = []

    def push(self, message: Message) -> None:
        self._stack.append(message)

    def pop(self) -> Message:
        if not self._stack:
            raise SimulationError("no pending messages")
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class RandomScheduler(Scheduler):
    """Deliver a uniformly random pending message at each step."""

    def __init__(self, rng: Optional[random.Random] = None, seed: Optional[int] = None):
        if rng is not None and seed is not None:
            raise SimulationError("pass either rng or seed, not both")
        self._rng = rng if rng is not None else random.Random(seed)
        self._pending: List[Message] = []

    @classmethod
    def from_params(cls, **params: Any) -> "RandomScheduler":
        _reject_unknown(cls.__name__, params, ("seed",))
        return cls(seed=params.get("seed"))

    def push(self, message: Message) -> None:
        self._pending.append(message)

    def pop(self) -> Message:
        if not self._pending:
            raise SimulationError("no pending messages")
        index = self._rng.randrange(len(self._pending))
        self._pending[index], self._pending[-1] = (
            self._pending[-1],
            self._pending[index],
        )
        return self._pending.pop()

    def __len__(self) -> int:
        return len(self._pending)


class EdgeDelayScheduler(Scheduler):
    """Deliver messages in order of (send sequence + fixed per-edge delay).

    Per-edge delays model heterogeneous link latencies.  Unknown edges get
    ``default_delay``.  Ties break on submission order so the schedule is
    deterministic given the delays.
    """

    def __init__(
        self,
        delays: Optional[Dict[Tuple[int, int], int]] = None,
        default_delay: int = 1,
    ) -> None:
        if default_delay < 0:
            raise SimulationError("delays must be non-negative")
        self._delays = {}
        for (u, v), delay in (delays or {}).items():
            if delay < 0:
                raise SimulationError("delays must be non-negative")
            self._delays[edge_key(u, v)] = delay
        self._default_delay = default_delay
        self._pending: List[Tuple[int, int, Message]] = []
        self._counter = 0

    @classmethod
    def from_params(cls, **params: Any) -> "EdgeDelayScheduler":
        _reject_unknown(cls.__name__, params, ("delays", "default_delay"))
        return cls(
            delays=_decode_delays(params.get("delays")),
            default_delay=params.get("default_delay", 1),
        )

    def push(self, message: Message) -> None:
        delay = self._delays.get(
            edge_key(message.sender, message.receiver), self._default_delay
        )
        # A binary heap replaces the old linear min-scan per pop; submission
        # counters are unique, so (delivery time, counter) keys are total and
        # the delivery order is identical to the scan's.
        heapq.heappush(self._pending, (self._counter + delay, self._counter, message))
        self._counter += 1

    def pop(self) -> Message:
        if not self._pending:
            raise SimulationError("no pending messages")
        return heapq.heappop(self._pending)[2]

    def __len__(self) -> int:
        return len(self._pending)


# ---------------------------------------------------------------------- #
# construction by name
# ---------------------------------------------------------------------- #
#: Registered scheduler names, as used by ``ScheduleSpec`` and the CLI.
SCHEDULERS: Dict[str, type] = {
    "fifo": FifoScheduler,
    "lifo": LifoScheduler,
    "random": RandomScheduler,
    "edge-delay": EdgeDelayScheduler,
}

#: The registry is closed at import time, so the sorted name list is
#: computed once here instead of on every list_schedulers()/CLI call.
_SCHEDULER_NAMES: Tuple[str, ...] = tuple(sorted(SCHEDULERS))


def _decode_delays(
    delays: Union[None, Mapping[Any, int], List[Any]]
) -> Optional[Dict[Tuple[int, int], int]]:
    """Accept per-edge delays as tuple keys, ``"u-v"`` strings or triples.

    JSON objects cannot have tuple keys, so serialised specs carry either a
    ``{"u-v": delay}`` mapping or a ``[[u, v, delay], ...]`` list; in-process
    callers may keep passing ``{(u, v): delay}`` directly.
    """
    if delays is None:
        return None
    decoded: Dict[Tuple[int, int], int] = {}
    if isinstance(delays, Mapping):
        for key, delay in delays.items():
            if isinstance(key, str):
                u, _, v = key.partition("-")
                try:
                    key = (int(u), int(v))
                except ValueError:
                    raise SimulationError(
                        f"edge-delay keys must look like 'u-v', got {key!r}"
                    ) from None
            decoded[edge_key(*key)] = int(delay)
        return decoded
    for entry in delays:
        if len(entry) != 3:
            raise SimulationError(
                f"edge-delay entries must be [u, v, delay] triples, got {entry!r}"
            )
        u, v, delay = entry
        decoded[edge_key(int(u), int(v))] = int(delay)
    return decoded


def list_schedulers() -> List[str]:
    """The registered scheduler names, sorted."""
    return list(_SCHEDULER_NAMES)


def make_scheduler(name: str, **params: Any) -> Scheduler:
    """Build a scheduler by registered name from JSON-friendly parameters.

    >>> make_scheduler("random", seed=7)  # doctest: +ELLIPSIS
    <repro.network.scheduler.RandomScheduler object at ...>
    """
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(list_schedulers())
        raise SimulationError(
            f"unknown scheduler {name!r}; registered schedulers: {known}"
        ) from None
    return cls.from_params(**params)
