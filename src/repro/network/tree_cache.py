"""Cached rooted tree structures, patched incrementally across mutations.

Every KKT procedure starts by rooting the maintained tree at its initiator
(:func:`~repro.network.broadcast.build_tree_structure`) — a full BFS over the
marked subgraph.  Between two procedure calls the forest typically changed by
at most one or two marked edges (one ``Add Edge`` per fragment per Borůvka
phase, one delete + one replacement per repair), so rebuilding from scratch
is almost always wasted work.

:class:`TreeStructureCache` keeps the most recently used rooted structures
and brings a stale one up to date by replaying the forest's mutation journal
(see :meth:`~repro.network.fragments.SpanningForest.journal_since`):

* ``mark(u, v)`` with exactly one endpoint in the structure **grafts** the
  other endpoint's component under it (a BFS of just the attached part);
* ``unmark(u, v)`` of a structure edge **detaches** the child subtree;
* anything that cannot be patched safely — a mark closing a cycle (Build-ST
  phases do this), an unmark of a non-structure cycle edge, a ``clear()``,
  or a journal that no longer reaches back far enough — falls back to a full
  rebuild.

Because a tree has unique paths, the patched structure is *identical* (same
parents, sorted children lists, depths) to what a fresh BFS from the root
would produce, so counters derived from it (edge count, eccentricity) are
bit-for-bit the same as on the reference path.

:func:`rooted_tree` is the front door: it returns a cached structure on the
fast path and a fresh rebuild when :mod:`repro.fastpath` is disabled.
"""

from __future__ import annotations

from bisect import insort
from collections import OrderedDict, deque
from typing import Dict, List, Optional

from .. import fastpath
from .broadcast import TreeStructure, build_tree_structure, build_tree_structure_csr
from .fragments import SpanningForest

__all__ = ["TreeStructureCache", "rooted_tree"]


class _Entry:
    __slots__ = ("version", "structure")

    def __init__(self, version: int, structure: TreeStructure) -> None:
        self.version = version
        self.structure = structure


class TreeStructureCache:
    """LRU cache of rooted :class:`TreeStructure` views of one forest."""

    def __init__(self, forest: SpanningForest, max_entries: int = 16) -> None:
        self.forest = forest
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.hits = 0
        self.rebuilds = 0
        self.patches = 0
        self.journal_overruns = 0

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def get(self, root: int) -> TreeStructure:
        """The rooted structure of ``T_root``, patched up to date."""
        version = self.forest.version
        entry = self._entries.get(root)
        if entry is not None:
            if entry.version == version:
                self._entries.move_to_end(root)
                self.hits += 1
                return entry.structure
            if self._patch(entry):
                entry.version = version
                self._entries.move_to_end(root)
                self.hits += 1
                self.patches += 1
                return entry.structure
            del self._entries[root]
        structure = self._build(root)
        self.rebuilds += 1
        self._entries[root] = _Entry(version, structure)
        self._entries.move_to_end(root)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return structure

    def _build(self, root: int) -> TreeStructure:
        """Full rebuild: flat-column BFS when the forest covers the graph.

        Dispatch is wall-clock-only (both builders produce identical
        structures); ``num_marked + 1`` bounds the size of the largest
        maintained tree from above, so small-fragment rebuilds keep the
        per-node path and skip the whole-graph CSR snapshot.
        """
        forest = self.forest
        if fastpath.should_batch(forest.num_marked + 1, forest.graph.num_nodes):
            return build_tree_structure_csr(forest, root)
        return build_tree_structure(forest, root)

    def invalidate(self) -> None:
        """Drop every cached structure (used by tests)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for tuning large-n runs.

        ``journal_overruns`` counts patch attempts abandoned because the
        forest's bounded journal no longer reached back to the cached
        version — persistent overruns mean ``REPRO_JOURNAL_LIMIT`` (or the
        forest's ``journal_limit``) is too small for the workload and every
        such lookup paid a full rebuild.
        """
        return {
            "hits": self.hits,
            "patches": self.patches,
            "rebuilds": self.rebuilds,
            "journal_overruns": self.journal_overruns,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "journal_limit": self.forest.journal_limit,
        }

    # ------------------------------------------------------------------ #
    # journal replay
    # ------------------------------------------------------------------ #
    def _patch(self, entry: _Entry) -> bool:
        """Replay journal mutations onto ``entry``; False means rebuild."""
        ops = self.forest.journal_since(entry.version)
        if ops is None:
            self.journal_overruns += 1
            return False
        structure = entry.structure
        touched = False
        for _, op, u, v in ops:
            if op == "mark":
                outcome = self._apply_mark(structure, u, v)
            elif op == "unmark":
                outcome = self._apply_unmark(structure, u, v)
            else:  # "clear" (or anything unknown): never patchable
                outcome = None
            if outcome is None:
                return False
            touched = touched or outcome
        if touched:
            structure.invalidate_orders()
        return True

    def _apply_mark(self, structure: TreeStructure, u: int, v: int) -> Optional[bool]:
        parent = structure.parent
        in_u, in_v = u in parent, v in parent
        if in_u and in_v:
            if parent.get(u) == v or parent.get(v) == u:
                # A graft BFS earlier in the replay already pulled this edge
                # in as a structure edge; the mark is consistent, nothing to do.
                return False
            return None  # cycle-closing mark (Build-ST): rebuild
        if not in_u and not in_v:
            return False  # a different component: this entry is unaffected
        return self._graft(structure, u if in_u else v, v if in_u else u)

    def _apply_unmark(self, structure: TreeStructure, u: int, v: int) -> Optional[bool]:
        parent = structure.parent
        in_u, in_v = u in parent, v in parent
        if not in_u and not in_v:
            return False  # a different component: this entry is unaffected
        if in_u != in_v:
            return None  # inconsistent with the cached view: rebuild
        if parent.get(u) == v:
            return self._detach(structure, u)
        if parent.get(v) == u:
            return self._detach(structure, v)
        return None  # a cycle edge of the component: rebuild

    # ------------------------------------------------------------------ #
    # structure surgery
    # ------------------------------------------------------------------ #
    def _graft(self, structure: TreeStructure, anchor: int, start: int) -> Optional[bool]:
        """Attach ``start``'s marked component below ``anchor``.

        BFS order and sorted children insertion mirror
        :func:`build_tree_structure` exactly, so the patched structure equals
        a rebuild.  Returns ``None`` (rebuild) if the BFS runs into a node
        already present — a back-edge the journal will explain later, but
        safe handling is to start over.
        """
        parent, children, depth = structure.parent, structure.children, structure.depth
        insort(children[anchor], start)
        parent[start] = anchor
        children[start] = []
        depth[start] = depth[anchor] + 1
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nbr in self.forest.marked_neighbors(node):
                if nbr == parent[node]:
                    continue
                if nbr in parent:
                    return None
                parent[nbr] = node
                children[node].append(nbr)
                children[nbr] = []
                depth[nbr] = depth[node] + 1
                queue.append(nbr)
        return True

    def _detach(self, structure: TreeStructure, child: int) -> Optional[bool]:
        """Remove the subtree rooted at ``child`` from the structure.

        If the component was cyclic, the "detached" nodes may still hang off
        the remaining tree through a cycle edge; in that case a fresh BFS
        would keep (and re-depth) them, so patching is unsound and ``None``
        (rebuild) is returned.  The check also conservatively catches edges
        marked later in the journal, which a subsequent replay op would
        otherwise have to reconcile.
        """
        parent, children, depth = structure.parent, structure.children, structure.depth
        children[parent[child]].remove(child)  # type: ignore[index]
        removed: List[int] = []
        stack: List[int] = [child]
        while stack:
            node = stack.pop()
            stack.extend(children[node])
            removed.append(node)
            del parent[node]
            del children[node]
            del depth[node]
        for node in removed:
            for nbr in self.forest.marked_neighbors(node):
                if nbr in parent:
                    return None
        return True


def rooted_tree(forest: SpanningForest, root: int) -> TreeStructure:
    """Rooted structure of ``T_root``: cached fast path, rebuilt otherwise."""
    if not fastpath.is_enabled():
        return build_tree_structure(forest, root)
    return forest.structures.get(root)
