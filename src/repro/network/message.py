"""Messages exchanged in the CONGEST simulator.

In the CONGEST model a message carries ``O(log(n + u))`` bits.  Every message
sent through either simulation engine is an instance of :class:`Message` and
declares its size in bits, so that the accounting layer can report both
message counts and total bits.  The bit size is *declared* rather than derived
from the Python payload: the payload is a convenience for the simulation
(hash-function seeds are passed as objects, for example), while ``size_bits``
records what the real protocol would put on the wire — the paper is explicit
about those widths (e.g. the echo of ``TestOut`` is a single bit, Lemma 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

__all__ = ["Message", "message_bits_for_value"]

_SEQUENCE = itertools.count()


def message_bits_for_value(value: int) -> int:
    """Number of bits needed to transmit the non-negative integer ``value``."""
    if value < 0:
        raise ValueError("message values must be non-negative integers")
    return max(1, int(value).bit_length())


@dataclass
class Message:
    """A single CONGEST message travelling over one edge.

    Attributes
    ----------
    sender, receiver:
        Node IDs of the endpoints of the edge the message traverses.
    kind:
        A short protocol-specific tag (e.g. ``"BCAST"``, ``"ECHO"``,
        ``"TEST"``); used by per-node protocol handlers to dispatch.
    payload:
        Arbitrary simulation payload.  Not used for accounting.
    size_bits:
        The number of bits this message would occupy on the wire.
    send_time:
        Simulation time (round number or event time) at which it was sent;
        filled in by the engines.
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None
    size_bits: int = 1
    send_time: Optional[float] = None
    sequence: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if self.size_bits < 1:
            raise ValueError("every message carries at least one bit")

    def clone(self) -> "Message":
        """A fresh copy of this message, as if the same content were re-sent.

        The copy carries the identical wire content (endpoints, kind, payload
        reference, declared bit size — and any field added in the future,
        via :func:`dataclasses.replace`) but is a *new* send: it gets its own
        sequence number and an unset ``send_time`` for the engine to stamp.
        This is what the fault layer uses for duplicated and replayed
        deliveries.
        """
        return replace(self, send_time=None, sequence=next(_SEQUENCE))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.sender}->{self.receiver}, kind={self.kind!r}, "
            f"bits={self.size_bits})"
        )
