"""Leader election on a tree fragment, and the cycle detection it doubles as.

Section 3.3 of the paper elects a fragment leader with a saturation-style
algorithm (echoes started by the leaves, as in Korach–Rotem–Santoro [18]):

* every leaf "acts as if it has just received a broadcast" and sends an echo
  to its only tree neighbour;
* an internal node that has received echoes from all but one of its tree
  neighbours sends an echo to that last neighbour;
* the echoes converge either on a single node (one median), which becomes the
  leader, or on two neighbouring nodes that send to each other, in which case
  the one with the higher ID becomes the leader.

Message cost: every node except a single-median leader sends exactly one
echo, so a fragment of ``s`` nodes uses ``s - 1`` messages (one median) or
``s`` messages (two medians); announcing the leader back to the fragment is
one broadcast of ``s - 1`` messages.

Section 4.2 reuses the same process for *cycle detection* in Build-ST: if the
marked component contains a cycle, the saturation stalls and the nodes on the
cycle are exactly those that never hear from all-but-one of their neighbours.
:func:`detect_cycle` reports them (and the messages spent by the stalled
saturation are still charged).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .accounting import MessageAccountant
from .errors import ForestError
from .fragments import SpanningForest
from .graph import edge_key
from .message import message_bits_for_value

__all__ = ["ElectionResult", "elect_leader", "detect_cycle"]


class ElectionResult:
    """Outcome of a leader election / cycle detection pass on one component."""

    def __init__(
        self,
        leader: Optional[int],
        cycle_nodes: List[int],
        messages: int,
        rounds: int,
    ) -> None:
        self.leader = leader
        self.cycle_nodes = cycle_nodes
        self.messages = messages
        self.rounds = rounds

    @property
    def has_cycle(self) -> bool:
        return bool(self.cycle_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ElectionResult(leader={self.leader}, cycle={self.cycle_nodes}, "
            f"messages={self.messages}, rounds={self.rounds})"
        )


def _saturation(
    adjacency: Dict[int, Set[int]],
) -> Tuple[Optional[int], List[int], int, int]:
    """Simulate leaf-initiated saturation on the (possibly cyclic) subgraph.

    Returns ``(leader, cycle_nodes, messages, rounds)``.  The simulation
    processes nodes level by level exactly as the distributed execution
    would: in each round, every node that has heard from all but one
    neighbour (and has not sent yet) sends to that neighbour.
    """
    if len(adjacency) == 1:
        only = next(iter(adjacency))
        return only, [], 0, 0

    pending: Dict[int, Set[int]] = {node: set(nbrs) for node, nbrs in adjacency.items()}
    sent: Set[int] = set()
    received_all: Dict[int, Set[int]] = {node: set() for node in adjacency}
    messages = 0
    rounds = 0
    meeting_pairs: List[Tuple[int, int]] = []

    while True:
        # Nodes ready to send: have not sent, and exactly one neighbour has
        # not yet echoed to them.
        senders = [
            node
            for node in sorted(adjacency)
            if node not in sent and len(pending[node] - received_all[node]) == 1
        ]
        if not senders:
            break
        rounds += 1
        deliveries: List[Tuple[int, int]] = []
        for node in senders:
            target = next(iter(pending[node] - received_all[node]))
            deliveries.append((node, target))
            sent.add(node)
            messages += 1
        for sender, target in deliveries:
            received_all[target].add(sender)
            if sender in received_all and target in received_all[sender] and target in sent:
                meeting_pairs.append(tuple(sorted((sender, target))))  # type: ignore[arg-type]

    # Nodes that heard from every neighbour without sending are single medians.
    full_receivers = [
        node for node in sorted(adjacency) if received_all[node] == pending[node]
    ]
    single_medians = [node for node in full_receivers if node not in sent]

    if single_medians:
        return single_medians[0], [], messages, rounds
    if meeting_pairs:
        pair = sorted(set(meeting_pairs))[0]
        return max(pair), [], messages, rounds

    # Saturation stalled: the nodes that never became ready form the 2-core,
    # i.e. the cycle (plus anything hanging between cycles, impossible here
    # since at most one cycle can exist per Build-ST phase component).
    stuck = sorted(node for node in adjacency if node not in sent and node not in single_medians)
    return None, stuck, messages, rounds


def elect_leader(
    forest: SpanningForest,
    component: Iterable[int],
    accountant: Optional[MessageAccountant] = None,
    announce: bool = True,
) -> ElectionResult:
    """Elect a leader in the maintained tree spanning ``component``.

    Raises :class:`ForestError` if the component's marked subgraph is not a
    tree (use :func:`detect_cycle` when cycles are expected).  When
    ``announce`` is true, the cost of broadcasting the leader's identity to
    the fragment is charged as well.
    """
    nodes = sorted(set(component))
    adjacency = {
        node: set(nbrs) for node, nbrs in forest.tree_adjacency(nodes).items()
    }
    num_edges = sum(len(nbrs) for nbrs in adjacency.values()) // 2
    if num_edges != len(nodes) - 1:
        raise ForestError(
            "leader election requires a tree; use detect_cycle for cyclic components"
        )
    leader, cycle, messages, rounds = _saturation(adjacency)
    assert leader is not None and not cycle
    announce_messages = 0
    announce_rounds = 0
    if announce and len(nodes) > 1:
        announce_messages = len(nodes) - 1
        announce_rounds = _eccentricity(adjacency, leader)
    total_messages = messages + announce_messages
    total_rounds = rounds + announce_rounds
    if accountant is not None:
        id_bits = message_bits_for_value(max(nodes))
        if messages:
            accountant.record_messages(messages, id_bits, kind="election:echo")
        if announce_messages:
            accountant.record_messages(announce_messages, id_bits, kind="election:announce")
        accountant.record_rounds(total_rounds)
    return ElectionResult(leader, [], total_messages, total_rounds)


def detect_cycle(
    forest: SpanningForest,
    component: Iterable[int],
    accountant: Optional[MessageAccountant] = None,
) -> ElectionResult:
    """Run the saturation pass on a possibly-cyclic marked component.

    Returns an :class:`ElectionResult` whose ``cycle_nodes`` is non-empty iff
    the component's marked subgraph contains a cycle; in that case ``leader``
    is ``None``.  The messages spent by the stalled saturation are charged.
    """
    nodes = sorted(set(component))
    adjacency = {
        node: set(nbrs) for node, nbrs in forest.tree_adjacency(nodes).items()
    }
    leader, cycle, messages, rounds = _saturation(adjacency)
    if accountant is not None and nodes:
        id_bits = message_bits_for_value(max(nodes))
        if messages:
            accountant.record_messages(messages, id_bits, kind="election:echo")
        accountant.record_rounds(rounds)
    return ElectionResult(leader, cycle, messages, rounds)


def _eccentricity(adjacency: Dict[int, Set[int]], source: int) -> int:
    """BFS eccentricity of ``source`` in the adjacency map."""
    depth = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in adjacency[node]:
            if nbr not in depth:
                depth[nbr] = depth[node] + 1
                queue.append(nbr)
    return max(depth.values(), default=0)
