"""Synchronous round-based CONGEST engine.

All nodes share a global clock.  In each round every node may send one
message to each of its neighbours; all messages sent in round ``r`` are
delivered at the beginning of round ``r + 1``.  This is exactly the model of
Theorem 1.1 (synchronous construction, all nodes start in the same round).

The engine is used directly for the message-level protocols (flooding,
reference broadcast-and-echo) and in tests that validate the fragment-level
executor's accounting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from .accounting import MessageAccountant
from .errors import SimulationError
from .graph import Graph
from .message import Message
from .node import ProtocolNode

__all__ = ["SynchronousSimulator"]


class SynchronousSimulator:
    """Round-based engine for per-node protocols.

    Parameters
    ----------
    graph:
        The communication graph.  Node protocols may only send along its edges.
    accountant:
        Message accountant; a fresh one is created when omitted.
    max_rounds:
        Safety valve against non-terminating protocols.
    """

    def __init__(
        self,
        graph: Graph,
        accountant: Optional[MessageAccountant] = None,
        max_rounds: int = 1_000_000,
    ) -> None:
        self.graph = graph
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self.max_rounds = max_rounds
        self._nodes: Dict[int, ProtocolNode] = {}
        self._outbox: List[Message] = []
        self._round = 0
        self._started = False
        # Registration order is stable once start() runs; the sorted node
        # list is computed once there instead of once per round in step().
        self._node_order: List[int] = []

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def register(self, node: ProtocolNode) -> None:
        """Register a protocol node; its ID must exist in the graph."""
        if not self.graph.has_node(node.node_id):
            raise SimulationError(f"node {node.node_id} is not in the graph")
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        node.attach(self)
        self._nodes[node.node_id] = node

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    @property
    def nodes(self) -> Dict[int, ProtocolNode]:
        return dict(self._nodes)

    @property
    def current_round(self) -> int:
        return self._round

    # ------------------------------------------------------------------ #
    # engine interface used by ProtocolNode.send
    # ------------------------------------------------------------------ #
    def submit(self, message: Message) -> None:
        if message.receiver not in self._nodes:
            raise SimulationError(
                f"message addressed to unregistered node {message.receiver}"
            )
        if not self.graph.has_edge(message.sender, message.receiver):
            raise SimulationError(
                f"no edge ({message.sender}, {message.receiver}) in the graph"
            )
        message.send_time = self._round
        self._outbox.append(message)
        self.accountant.record_message(message.size_bits, kind=message.kind)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Call every node's ``on_start`` (round 0 sends happen here)."""
        if self._started:
            raise SimulationError("simulation already started")
        if set(self._nodes) != set(self.graph.nodes()):
            missing = set(self.graph.nodes()) - set(self._nodes)
            raise SimulationError(f"nodes without a protocol: {sorted(missing)}")
        self._started = True
        self._node_order = sorted(self._nodes)
        for node_id in self._node_order:
            self._nodes[node_id].on_start()

    def step(self) -> int:
        """Run one round: deliver last round's messages.  Returns #delivered."""
        if not self._started:
            raise SimulationError("call start() before step()")
        deliveries = self._outbox
        self._outbox = []
        self._round += 1
        self.accountant.record_rounds(1)

        per_node: Dict[int, List[Message]] = defaultdict(list)
        for message in deliveries:
            per_node[message.receiver].append(message)

        for node_id in self._node_order:
            self._nodes[node_id].on_round_begin(self._round)
        for node_id in sorted(per_node):
            node = self._nodes[node_id]
            for message in per_node[node_id]:
                node.on_message(message)
        return len(deliveries)

    def run(self, until_quiescent: bool = True, rounds: Optional[int] = None) -> int:
        """Run the simulation.

        With ``until_quiescent`` (the default) rounds are executed until no
        message is in flight; otherwise exactly ``rounds`` rounds are run.
        Returns the number of rounds executed.
        """
        if not self._started:
            self.start()
        executed = 0
        if rounds is not None:
            for _ in range(rounds):
                self.step()
                executed += 1
            return executed
        if not until_quiescent:
            raise SimulationError("specify rounds= when until_quiescent is False")
        while self._outbox:
            if executed >= self.max_rounds:
                raise SimulationError(
                    f"protocol did not quiesce within {self.max_rounds} rounds"
                )
            self.step()
            executed += 1
        return executed

    def all_halted(self) -> bool:
        return all(node.halted for node in self._nodes.values())
