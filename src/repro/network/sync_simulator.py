"""Synchronous round-based CONGEST engine — a facade over the event kernel.

All nodes share a global clock.  In each round every node may send one
message to each of its neighbours; all messages sent in round ``r`` are
delivered at the beginning of round ``r + 1``.  This is exactly the model of
Theorem 1.1 (synchronous construction, all nodes start in the same round).

Since the unified-kernel refactor this class is a thin facade: the
simulation core (registration, validation, the delivery loop, round
accounting, the fault boundary) lives in :mod:`repro.network.kernel`, with
synchrony expressed as the :class:`~repro.network.kernel.RoundSynchrony`
policy.  This module only maps the historical API (``step`` / ``run`` /
``current_round`` / ``max_rounds``) onto the kernel.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .accounting import MessageAccountant
from .errors import SimulationError
from .graph import Graph
from .kernel import EventKernel, RoundSynchrony

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

__all__ = ["SynchronousSimulator"]


class SynchronousSimulator(EventKernel):
    """Round-based engine for per-node protocols.

    Parameters
    ----------
    graph:
        The communication graph.  Node protocols may only send along its edges.
    accountant:
        Message accountant; a fresh one is created when omitted.
    max_rounds:
        Safety valve against non-terminating protocols.
    faults:
        Optional :class:`~repro.network.faults.FaultInjector` applied at the
        kernel's delivery boundary (``None`` = fault-free execution).
    """

    def __init__(
        self,
        graph: Graph,
        accountant: Optional[MessageAccountant] = None,
        max_rounds: int = 1_000_000,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        super().__init__(
            graph,
            RoundSynchrony(),
            accountant=accountant,
            max_steps=max_rounds,
            faults=faults,
        )

    @property
    def max_rounds(self) -> int:
        return self.max_steps

    @property
    def current_round(self) -> int:
        return self.synchrony.round

    def step(self) -> int:
        """Run one round: deliver last round's messages.  Returns #delivered."""
        if not self._started:
            raise SimulationError("call start() before step()")
        return self.synchrony.deliver_next()

    def run(self, until_quiescent: bool = True, rounds: Optional[int] = None) -> int:
        """Run the simulation.

        With ``until_quiescent`` (the default) rounds are executed until no
        message is in flight; otherwise exactly ``rounds`` rounds are run.
        Returns the number of rounds executed.
        """
        if not self._started:
            self.start()
        if rounds is not None:
            executed = 0
            for _ in range(rounds):
                self.step()
                executed += 1
            return executed
        if not until_quiescent:
            raise SimulationError("specify rounds= when until_quiescent is False")
        return self.run_to_quiescence()
