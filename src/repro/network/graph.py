"""Weighted undirected communication graphs for the CONGEST model.

The paper's conventions (Section 1 and "Definitions") are implemented here:

* every node has a unique integer ID drawn from ``[1, 2^id_bits)``;
* an edge ``{u, v}``'s *edge number* is the concatenation of its endpoint IDs,
  smallest first: ``(min(u, v) << id_bits) | max(u, v)``;
* a *unique weight* (called the *augmented weight* throughout this package)
  is the original integer weight concatenated in front of the edge number:
  ``(weight << 2 * id_bits) | edge_number``.  Because edge numbers are unique,
  augmented weights are distinct even when raw weights collide, which is what
  makes the MST unique and lets ``FindMin`` identify an edge from its
  augmented weight alone.

The class is deliberately small and explicit: it stores an adjacency map of
:class:`Edge` objects and offers the dynamic operations the repair algorithms
need (insert, delete, change weight).  Everything a *node* is allowed to know
in the KT1 CONGEST model — its own ID, its incident edges, their weights and
the IDs of the other endpoints — is available through :meth:`Graph.neighbors`
and :meth:`Graph.incident_edges`; algorithms in :mod:`repro.core` only touch
the graph through those node-local views plus the broadcast-and-echo
primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from .columnar import ColumnarGraph
from .errors import GraphError

__all__ = ["Edge", "Graph", "IncidentArrays", "edge_key"]


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (smallest-first) key for the edge ``{u, v}``."""
    if u == v:
        raise GraphError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge with canonical endpoint order ``u < v``."""

    u: int
    v: int
    weight: int = 1

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise GraphError(
                f"Edge endpoints must satisfy u < v, got ({self.u}, {self.v})"
            )
        if self.weight < 0:
            raise GraphError(f"Edge weights must be non-negative, got {self.weight}")

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node} is not an endpoint of {self}")

    def edge_number(self, id_bits: int) -> int:
        """Concatenation of the endpoint IDs, smallest first (paper, §1)."""
        return (self.u << id_bits) | self.v

    def augmented_weight(self, id_bits: int) -> int:
        """Unique weight: the weight concatenated in front of the edge number."""
        return (self.weight << (2 * id_bits)) | self.edge_number(id_bits)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{{{self.u},{self.v}}}(w={self.weight})"


class IncidentArrays(NamedTuple):
    """Precomputed node-local sketch inputs for one node (fast path).

    The sketch kernels consume, for every incident edge of a node, its edge
    number, its augmented weight and its orientation (whether the node is the
    smaller endpoint, i.e. the edge counts towards ``E↑``).  Recomputing
    those per broadcast-and-echo dominated the profile, so they are computed
    once per node per graph :attr:`~Graph.version` and cached on the graph.
    Entries are parallel tuples sorted by the other endpoint's ID, matching
    :meth:`Graph.incident_edges` order exactly.
    """

    edges: Tuple[Edge, ...]
    numbers: Tuple[int, ...]
    augmented: Tuple[int, ...]
    up: Tuple[bool, ...]
    max_number: int
    max_augmented: int
    #: The same incident edges re-sorted by augmented weight (with parallel
    #: edge-number / orientation arrays), so weight-windowed kernels can
    #: bisect to the qualifying span instead of scanning the full degree.
    aug_sorted: Tuple[int, ...]
    numbers_by_aug: Tuple[int, ...]
    up_by_aug: Tuple[bool, ...]


class Graph:
    """A dynamic, weighted, undirected communication graph.

    Parameters
    ----------
    id_bits:
        Width of the node-ID space.  Node IDs must be in ``[1, 2^id_bits)``.
        Edge numbers occupy ``2 * id_bits`` bits.  The default of 32 bits is
        comfortable for any simulated network; generators typically pass the
        smallest width that fits ``n`` so that message sizes stay
        ``O(log n)``.
    """

    def __init__(self, id_bits: int = 32) -> None:
        if id_bits < 1:
            raise GraphError("id_bits must be positive")
        self._id_bits = id_bits
        self._adj: Dict[int, Dict[int, Edge]] = {}
        # Version stamp: bumped on every topology/weight mutation, so the
        # fast path can cache derived per-node arrays and whole-graph maxima.
        self._version = 0
        self._incident_cache: Dict[int, IncidentArrays] = {}
        self._incident_cache_version = -1
        self._maxima_cache: Optional[Tuple[int, int, int]] = None
        self._maxima_cache_version = -1
        self._columnar_cache: Optional[ColumnarGraph] = None

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    @property
    def id_bits(self) -> int:
        return self._id_bits

    @property
    def version(self) -> int:
        """Monotonic mutation counter (caches key off it)."""
        return self._version

    def add_node(self, node: int) -> None:
        """Add an isolated node with identifier ``node``."""
        self._check_id(node)
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1
            self._note_mutation()

    def add_edge(self, u: int, v: int, weight: int = 1) -> Edge:
        """Insert the edge ``{u, v}`` with the given weight.

        Both endpoints are created if absent.  Raises :class:`GraphError` if
        the edge already exists (use :meth:`set_weight` to change a weight).
        """
        a, b = edge_key(u, v)
        self._check_id(a)
        self._check_id(b)
        self.add_node(a)
        self.add_node(b)
        if b in self._adj[a]:
            raise GraphError(f"edge ({a}, {b}) already present")
        edge = Edge(a, b, weight)
        self._adj[a][b] = edge
        self._adj[b][a] = edge
        self._version += 1
        self._note_mutation(a, b)
        return edge

    def remove_edge(self, u: int, v: int) -> Edge:
        """Delete the edge ``{u, v}`` and return it."""
        a, b = edge_key(u, v)
        try:
            edge = self._adj[a].pop(b)
            del self._adj[b][a]
        except KeyError as exc:
            raise GraphError(f"edge ({a}, {b}) not present") from exc
        self._version += 1
        self._note_mutation(a, b)
        return edge

    def remove_node(self, node: int) -> None:
        """Delete ``node`` and all its incident edges."""
        if node not in self._adj:
            raise GraphError(f"node {node} not present")
        for other in list(self._adj[node]):
            self.remove_edge(node, other)
        del self._adj[node]
        self._version += 1
        self._note_mutation(node)

    def set_weight(self, u: int, v: int, weight: int) -> Edge:
        """Change the weight of an existing edge and return the new Edge."""
        a, b = edge_key(u, v)
        if not self.has_edge(a, b):
            raise GraphError(f"edge ({a}, {b}) not present")
        self.remove_edge(a, b)
        return self.add_edge(a, b, weight)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        a, b = edge_key(u, v)
        return a in self._adj and b in self._adj[a]

    def get_edge(self, u: int, v: int) -> Edge:
        a, b = edge_key(u, v)
        try:
            return self._adj[a][b]
        except KeyError as exc:
            raise GraphError(f"edge ({a}, {b}) not present") from exc

    def nodes(self) -> List[int]:
        """All node IDs, in sorted order (deterministic iteration)."""
        return sorted(self._adj)

    def edges(self) -> List[Edge]:
        """All edges, each reported once, sorted by (u, v)."""
        result = []
        for u in sorted(self._adj):
            for v in sorted(self._adj[u]):
                if u < v:
                    result.append(self._adj[u][v])
        return result

    def neighbors(self, node: int) -> List[int]:
        """IDs of the neighbours of ``node`` (the KT1 knowledge), sorted."""
        try:
            return sorted(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"node {node} not present") from exc

    def incident_edges(self, node: int) -> List[Edge]:
        """Edges incident to ``node``, sorted by the other endpoint's ID."""
        try:
            return [self._adj[node][v] for v in sorted(self._adj[node])]
        except KeyError as exc:
            raise GraphError(f"node {node} not present") from exc

    def degree(self, node: int) -> int:
        try:
            return len(self._adj[node])
        except KeyError as exc:
            raise GraphError(f"node {node} not present") from exc

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def total_weight(self) -> int:
        return sum(e.weight for e in self.edges())

    # ------------------------------------------------------------------ #
    # paper-specific encodings
    # ------------------------------------------------------------------ #
    def edge_number(self, u: int, v: int) -> int:
        """The paper's edge number of ``{u, v}`` (IDs concatenated, smallest first)."""
        a, b = edge_key(u, v)
        return (a << self._id_bits) | b

    def edge_from_number(self, number: int) -> Optional[Edge]:
        """Decode an edge number back to the edge, or ``None`` if absent."""
        mask = (1 << self._id_bits) - 1
        v = number & mask
        u = number >> self._id_bits
        if u <= 0 or v <= 0 or u >= v:
            return None
        if self.has_node(u) and self.has_node(v) and self.has_edge(u, v):
            return self.get_edge(u, v)
        return None

    def augmented_weight(self, u: int, v: int) -> int:
        """Unique weight of ``{u, v}``: weight concatenated with the edge number."""
        return self.get_edge(u, v).augmented_weight(self._id_bits)

    def edge_from_augmented_weight(self, aug: int) -> Optional[Edge]:
        """Decode an augmented weight back to the edge, or ``None`` if absent."""
        edge_number = aug & ((1 << (2 * self._id_bits)) - 1)
        edge = self.edge_from_number(edge_number)
        if edge is None:
            return None
        if edge.augmented_weight(self._id_bits) != aug:
            return None
        return edge

    def max_edge_number(self) -> int:
        """``maxEdgeNum`` over the whole graph (0 for an edgeless graph)."""
        return max((e.edge_number(self._id_bits) for e in self.edges()), default=0)

    def max_weight(self) -> int:
        """Maximum raw edge weight (0 for an edgeless graph)."""
        return max((e.weight for e in self.edges()), default=0)

    def max_augmented_weight(self) -> int:
        """Maximum augmented weight (0 for an edgeless graph)."""
        return max(
            (e.augmented_weight(self._id_bits) for e in self.edges()), default=0
        )

    # ------------------------------------------------------------------ #
    # fast-path caches (version-stamped; see repro.fastpath)
    # ------------------------------------------------------------------ #
    def _note_mutation(self, *touched: int) -> None:
        """Keep the incident cache current by evicting only touched nodes.

        Every mutator calls this right after bumping :attr:`version`.  A
        single-edge mutation only changes its two endpoints' incidence lists,
        so only those entries are dropped and every other node's cached
        arrays survive (pinned by ``tests/network/test_graph.py``).  The
        version-mismatch branch is a safety net for subclasses that bump the
        version without reporting the touched nodes.
        """
        if self._incident_cache_version == self._version - 1:
            for node in touched:
                self._incident_cache.pop(node, None)
        elif self._incident_cache_version != self._version:
            self._incident_cache.clear()
        self._incident_cache_version = self._version

    def incident_arrays(self, node: int) -> IncidentArrays:
        """Cached :class:`IncidentArrays` for ``node`` at the current version.

        Mutations evict only the touched nodes' entries (see
        :meth:`_note_mutation`), so a repair step pays for each node's
        arrays at most once between updates instead of once per
        broadcast-and-echo — and untouched nodes keep their arrays across
        single-edge updates.
        """
        if self._incident_cache_version != self._version:
            self._incident_cache.clear()
            self._incident_cache_version = self._version
        arrays = self._incident_cache.get(node)
        if arrays is None:
            try:
                nbrs = self._adj[node]
            except KeyError as exc:
                raise GraphError(f"node {node} not present") from exc
            id_bits = self._id_bits
            shift = 2 * id_bits
            edges = tuple(nbrs[v] for v in sorted(nbrs))
            numbers = tuple((e.u << id_bits) | e.v for e in edges)
            augmented = tuple(
                (e.weight << shift) | num for e, num in zip(edges, numbers)
            )
            up = tuple(node == e.u for e in edges)
            order = sorted(range(len(edges)), key=augmented.__getitem__)
            arrays = IncidentArrays(
                edges=edges,
                numbers=numbers,
                augmented=augmented,
                up=up,
                max_number=max(numbers, default=0),
                max_augmented=max(augmented, default=0),
                aug_sorted=tuple(augmented[i] for i in order),
                numbers_by_aug=tuple(numbers[i] for i in order),
                up_by_aug=tuple(up[i] for i in order),
            )
            self._incident_cache[node] = arrays
        return arrays

    def cached_maxima(self) -> Tuple[int, int, int]:
        """Cached ``(max_edge_number, max_weight, max_augmented_weight)``.

        One pass over the adjacency per graph version, replacing the
        per-call full scans of :meth:`max_weight` and friends on hot paths.
        """
        if self._maxima_cache_version != self._version or self._maxima_cache is None:
            max_number = 0
            max_weight = 0
            max_augmented = 0
            id_bits = self._id_bits
            shift = 2 * id_bits
            for u, nbrs in self._adj.items():
                for v, edge in nbrs.items():
                    if u < v:
                        number = (u << id_bits) | v
                        if number > max_number:
                            max_number = number
                        if edge.weight > max_weight:
                            max_weight = edge.weight
                        augmented = (edge.weight << shift) | number
                        if augmented > max_augmented:
                            max_augmented = augmented
            self._maxima_cache = (max_number, max_weight, max_augmented)
            self._maxima_cache_version = self._version
        return self._maxima_cache

    def columnar(self) -> ColumnarGraph:
        """Cached :class:`~repro.network.columnar.ColumnarGraph` snapshot.

        Rebuilt lazily after any mutation (the snapshot is immutable and
        stamped with the version it was built at), so whole-graph batched
        kernels pay one CSR build per graph version instead of populating
        per-node :class:`IncidentArrays` entries one dict insert at a time.
        """
        cache = self._columnar_cache
        if cache is None or cache.version != self._version:
            cache = ColumnarGraph.from_graph(self)
            self._columnar_cache = cache
        return cache

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def connected_components(self) -> List[Set[int]]:
        """Connected components of the graph, as sets of node IDs."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self.nodes():
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        comp.add(nbr)
                        stack.append(nbr)
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        return self.num_nodes <= 1 or len(self.connected_components()) == 1

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """A new graph induced on ``nodes`` (same ``id_bits``)."""
        keep = set(nodes)
        sub = Graph(id_bits=self._id_bits)
        for node in keep:
            if not self.has_node(node):
                raise GraphError(f"node {node} not present")
            sub.add_node(node)
        for edge in self.edges():
            if edge.u in keep and edge.v in keep:
                sub.add_edge(edge.u, edge.v, edge.weight)
        return sub

    def copy(self) -> "Graph":
        dup = Graph(id_bits=self._id_bits)
        for node in self.nodes():
            dup.add_node(node)
        for edge in self.edges():
            dup.add_edge(edge.u, edge.v, edge.weight)
        return dup

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes())

    def __contains__(self, node: int) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges}, id_bits={self._id_bits})"

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _check_id(self, node: int) -> None:
        if not isinstance(node, int):
            raise GraphError(f"node IDs must be integers, got {node!r}")
        if node < 1 or node >= (1 << self._id_bits):
            raise GraphError(
                f"node ID {node} outside the ID space [1, 2^{self._id_bits})"
            )
