"""Flat columnar incidence storage for whole-graph sketch passes.

The per-node fast path caches an :class:`~repro.network.graph.IncidentArrays`
tuple per node — a dict of Python tuples that is rebuilt lazily after every
mutation and walked once per node per broadcast-and-echo.  At n ≥ 10^4 the
dict churn and per-node bisections dominate the simulator's profile.  This
module stores the *whole graph's* incidence structure once, in CSR form:

* ``ids`` — the node IDs in sorted order; ``pos`` maps an ID to its row.
* ``indptr`` — ``indptr[i]:indptr[i+1]`` is node ``ids[i]``'s slot range.
* ``numbers`` / ``augmented`` / ``up`` — flat slot columns, one entry per
  (node, incident edge) pair, in :meth:`Graph.incident_edges` order (sorted
  by the other endpoint's ID).  ``up[slot]`` is 1 iff the node is the smaller
  endpoint, i.e. the edge counts towards the paper's ``E↑``.
* ``aug_sorted`` / ``numbers_by_aug`` / ``up_by_aug`` — the same slots
  re-sorted by augmented weight *within each node's slice*, so
  weight-windowed kernels bisect instead of scanning the degree.

Columns are ``array('Q')`` when every value fits 64 bits and plain Python
lists otherwise (the default ``id_bits=32`` pushes augmented weights past 64
bits, so both representations are first-class).  When numpy is available
(:mod:`repro.accel`) and the 64-bit representation applies, ``uint64``
mirrors are materialised lazily for the batched kernels in
:mod:`repro.core.sketches`; the mirrors are a wall-clock tier only — every
kernel has a stdlib loop over the same columns producing identical words.

Instances are immutable snapshots of one graph version; :meth:`Graph.columnar`
caches the snapshot against :attr:`Graph.version` so a repair step pays the
build once between mutations.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..accel import numpy_or_none
from .errors import GraphError

__all__ = ["ColumnarGraph"]

_UINT64_MAX = (1 << 64) - 1


def _freeze(values: List[int], fits64: bool) -> Sequence[int]:
    """An ``array('Q')`` copy when every value fits 64 bits, else the list."""
    return array("Q", values) if fits64 else values


class _NumpyColumns:
    """Lazily-built uint64 mirrors of the flat columns (numpy tier only)."""

    __slots__ = (
        "numbers",
        "aug_sorted",
        "numbers_by_aug",
        "up",
        "up_by_aug",
        "indptr",
    )

    def __init__(self, np: Any, cols: "ColumnarGraph") -> None:
        self.numbers = np.asarray(cols.numbers, dtype=np.uint64)
        self.aug_sorted = np.asarray(cols.aug_sorted, dtype=np.uint64)
        self.numbers_by_aug = np.asarray(cols.numbers_by_aug, dtype=np.uint64)
        self.up = np.frombuffer(cols.up, dtype=np.uint8)
        self.up_by_aug = np.frombuffer(cols.up_by_aug, dtype=np.uint8)
        self.indptr = np.asarray(cols.indptr, dtype=np.int64)


class ColumnarGraph:
    """An immutable CSR snapshot of a graph's incidence structure.

    Built via :meth:`from_graph` (or, with caching, :meth:`Graph.columnar`).
    All columns are parallel over *slots*; a node's slots are
    ``indptr[pos[node]] : indptr[pos[node] + 1]``.
    """

    __slots__ = (
        "id_bits",
        "version",
        "ids",
        "pos",
        "indptr",
        "numbers",
        "augmented",
        "up",
        "aug_sorted",
        "numbers_by_aug",
        "up_by_aug",
        "node_max_number",
        "node_max_augmented",
        "max_number",
        "max_augmented",
        "fits64",
        "_np_cols",
    )

    def __init__(
        self,
        *,
        id_bits: int,
        version: int,
        ids: List[int],
        indptr: "array[int]",
        numbers: Sequence[int],
        augmented: Sequence[int],
        up: bytearray,
        aug_sorted: Sequence[int],
        numbers_by_aug: Sequence[int],
        up_by_aug: bytearray,
        node_max_number: Sequence[int],
        node_max_augmented: Sequence[int],
        max_number: int,
        max_augmented: int,
        fits64: bool,
    ) -> None:
        self.id_bits = id_bits
        self.version = version
        self.ids = ids
        self.pos: Dict[int, int] = {node: i for i, node in enumerate(ids)}
        self.indptr = indptr
        self.numbers = numbers
        self.augmented = augmented
        self.up = up
        self.aug_sorted = aug_sorted
        self.numbers_by_aug = numbers_by_aug
        self.up_by_aug = up_by_aug
        self.node_max_number = node_max_number
        self.node_max_augmented = node_max_augmented
        self.max_number = max_number
        self.max_augmented = max_augmented
        self.fits64 = fits64
        self._np_cols: Optional[_NumpyColumns] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Any) -> "ColumnarGraph":
        """Build the CSR snapshot for ``graph`` at its current version."""
        adj: Dict[int, Dict[int, Any]] = graph._adj
        id_bits = graph.id_bits
        shift = 2 * id_bits
        ids = sorted(adj)
        indptr = array("l", [0] * (len(ids) + 1))
        numbers: List[int] = []
        augmented: List[int] = []
        up = bytearray()
        aug_sorted: List[int] = []
        numbers_by_aug: List[int] = []
        up_by_aug = bytearray()
        node_max_number: List[int] = []
        node_max_augmented: List[int] = []
        max_number = 0
        max_augmented = 0
        slot = 0
        for row, node in enumerate(ids):
            nbrs = adj[node]
            start = slot
            for other in sorted(nbrs):
                edge = nbrs[other]
                number = (edge.u << id_bits) | edge.v
                aug = (edge.weight << shift) | number
                numbers.append(number)
                augmented.append(aug)
                up.append(1 if node == edge.u else 0)
                slot += 1
            indptr[row + 1] = slot
            if slot > start:
                local_max_num = max(numbers[start:slot])
                local_max_aug = max(augmented[start:slot])
            else:
                local_max_num = local_max_aug = 0
            node_max_number.append(local_max_num)
            node_max_augmented.append(local_max_aug)
            if local_max_num > max_number:
                max_number = local_max_num
            if local_max_aug > max_augmented:
                max_augmented = local_max_aug
            order = sorted(range(start, slot), key=augmented.__getitem__)
            for j in order:
                aug_sorted.append(augmented[j])
                numbers_by_aug.append(numbers[j])
                up_by_aug.append(up[j])
        fits64 = max_augmented <= _UINT64_MAX
        return cls(
            id_bits=id_bits,
            version=graph.version,
            ids=ids,
            indptr=indptr,
            numbers=_freeze(numbers, fits64),
            augmented=_freeze(augmented, fits64),
            up=up,
            aug_sorted=_freeze(aug_sorted, fits64),
            numbers_by_aug=_freeze(numbers_by_aug, fits64),
            up_by_aug=up_by_aug,
            node_max_number=_freeze(node_max_number, fits64),
            node_max_augmented=_freeze(node_max_augmented, fits64),
            max_number=max_number,
            max_augmented=max_augmented,
            fits64=fits64,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.ids)

    @property
    def num_slots(self) -> int:
        """Total slot count (= 2 * num_edges)."""
        return len(self.numbers)

    def slice_of(self, node: int) -> Tuple[int, int]:
        """The ``[start, stop)`` slot range of ``node``'s incident edges."""
        try:
            row = self.pos[node]
        except KeyError as exc:
            raise GraphError(f"node {node} not present") from exc
        return self.indptr[row], self.indptr[row + 1]

    def degree(self, node: int) -> int:
        start, stop = self.slice_of(node)
        return stop - start

    def numpy_columns(self) -> Optional[_NumpyColumns]:
        """uint64 mirrors of the columns, or ``None`` outside the numpy tier.

        Only available when every value fits 64 bits (``fits64``) — the
        mirrors exist purely so the batched kernels can vectorise; callers
        must fall back to the stdlib columns when this returns ``None``.
        """
        if not self.fits64:
            return None
        if self._np_cols is None:
            np = numpy_or_none()
            if np is None:
                return None
            self._np_cols = _NumpyColumns(np, self)
        return self._np_cols

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarGraph(n={self.num_nodes}, slots={self.num_slots}, "
            f"fits64={self.fits64}, version={self.version})"
        )
