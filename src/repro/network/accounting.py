"""Message, bit and round accounting.

Everything the paper bounds — message count, message size, time (rounds for
the synchronous algorithms, causal depth for the asynchronous ones), and
broadcast-and-echo invocations — is tracked by a single
:class:`MessageAccountant` instance that is threaded through the simulation
engines, the broadcast-and-echo executor and the algorithms.

The accountant supports cheap *snapshots* so that a caller can measure the
cost of a sub-operation (e.g. one ``FindMin`` inside a Borůvka phase) without
creating a new accountant:

>>> acct = MessageAccountant()
>>> before = acct.snapshot()
>>> acct.record_message(size_bits=17)
>>> delta = acct.since(before)
>>> delta.messages, delta.bits
(1, 17)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import AccountingError

__all__ = ["CostSnapshot", "CostDelta", "MessageAccountant", "PhaseRecord"]


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of the accountant's counters at a point in time."""

    messages: int
    bits: int
    rounds: int
    broadcast_echoes: int


@dataclass(frozen=True)
class CostDelta:
    """Difference between two snapshots (cost of a sub-operation)."""

    messages: int
    bits: int
    rounds: int
    broadcast_echoes: int

    def __add__(self, other: "CostDelta") -> "CostDelta":
        return CostDelta(
            messages=self.messages + other.messages,
            bits=self.bits + other.bits,
            rounds=self.rounds + other.rounds,
            broadcast_echoes=self.broadcast_echoes + other.broadcast_echoes,
        )

    @staticmethod
    def zero() -> "CostDelta":
        return CostDelta(0, 0, 0, 0)


@dataclass
class PhaseRecord:
    """Per-phase cost record, used by Build-MST / Build-ST reporting."""

    label: str
    messages: int
    bits: int
    rounds: int
    fragments: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class MessageAccountant:
    """Counts messages, bits, rounds and broadcast-and-echo invocations."""

    def __init__(self) -> None:
        self._messages = 0
        self._bits = 0
        self._rounds = 0
        self._broadcast_echoes = 0
        self._per_kind: Dict[str, int] = {}
        self._phases: List[PhaseRecord] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_message(self, size_bits: int, kind: str = "generic") -> None:
        """Charge one message of ``size_bits`` bits."""
        if size_bits < 1:
            raise AccountingError("a message carries at least one bit")
        self._messages += 1
        self._bits += size_bits
        self._per_kind[kind] = self._per_kind.get(kind, 0) + 1

    def record_messages(self, count: int, size_bits: int, kind: str = "generic") -> None:
        """Charge ``count`` messages of ``size_bits`` bits each."""
        if count < 0:
            raise AccountingError("cannot charge a negative number of messages")
        if count == 0:
            return
        if size_bits < 1:
            raise AccountingError("a message carries at least one bit")
        self._messages += count
        self._bits += count * size_bits
        self._per_kind[kind] = self._per_kind.get(kind, 0) + count

    def record_rounds(self, count: int) -> None:
        """Advance the time/round counter by ``count``."""
        if count < 0:
            raise AccountingError("cannot advance time backwards")
        self._rounds += count

    def record_broadcast_echo(self) -> None:
        """Record that one broadcast-and-echo primitive was invoked."""
        self._broadcast_echoes += 1

    def record_phase(self, record: PhaseRecord) -> None:
        self._phases.append(record)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def messages(self) -> int:
        return self._messages

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def broadcast_echoes(self) -> int:
        return self._broadcast_echoes

    @property
    def phases(self) -> List[PhaseRecord]:
        return list(self._phases)

    def per_kind(self) -> Dict[str, int]:
        """Message counts keyed by message kind."""
        return dict(self._per_kind)

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            messages=self._messages,
            bits=self._bits,
            rounds=self._rounds,
            broadcast_echoes=self._broadcast_echoes,
        )

    def since(self, snapshot: CostSnapshot) -> CostDelta:
        """Cost accumulated since ``snapshot`` was taken."""
        delta = CostDelta(
            messages=self._messages - snapshot.messages,
            bits=self._bits - snapshot.bits,
            rounds=self._rounds - snapshot.rounds,
            broadcast_echoes=self._broadcast_echoes - snapshot.broadcast_echoes,
        )
        if min(delta.messages, delta.bits, delta.rounds, delta.broadcast_echoes) < 0:
            raise AccountingError("snapshot does not belong to this accountant")
        return delta

    def reset(self) -> None:
        self._messages = 0
        self._bits = 0
        self._rounds = 0
        self._broadcast_echoes = 0
        self._per_kind.clear()
        self._phases.clear()

    def summary(self) -> Dict[str, int]:
        """A plain-dict summary, convenient for reports and benchmarks."""
        return {
            "messages": self._messages,
            "bits": self._bits,
            "rounds": self._rounds,
            "broadcast_echoes": self._broadcast_echoes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MessageAccountant(messages={self._messages}, bits={self._bits}, "
            f"rounds={self._rounds}, b&e={self._broadcast_echoes})"
        )


def merge_deltas(deltas: List[CostDelta]) -> CostDelta:
    """Sum a list of :class:`CostDelta` (empty list sums to zero)."""
    total = CostDelta.zero()
    for delta in deltas:
        total = total + delta
    return total
