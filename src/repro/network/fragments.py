"""Spanning-forest state: the "properly marked" network of the paper.

The paper (Section 1) maintains trees implicitly: every node marks a subset
of its incident edges, the network is *properly marked* when every edge is
marked by both or neither endpoint, and the maintained trees are the
connected components of the marked subgraph.

:class:`SpanningForest` is exactly that state.  It stores the set of marked
edges (canonically keyed), provides the node-local view each processor is
allowed to have (``marked_neighbors``), and offers whole-forest queries used
by the simulation driver and the verifiers (components, cycles, outgoing
edges).  The impromptu property of the repair algorithms is that *this* is
the only state that persists between updates.
"""

from __future__ import annotations

import os
from array import array
from bisect import insort
from collections import deque
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import ForestError
from .graph import Edge, Graph, edge_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .tree_cache import TreeStructureCache
    from .broadcast import TreeStructure

__all__ = ["SpanningForest"]

#: How many mutations the journal retains by default.  A structure cached
#: longer ago than this many mutations is rebuilt instead of patched.
#: Override per process with ``REPRO_JOURNAL_LIMIT``, or per forest with the
#: ``journal_limit`` constructor argument; the
#: :meth:`~repro.network.tree_cache.TreeStructureCache.stats` hook reports
#: how often an overrun forced a rebuild, so large-n runs can tune this
#: instead of silently paying full BFS rebuilds.
_JOURNAL_LIMIT = 1024


def default_journal_limit() -> int:
    """The journal bound from ``REPRO_JOURNAL_LIMIT`` (default 1024)."""
    try:
        value = int(os.environ.get("REPRO_JOURNAL_LIMIT", _JOURNAL_LIMIT))
    except ValueError:
        return _JOURNAL_LIMIT
    return max(value, 1)


class SpanningForest:
    """The marked-edge state maintained by the network.

    Mutations are version-stamped: every :meth:`mark` / :meth:`unmark` /
    :meth:`clear` bumps :attr:`version` and appends to a bounded journal, so
    the :class:`~repro.network.tree_cache.TreeStructureCache` can patch a
    cached rooted structure on single-edge attach/detach instead of
    rebuilding it per broadcast-and-echo.  A sorted marked-adjacency map is
    maintained incrementally, making :meth:`marked_neighbors` ``O(marked
    degree)`` instead of ``O(degree)``.
    """

    def __init__(
        self,
        graph: Graph,
        marked: Optional[Iterable[Tuple[int, int]]] = None,
        journal_limit: Optional[int] = None,
    ):
        self.graph = graph
        self._marked: Set[Tuple[int, int]] = set()
        self._marked_adj: Dict[int, List[int]] = {}
        self._version = 0
        self._journal: deque = deque()
        self._journal_limit = (
            max(journal_limit, 1) if journal_limit is not None else default_journal_limit()
        )
        self._structures: Optional["TreeStructureCache"] = None
        self._marked_csr: Optional[Tuple[int, List[int], Dict[int, int], "array[int]", List[int]]] = None
        for u, v in marked or []:
            self.mark(u, v)

    @property
    def journal_limit(self) -> int:
        """How many mutations the patch journal retains for this forest."""
        return self._journal_limit

    # ------------------------------------------------------------------ #
    # marking
    # ------------------------------------------------------------------ #
    def mark(self, u: int, v: int) -> None:
        """Mark the existing edge ``{u, v}`` as a tree edge."""
        key = edge_key(u, v)
        if not self.graph.has_edge(*key):
            raise ForestError(f"cannot mark non-existent edge {key}")
        if key in self._marked:
            return
        self._marked.add(key)
        insort(self._marked_adj.setdefault(key[0], []), key[1])
        insort(self._marked_adj.setdefault(key[1], []), key[0])
        self._record("mark", key)

    def unmark(self, u: int, v: int) -> None:
        """Remove the mark from ``{u, v}`` (no-op if it was unmarked)."""
        key = edge_key(u, v)
        if key not in self._marked:
            return
        self._marked.discard(key)
        self._marked_adj[key[0]].remove(key[1])
        self._marked_adj[key[1]].remove(key[0])
        self._record("unmark", key)

    def is_marked(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._marked

    def drop_missing_edges(self) -> List[Tuple[int, int]]:
        """Unmark edges that no longer exist in the graph (after deletions)."""
        gone = [key for key in self._marked if not self.graph.has_edge(*key)]
        for key in gone:
            self.unmark(*key)
        return gone

    def clear(self) -> None:
        self._marked.clear()
        self._marked_adj.clear()
        self._record("clear", (0, 0))

    # ------------------------------------------------------------------ #
    # version stamping / structure cache plumbing
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic mutation counter over the marked-edge state."""
        return self._version

    def _record(self, op: str, key: Tuple[int, int]) -> None:
        self._version += 1
        self._journal.append((self._version, op, key[0], key[1]))
        if len(self._journal) > self._journal_limit:
            self._journal.popleft()

    def journal_since(self, version: int) -> Optional[List[Tuple[int, str, int, int]]]:
        """Mutations recorded after ``version``, oldest first.

        Returns ``None`` when the journal no longer reaches back that far
        (the caller must rebuild instead of patching).
        """
        if version == self._version:
            return []
        if not self._journal or self._journal[0][0] > version + 1:
            return None
        return [entry for entry in self._journal if entry[0] > version]

    def marked_csr(self) -> Tuple[List[int], Dict[int, int], "array[int]", List[int]]:
        """Flat CSR columns of the marked adjacency at the current version.

        Returns ``(ids, pos, indptr, neighbors)``: ``ids`` is every graph
        node sorted, ``pos`` maps a node to its row, and row ``i``'s marked
        neighbours are ``neighbors[indptr[i]:indptr[i+1]]`` — in the same
        sorted order :meth:`marked_neighbors` reports, so a BFS over the
        columns visits nodes in exactly the order a BFS over the per-node
        lists would.  Cached against :attr:`version`; the
        :class:`~repro.network.tree_cache.TreeStructureCache` uses it for
        whole-graph rebuilds instead of one list allocation per node.
        """
        cache = self._marked_csr
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2], cache[3], cache[4]
        ids = self.graph.nodes()
        pos = {node: i for i, node in enumerate(ids)}
        indptr = array("l", [0] * (len(ids) + 1))
        neighbors: List[int] = []
        marked_adj = self._marked_adj
        slot = 0
        for i, node in enumerate(ids):
            nbrs = marked_adj.get(node)
            if nbrs:
                neighbors.extend(nbrs)
                slot += len(nbrs)
            indptr[i + 1] = slot
        self._marked_csr = (self._version, ids, pos, indptr, neighbors)
        return ids, pos, indptr, neighbors

    @property
    def structures(self) -> "TreeStructureCache":
        """The forest's rooted-structure cache (created lazily)."""
        if self._structures is None:
            from .tree_cache import TreeStructureCache

            self._structures = TreeStructureCache(self)
        return self._structures

    def rooted_structure(self, root: int) -> "TreeStructure":
        """Rooted view of ``T_root`` — cached on the fast path.

        With the fast path enabled (see :mod:`repro.fastpath`) this reuses
        and incrementally patches a cached :class:`TreeStructure`; otherwise
        it rebuilds from scratch, exactly like
        :func:`~repro.network.broadcast.build_tree_structure`.
        """
        from .tree_cache import rooted_tree

        return rooted_tree(self, root)

    # ------------------------------------------------------------------ #
    # node-local views (what a processor is allowed to know)
    # ------------------------------------------------------------------ #
    def marked_neighbors(self, node: int) -> List[int]:
        """Neighbours of ``node`` connected by a marked edge (sorted).

        Served from the incremental marked-adjacency map, which assumes the
        "properly marked" invariant: a marked edge exists in the graph.
        Deleting a graph edge therefore requires :meth:`unmark` (what the
        repair algorithms do) or :meth:`drop_missing_edges` *before* the
        forest is traversed again.
        """
        return list(self._marked_adj.get(node, ()))

    def unmarked_incident_edges(self, node: int) -> List[Edge]:
        """Incident edges of ``node`` that are not tree edges (sorted)."""
        return [
            edge
            for edge in self.graph.incident_edges(node)
            if edge_key(edge.u, edge.v) not in self._marked
        ]

    def marked_degree(self, node: int) -> int:
        return len(self.marked_neighbors(node))

    # ------------------------------------------------------------------ #
    # forest-level queries (simulation driver / verification)
    # ------------------------------------------------------------------ #
    @property
    def marked_edges(self) -> Set[Tuple[int, int]]:
        return set(self._marked)

    @property
    def num_marked(self) -> int:
        return len(self._marked)

    def marked_edge_objects(self) -> List[Edge]:
        return [self.graph.get_edge(u, v) for u, v in sorted(self._marked)]

    def total_marked_weight(self) -> int:
        return sum(edge.weight for edge in self.marked_edge_objects())

    def component_of(self, node: int) -> Set[int]:
        """The node set of the maintained tree containing ``node`` (``T_x``)."""
        if not self.graph.has_node(node):
            raise ForestError(f"node {node} not in the graph")
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            for nbr in self.marked_neighbors(current):
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        return seen

    def components(self) -> List[Set[int]]:
        """All maintained trees (every node belongs to exactly one)."""
        seen: Set[int] = set()
        result: List[Set[int]] = []
        for node in self.graph.nodes():
            if node in seen:
                continue
            comp = self.component_of(node)
            seen |= comp
            result.append(comp)
        return result

    def component_index(self) -> Dict[int, int]:
        """Map node -> index of its component in :meth:`components` order."""
        index: Dict[int, int] = {}
        for i, comp in enumerate(self.components()):
            for node in comp:
                index[node] = i
        return index

    def tree_adjacency(self, component: Iterable[int]) -> Dict[int, List[int]]:
        """Adjacency (over marked edges) restricted to ``component``."""
        comp = set(component)
        return {
            node: [nbr for nbr in self.marked_neighbors(node) if nbr in comp]
            for node in sorted(comp)
        }

    def same_component(self, u: int, v: int) -> bool:
        return v in self.component_of(u)

    def outgoing_edges(self, component: Iterable[int]) -> List[Edge]:
        """Edges of the graph leaving the node set ``component`` (God's view).

        Used only by verifiers and tests; the distributed algorithms never
        call this.
        """
        comp = set(component)
        result = []
        for node in sorted(comp):
            for edge in self.graph.incident_edges(node):
                if (edge.other(node) not in comp) and edge not in result:
                    result.append(edge)
        return result

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    def is_forest(self) -> bool:
        """True iff the marked subgraph is acyclic."""
        try:
            self.check_forest()
        except ForestError:
            return False
        return True

    def check_forest(self) -> None:
        """Raise :class:`ForestError` if the marked subgraph contains a cycle."""
        for comp in self.components():
            edges_inside = sum(
                1
                for (u, v) in self._marked
                if u in comp and v in comp
            )
            if edges_inside != len(comp) - 1:
                raise ForestError(
                    f"component {sorted(comp)} has {edges_inside} marked edges; "
                    f"a tree on {len(comp)} nodes must have {len(comp) - 1}"
                )

    def is_spanning(self) -> bool:
        """True iff each maintained tree spans a connected component of the graph."""
        graph_components = {frozenset(c) for c in self.graph.connected_components()}
        forest_components = {frozenset(c) for c in self.components()}
        return graph_components == forest_components

    def cycle_nodes(self, component: Iterable[int]) -> List[int]:
        """Nodes of ``component`` lying on a cycle of the marked subgraph.

        Computed by repeatedly pruning leaves (the 2-core of the marked
        subgraph restricted to the component).  Empty list when the component
        is a tree.  Build-ST's distributed cycle detection (Section 4.2) is
        the message-passing realisation of this; see
        :func:`repro.network.leader_election.detect_cycle`.
        """
        adj = {node: set(nbrs) for node, nbrs in self.tree_adjacency(component).items()}
        queue = deque(node for node, nbrs in adj.items() if len(nbrs) <= 1)
        removed: Set[int] = set()
        while queue:
            node = queue.popleft()
            if node in removed:
                continue
            removed.add(node)
            for nbr in list(adj[node]):
                adj[nbr].discard(node)
                adj[node].discard(nbr)
                if len(adj[nbr]) == 1 and nbr not in removed:
                    queue.append(nbr)
        return sorted(node for node in adj if node not in removed)

    def copy(self) -> "SpanningForest":
        return SpanningForest(self.graph, marked=self._marked)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanningForest(marked={len(self._marked)}, "
            f"components={len(self.components())})"
        )
