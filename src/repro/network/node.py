"""Per-node protocol interface for the message-level simulation engines.

The KKT algorithms themselves are executed through the fragment-level
broadcast-and-echo executor (see :mod:`repro.network.broadcast`), but several
components are genuine per-node protocols running on the simulators:

* the reference broadcast-and-echo protocol used to validate the executor's
  message accounting,
* the flooding spanning-tree baseline,
* the schedule-independence tests for asynchronous repair.

A protocol node subclasses :class:`ProtocolNode` and implements ``on_start``
(called once when the simulation begins) and ``on_message`` (called for each
delivered message).  Nodes send messages exclusively through
:meth:`ProtocolNode.send`, which routes them into the owning engine so that
they are delivered according to the engine's semantics and charged to the
accountant.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from .errors import ProtocolError
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sync_simulator import SynchronousSimulator
    from .async_simulator import AsynchronousSimulator

__all__ = ["ProtocolNode"]


class ProtocolNode:
    """Base class for per-node protocol logic.

    Attributes
    ----------
    node_id:
        The node's unique identifier.
    neighbors:
        Mapping neighbour ID -> edge weight: the KT1 local knowledge.
    """

    def __init__(self, node_id: int, neighbors: Dict[int, int]) -> None:
        self.node_id = node_id
        self.neighbors = dict(neighbors)
        self._engine: Optional[Any] = None
        self.halted = False

    # ------------------------------------------------------------------ #
    # engine wiring
    # ------------------------------------------------------------------ #
    def attach(self, engine: Any) -> None:
        """Called by an engine when the node is registered with it."""
        if self._engine is not None and self._engine is not engine:
            raise ProtocolError(
                f"node {self.node_id} is already attached to another engine"
            )
        self._engine = engine

    @property
    def engine(self) -> Any:
        if self._engine is None:
            raise ProtocolError(f"node {self.node_id} is not attached to an engine")
        return self._engine

    # ------------------------------------------------------------------ #
    # protocol hooks (override in subclasses)
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Called once, before any message is delivered."""

    def on_message(self, message: Message) -> None:
        """Called when ``message`` is delivered to this node."""
        raise NotImplementedError

    def on_round_begin(self, round_number: int) -> None:
        """Synchronous engine only: called at the beginning of each round."""

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def send(
        self,
        receiver: int,
        kind: str,
        payload: Any = None,
        size_bits: int = 1,
    ) -> None:
        """Send a message to a *neighbour* (CONGEST: only along edges)."""
        if receiver not in self.neighbors:
            raise ProtocolError(
                f"node {self.node_id} has no edge to {receiver}; "
                "CONGEST messages travel only along edges"
            )
        message = Message(
            sender=self.node_id,
            receiver=receiver,
            kind=kind,
            payload=payload,
            size_bits=size_bits,
        )
        self.engine.submit(message)

    def broadcast_to_neighbors(
        self,
        kind: str,
        payload: Any = None,
        size_bits: int = 1,
        exclude: Optional[List[int]] = None,
    ) -> None:
        """Send the same message to every neighbour (except ``exclude``)."""
        skip = set(exclude or [])
        for neighbor in sorted(self.neighbors):
            if neighbor not in skip:
                self.send(neighbor, kind, payload, size_bits)

    def halt(self) -> None:
        """Mark this node as finished; engines may use this for termination."""
        self.halted = True
