"""Message-level reference protocols for the paper's primitives.

The algorithms in :mod:`repro.core` execute broadcast-and-echo through the
fast fragment-level executor (exact accounting, centralised walk).  To back
up the fidelity claim — that nothing in the fast path could not be done by
real per-node code exchanging real messages — this module implements the key
primitives as genuine :class:`~repro.network.node.ProtocolNode` state
machines that run on the synchronous or asynchronous engine:

* :func:`run_testout_protocol` — ``TestOut(x, j, k)``: the root broadcasts an
  odd hash function and a weight range over the tree; every node answers with
  the parity of its incident hashed edges; parities XOR up the tree.
* :func:`run_hp_testout_protocol` — ``HP-TestOut(x, j, k)``: same shape, with
  the Schwartz–Zippel set-equality sketch as the echo value.
* :func:`run_path_max_protocol` — the ``Insert(u, v)`` query: a broadcast
  that carries the running path maximum downward and an echo that reports
  whether ``v`` was found and which path edge was heaviest.

Tests (``tests/network/test_protocols.py``) assert that these per-node
executions return the same answers and charge the same number of messages as
the fragment-level implementations in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.hashing import OddHashFunction
from ..core.polynomial import SetEqualitySketch
from .accounting import MessageAccountant
from .async_simulator import AsynchronousSimulator
from .errors import ProtocolError, SimulationError
from .fragments import SpanningForest
from .graph import Graph
from .message import Message
from .node import ProtocolNode
from .scheduler import Scheduler
from .sync_simulator import SynchronousSimulator

__all__ = [
    "TreeAggregationNode",
    "run_testout_protocol",
    "run_hp_testout_protocol",
    "run_path_max_protocol",
]


class TreeAggregationNode(ProtocolNode):
    """Generic per-node broadcast-and-echo with a downward-state hook.

    The root sends a ``QUERY`` message carrying a (protocol-specific) state to
    each tree neighbour; every other node adopts the first ``QUERY`` sender as
    its parent, transforms the state with ``propagate`` and forwards it; once
    a node has received ``REPLY`` messages from all its children it combines
    its local value (``collect`` of its node id and received state) with the
    children's values (``combine``) and replies to its parent.  The root's
    combined value is the protocol result.

    This is exactly the reference broadcast-and-echo of
    :mod:`repro.network.broadcast`, generalised with the downward state so
    that the path-max (Insert) query can also be expressed.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Dict[int, int],
        tree_neighbors: List[int],
        is_root: bool,
        collect,
        combine,
        propagate,
        initial_state: Any,
        query_bits: int,
        reply_bits: int,
    ) -> None:
        super().__init__(node_id, neighbors)
        self.tree_neighbors = list(tree_neighbors)
        self.is_root = is_root
        self.collect = collect
        self.combine = combine
        self.propagate = propagate
        self.initial_state = initial_state
        self.query_bits = query_bits
        self.reply_bits = reply_bits
        self.parent: Optional[int] = None
        self.state: Any = None
        self.pending: set = set()
        self.child_values: List[Any] = []
        self.result: Any = None

    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        if not self.is_root:
            return
        self.state = self.initial_state
        self.pending = set(self.tree_neighbors)
        if not self.pending:
            self.result = self.combine(self.collect(self.node_id, self.state), [])
            self.halt()
            return
        for neighbor in sorted(self.pending):
            child_state = self.propagate(self.state, self.node_id, neighbor)
            self.send(neighbor, "QUERY", payload=child_state, size_bits=self.query_bits)

    def on_message(self, message: Message) -> None:
        if message.kind == "QUERY":
            self._handle_query(message.sender, message.payload)
        elif message.kind == "REPLY":
            self._handle_reply(message.sender, message.payload)
        else:
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------ #
    def _handle_query(self, sender: int, state: Any) -> None:
        if self.is_root or self.parent is not None:
            raise ProtocolError(
                f"node {self.node_id} received a second QUERY; the marked "
                "subgraph is not a tree"
            )
        self.parent = sender
        self.state = state
        self.pending = set(self.tree_neighbors) - {sender}
        if not self.pending:
            value = self.combine(self.collect(self.node_id, self.state), [])
            self.send(sender, "REPLY", payload=value, size_bits=self.reply_bits)
            self.halt()
            return
        for neighbor in sorted(self.pending):
            child_state = self.propagate(self.state, self.node_id, neighbor)
            self.send(neighbor, "QUERY", payload=child_state, size_bits=self.query_bits)

    def _handle_reply(self, sender: int, value: Any) -> None:
        if sender not in self.pending:
            raise ProtocolError(f"node {self.node_id}: unexpected REPLY from {sender}")
        self.pending.discard(sender)
        self.child_values.append(value)
        if self.pending:
            return
        combined = self.combine(self.collect(self.node_id, self.state), self.child_values)
        if self.is_root:
            self.result = combined
        else:
            assert self.parent is not None
            self.send(self.parent, "REPLY", payload=combined, size_bits=self.reply_bits)
        self.halt()


def _run_aggregation(
    graph: Graph,
    forest: SpanningForest,
    root: int,
    collect,
    combine,
    propagate,
    initial_state: Any,
    query_bits: int,
    reply_bits: int,
    engine: str,
    scheduler: Optional[Scheduler],
) -> Tuple[Any, MessageAccountant]:
    """Instantiate the per-node protocol on every node and run it."""
    component = forest.component_of(root)
    nodes = []
    for node_id in graph.nodes():
        neighbors = {
            nbr: graph.get_edge(node_id, nbr).weight for nbr in graph.neighbors(node_id)
        }
        tree_neighbors = forest.marked_neighbors(node_id) if node_id in component else []
        nodes.append(
            TreeAggregationNode(
                node_id=node_id,
                neighbors=neighbors,
                tree_neighbors=tree_neighbors,
                is_root=(node_id == root),
                collect=collect,
                combine=combine,
                propagate=propagate,
                initial_state=initial_state,
                query_bits=query_bits,
                reply_bits=reply_bits,
            )
        )
    if engine == "sync":
        simulator: Any = SynchronousSimulator(graph)
    elif engine == "async":
        simulator = AsynchronousSimulator(graph, scheduler=scheduler)
    else:
        raise SimulationError(f"unknown engine {engine!r}")
    simulator.register_all(nodes)
    simulator.run()
    return simulator.nodes[root].result, simulator.accountant


# ---------------------------------------------------------------------- #
# TestOut
# ---------------------------------------------------------------------- #
def run_testout_protocol(
    graph: Graph,
    forest: SpanningForest,
    root: int,
    odd_hash: OddHashFunction,
    low: Optional[int] = None,
    high: Optional[int] = None,
    engine: str = "sync",
    scheduler: Optional[Scheduler] = None,
) -> Tuple[bool, MessageAccountant]:
    """Message-level ``TestOut(x, j, k)``; returns (cut detected?, accountant)."""
    id_bits = graph.id_bits
    low_bound = low if low is not None else 0
    high_bound = high if high is not None else (1 << 256)

    def collect(node_id: int, _state: Any) -> int:
        parity = 0
        for edge in graph.incident_edges(node_id):
            weight = edge.augmented_weight(id_bits)
            if low_bound <= weight <= high_bound:
                parity ^= odd_hash(edge.edge_number(id_bits))
        return parity

    def combine(local: int, children: List[int]) -> int:
        for value in children:
            local ^= value
        return local

    def propagate(state: Any, _parent: int, _child: int) -> Any:
        return state

    result, accountant = _run_aggregation(
        graph,
        forest,
        root,
        collect,
        combine,
        propagate,
        initial_state=None,
        query_bits=odd_hash.description_bits(),
        reply_bits=1,
        engine=engine,
        scheduler=scheduler,
    )
    return bool(result), accountant


# ---------------------------------------------------------------------- #
# HP-TestOut
# ---------------------------------------------------------------------- #
def run_hp_testout_protocol(
    graph: Graph,
    forest: SpanningForest,
    root: int,
    alpha: int,
    field_prime: int,
    low: Optional[int] = None,
    high: Optional[int] = None,
    engine: str = "sync",
    scheduler: Optional[Scheduler] = None,
) -> Tuple[bool, MessageAccountant]:
    """Message-level ``HP-TestOut(x, j, k)``; returns (cut detected?, accountant)."""
    id_bits = graph.id_bits
    low_bound = low if low is not None else 0
    high_bound = high if high is not None else (1 << 256)
    p = field_prime

    def collect(node_id: int, _state: Any) -> SetEqualitySketch:
        up, down = [], []
        for edge in graph.incident_edges(node_id):
            weight = edge.augmented_weight(id_bits)
            if not (low_bound <= weight <= high_bound):
                continue
            number = edge.edge_number(id_bits)
            (up if node_id == edge.u else down).append(number)
        return SetEqualitySketch.from_local_edges(up, down, alpha, p)

    def combine(local: SetEqualitySketch, children: List[SetEqualitySketch]):
        return local.combine(children)

    def propagate(state: Any, _parent: int, _child: int) -> Any:
        return state

    sketch, accountant = _run_aggregation(
        graph,
        forest,
        root,
        collect,
        combine,
        propagate,
        initial_state=None,
        query_bits=p.bit_length(),
        reply_bits=2 * p.bit_length(),
        engine=engine,
        scheduler=scheduler,
    )
    return (not sketch.sides_equal), accountant


# ---------------------------------------------------------------------- #
# Path-max query (Insert)
# ---------------------------------------------------------------------- #
def run_path_max_protocol(
    graph: Graph,
    forest: SpanningForest,
    root: int,
    target: int,
    engine: str = "sync",
    scheduler: Optional[Scheduler] = None,
) -> Tuple[Tuple[bool, Optional[Tuple[int, int]]], MessageAccountant]:
    """Message-level Insert query: is ``target`` in ``T_root``, and which edge
    on the tree path ``root → target`` is heaviest?

    Returns ``((found, heaviest_edge_key_or_None), accountant)``.
    """
    id_bits = graph.id_bits

    def propagate(state, parent: int, child: int):
        edge = graph.get_edge(parent, child)
        key = (edge.u, edge.v)
        if state is None:
            return key
        current = graph.get_edge(*state)
        if edge.augmented_weight(id_bits) > current.augmented_weight(id_bits):
            return key
        return state

    def collect(node_id: int, state):
        if node_id == target:
            return ("found", state)
        return None

    def combine(local, children):
        for value in [local] + list(children):
            if value is not None:
                return value
        return None

    answer, accountant = _run_aggregation(
        graph,
        forest,
        root,
        collect,
        combine,
        propagate,
        initial_state=None,
        query_bits=2 * id_bits + max(graph.max_weight().bit_length(), 1),
        reply_bits=2 * id_bits + max(graph.max_weight().bit_length(), 1),
        engine=engine,
        scheduler=scheduler,
    )
    if answer is None:
        return (False, None), accountant
    return (True, answer[1]), accountant
