"""Asynchronous event-driven CONGEST engine — a facade over the event kernel.

Messages are eventually delivered; the order is decided by a pluggable
:class:`~repro.network.scheduler.Scheduler`.  A node's action is triggered by
the delivery of a message (or by its ``on_start``), matching the paper's
asynchronous model for the repair algorithms (Theorem 1.2).

"Time" in the asynchronous setting is measured, as is standard, by the causal
depth of the execution: the accountant's round counter is advanced to the
length of the longest causal chain of messages, computed incrementally as
``depth(delivered) = depth(trigger) + 1``.

Since the unified-kernel refactor this class is a thin facade: the
simulation core (registration, validation, the delivery loop, causal-depth
accounting, the fault boundary) lives in :mod:`repro.network.kernel`, with
asynchrony expressed as the :class:`~repro.network.kernel.EventSynchrony`
policy.  This module only maps the historical API (``deliver_one`` / ``run``
/ ``deliveries`` / ``causal_depth``) onto the kernel.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .accounting import MessageAccountant
from .errors import SimulationError
from .graph import Graph
from .kernel import EventKernel, EventSynchrony
from .message import Message
from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

__all__ = ["AsynchronousSimulator"]


class AsynchronousSimulator(EventKernel):
    """Event-driven engine for per-node protocols under arbitrary schedules.

    Parameters
    ----------
    graph:
        The communication graph.  Node protocols may only send along its edges.
    scheduler:
        Delivery-order policy (FIFO when omitted).
    accountant:
        Message accountant; a fresh one is created when omitted.
    max_deliveries:
        Safety valve against non-terminating protocols.
    faults:
        Optional :class:`~repro.network.faults.FaultInjector` applied at the
        kernel's delivery boundary (``None`` = fault-free execution).
    """

    def __init__(
        self,
        graph: Graph,
        scheduler: Optional[Scheduler] = None,
        accountant: Optional[MessageAccountant] = None,
        max_deliveries: int = 10_000_000,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        super().__init__(
            graph,
            EventSynchrony(scheduler),
            accountant=accountant,
            max_steps=max_deliveries,
            faults=faults,
        )

    @property
    def scheduler(self) -> Scheduler:
        return self.synchrony.scheduler

    @property
    def max_deliveries(self) -> int:
        return self.max_steps

    @property
    def deliveries(self) -> int:
        return self.synchrony.deliveries

    @property
    def causal_depth(self) -> int:
        """Length of the longest causal message chain so far."""
        return self.synchrony.max_depth

    def deliver_one(self) -> Message:
        """Deliver a single message chosen by the scheduler."""
        if not self._started:
            raise SimulationError("call start() before deliver_one()")
        return self.synchrony.deliver_next()

    def run(self) -> int:
        """Deliver messages until none are pending.  Returns #deliveries."""
        if not self._started:
            self.start()
        self.run_to_quiescence()
        return self.deliveries
