"""Asynchronous event-driven CONGEST engine.

Messages are eventually delivered; the order is decided by a pluggable
:class:`~repro.network.scheduler.Scheduler`.  A node's action is triggered by
the delivery of a message (or by its ``on_start``), matching the paper's
asynchronous model for the repair algorithms (Theorem 1.2).

"Time" in the asynchronous setting is measured, as is standard, by the causal
depth of the execution: the accountant's round counter is advanced to the
length of the longest causal chain of messages, computed incrementally as
``depth(delivered) = depth(trigger) + 1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .accounting import MessageAccountant
from .errors import SimulationError
from .graph import Graph
from .message import Message
from .node import ProtocolNode
from .scheduler import FifoScheduler, Scheduler

__all__ = ["AsynchronousSimulator"]


class AsynchronousSimulator:
    """Event-driven engine for per-node protocols under arbitrary schedules."""

    def __init__(
        self,
        graph: Graph,
        scheduler: Optional[Scheduler] = None,
        accountant: Optional[MessageAccountant] = None,
        max_deliveries: int = 10_000_000,
    ) -> None:
        self.graph = graph
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self.max_deliveries = max_deliveries
        self._nodes: Dict[int, ProtocolNode] = {}
        self._started = False
        self._deliveries = 0
        # Causal depth bookkeeping: depth of the message currently being
        # processed (0 while running on_start handlers).
        self._current_depth = 0
        self._max_depth = 0
        self._depth_of_message: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def register(self, node: ProtocolNode) -> None:
        if not self.graph.has_node(node.node_id):
            raise SimulationError(f"node {node.node_id} is not in the graph")
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        node.attach(self)
        self._nodes[node.node_id] = node

    def register_all(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.register(node)

    @property
    def nodes(self) -> Dict[int, ProtocolNode]:
        return dict(self._nodes)

    @property
    def deliveries(self) -> int:
        return self._deliveries

    @property
    def causal_depth(self) -> int:
        """Length of the longest causal message chain so far."""
        return self._max_depth

    # ------------------------------------------------------------------ #
    # engine interface used by ProtocolNode.send
    # ------------------------------------------------------------------ #
    def submit(self, message: Message) -> None:
        if message.receiver not in self._nodes:
            raise SimulationError(
                f"message addressed to unregistered node {message.receiver}"
            )
        if not self.graph.has_edge(message.sender, message.receiver):
            raise SimulationError(
                f"no edge ({message.sender}, {message.receiver}) in the graph"
            )
        message.send_time = self._deliveries
        self._depth_of_message[message.sequence] = self._current_depth + 1
        self.scheduler.push(message)
        self.accountant.record_message(message.size_bits, kind=message.kind)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            raise SimulationError("simulation already started")
        if set(self._nodes) != set(self.graph.nodes()):
            missing = set(self.graph.nodes()) - set(self._nodes)
            raise SimulationError(f"nodes without a protocol: {sorted(missing)}")
        self._started = True
        self._current_depth = 0
        for node_id in sorted(self._nodes):
            self._nodes[node_id].on_start()

    def deliver_one(self) -> Message:
        """Deliver a single message chosen by the scheduler."""
        if not self._started:
            raise SimulationError("call start() before deliver_one()")
        message = self.scheduler.pop()
        self._deliveries += 1
        depth = self._depth_of_message.pop(message.sequence, 1)
        self._current_depth = depth
        if depth > self._max_depth:
            extra = depth - self._max_depth
            self._max_depth = depth
            self.accountant.record_rounds(extra)
        self._nodes[message.receiver].on_message(message)
        self._current_depth = 0
        return message

    def run(self) -> int:
        """Deliver messages until none are pending.  Returns #deliveries."""
        if not self._started:
            self.start()
        while not self.scheduler.empty():
            if self._deliveries >= self.max_deliveries:
                raise SimulationError(
                    f"protocol did not quiesce within {self.max_deliveries} deliveries"
                )
            self.deliver_one()
        return self._deliveries

    def all_halted(self) -> bool:
        return all(node.halted for node in self._nodes.values())
