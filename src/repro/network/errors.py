"""Exception types used across the CONGEST simulator and the algorithms.

Keeping a small, explicit hierarchy lets callers distinguish programming
errors (e.g. asking for a broadcast over a disconnected "tree") from the
expected stochastic outcomes of the Monte Carlo procedures (which are *not*
exceptions: they are returned as values, see :mod:`repro.core.findmin`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphError(ReproError):
    """Raised on malformed graph operations (duplicate edges, unknown nodes...)."""


class ForestError(ReproError):
    """Raised when a marked-edge set violates the spanning-forest invariants."""


class SimulationError(ReproError):
    """Raised when a simulation engine is driven incorrectly."""


class ProtocolError(ReproError):
    """Raised when a per-node protocol reaches an inconsistent state."""


class AccountingError(ReproError):
    """Raised on misuse of the message/round accounting objects."""


class AlgorithmError(ReproError):
    """Raised when an algorithm is invoked with invalid parameters."""
