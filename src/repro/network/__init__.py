"""CONGEST-model network substrate: graphs, simulators, broadcast-and-echo.

This subpackage provides everything the paper assumes about the execution
environment: a weighted communications graph with KT1 knowledge, synchronous
and asynchronous message-passing engines with exact message/bit/round
accounting, the maintained spanning-forest ("properly marked") state, the
broadcast-and-echo primitive, and tree leader election / cycle detection.
"""

from .accounting import CostDelta, CostSnapshot, MessageAccountant, PhaseRecord
from .async_simulator import AsynchronousSimulator
from .broadcast import (
    BroadcastEchoExecutor,
    BroadcastEchoProtocolNode,
    TreeStructure,
    build_tree_structure,
    run_reference_broadcast_echo,
)
from .errors import (
    AccountingError,
    AlgorithmError,
    ForestError,
    GraphError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .fragments import SpanningForest
from .graph import Edge, Graph, IncidentArrays, edge_key
from .tree_cache import TreeStructureCache, rooted_tree
from .leader_election import ElectionResult, detect_cycle, elect_leader
from .message import Message, message_bits_for_value
from .node import ProtocolNode
from .scheduler import (
    SCHEDULERS,
    EdgeDelayScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
    Scheduler,
    list_schedulers,
    make_scheduler,
)
from .sync_simulator import SynchronousSimulator

__all__ = [
    "AccountingError",
    "AlgorithmError",
    "AsynchronousSimulator",
    "BroadcastEchoExecutor",
    "BroadcastEchoProtocolNode",
    "CostDelta",
    "CostSnapshot",
    "Edge",
    "EdgeDelayScheduler",
    "ElectionResult",
    "FifoScheduler",
    "ForestError",
    "Graph",
    "GraphError",
    "IncidentArrays",
    "LifoScheduler",
    "Message",
    "MessageAccountant",
    "PhaseRecord",
    "ProtocolError",
    "ProtocolNode",
    "RandomScheduler",
    "ReproError",
    "SCHEDULERS",
    "Scheduler",
    "SimulationError",
    "SpanningForest",
    "SynchronousSimulator",
    "TreeStructure",
    "TreeStructureCache",
    "build_tree_structure",
    "detect_cycle",
    "rooted_tree",
    "edge_key",
    "elect_leader",
    "list_schedulers",
    "make_scheduler",
    "message_bits_for_value",
    "run_reference_broadcast_echo",
]
