"""CONGEST-model network substrate: graphs, simulators, broadcast-and-echo.

This subpackage provides everything the paper assumes about the execution
environment: a weighted communications graph with KT1 knowledge, a unified
event kernel (:mod:`repro.network.kernel`) whose synchronous and
asynchronous engines are thin facades with exact message/bit/round
accounting, a fault layer (:mod:`repro.network.faults`) injected at the
kernel's delivery boundary, the maintained spanning-forest ("properly
marked") state, the broadcast-and-echo primitive, and tree leader election /
cycle detection.
"""

from .accounting import CostDelta, CostSnapshot, MessageAccountant, PhaseRecord
from .async_simulator import AsynchronousSimulator
from .broadcast import (
    BroadcastEchoExecutor,
    BroadcastEchoProtocolNode,
    TreeStructure,
    build_tree_structure,
    run_reference_broadcast_echo,
)
from .errors import (
    AccountingError,
    AlgorithmError,
    ForestError,
    GraphError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .faults import FaultEvent, FaultInjector
from .fragments import SpanningForest
from .graph import Edge, Graph, IncidentArrays, edge_key
from .kernel import EventKernel, EventSynchrony, RoundSynchrony, SynchronyModel
from .tree_cache import TreeStructureCache, rooted_tree
from .leader_election import ElectionResult, detect_cycle, elect_leader
from .message import Message, message_bits_for_value
from .node import ProtocolNode
from .scheduler import (
    SCHEDULERS,
    EdgeDelayScheduler,
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
    Scheduler,
    list_schedulers,
    make_scheduler,
)
from .sync_simulator import SynchronousSimulator

__all__ = [
    "AccountingError",
    "AlgorithmError",
    "AsynchronousSimulator",
    "BroadcastEchoExecutor",
    "BroadcastEchoProtocolNode",
    "CostDelta",
    "CostSnapshot",
    "Edge",
    "EdgeDelayScheduler",
    "ElectionResult",
    "EventKernel",
    "EventSynchrony",
    "FaultEvent",
    "FaultInjector",
    "FifoScheduler",
    "ForestError",
    "Graph",
    "GraphError",
    "IncidentArrays",
    "LifoScheduler",
    "Message",
    "MessageAccountant",
    "PhaseRecord",
    "ProtocolError",
    "ProtocolNode",
    "RandomScheduler",
    "ReproError",
    "RoundSynchrony",
    "SCHEDULERS",
    "Scheduler",
    "SimulationError",
    "SpanningForest",
    "SynchronousSimulator",
    "SynchronyModel",
    "TreeStructure",
    "TreeStructureCache",
    "build_tree_structure",
    "detect_cycle",
    "rooted_tree",
    "edge_key",
    "elect_leader",
    "list_schedulers",
    "make_scheduler",
    "message_bits_for_value",
    "run_reference_broadcast_echo",
]
