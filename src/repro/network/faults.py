"""Fault primitives injected at the event kernel's delivery boundary.

The paper's impromptu-repair result (Theorem 1.2) is about networks that
*misbehave*: edges disappear, and in any real deployment nodes crash and
links lose or duplicate messages.  This module provides the kernel-level
half of the fault subsystem — deterministic, seed-driven decisions applied
to every message the :class:`~repro.network.kernel.EventKernel` pops for
delivery:

* **crash-stop nodes** — a node crashed at time ``t`` executes no handler
  (``on_start``, ``on_round_begin``, ``on_message``) at any time ``>= t``;
  messages addressed to it are silently lost.
* **fail-stop / partitioned links** — a link down during ``[start, end)``
  drops every message delivered across it in that window (``end=None``
  means the link never heals).
* **lossy links** — every delivery is dropped with probability ``drop`` and
  duplicated with probability ``duplicate``, drawn from a dedicated seeded
  RNG in delivery order, so the same seed reproduces the same fault history
  bit-for-bit.

Every suppressed or duplicated delivery is appended to :attr:`FaultInjector.log`
as a :class:`FaultEvent`, which is how runs prove (and tests pin) that two
executions saw the identical fault history.  The scenario-level half — named
fault *programs* and the ``FaultSpec`` axis of an experiment — lives in
:mod:`repro.api.faults`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .errors import SimulationError
from .graph import edge_key
from .message import Message

__all__ = [
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "FaultEvent",
    "FaultInjector",
]

#: Verdicts returned by :meth:`FaultInjector.verdict`.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually happened during an execution.

    ``kind`` names what happened (``"drop"`` / ``"duplicate"``), ``time`` is
    the kernel clock (round number or delivery count) at which it happened,
    and ``u`` / ``v`` are the endpoints of the affected message's edge
    (sender first).
    """

    time: int
    kind: str
    u: Optional[int] = None
    v: Optional[int] = None

    def to_list(self) -> List:
        """JSON-friendly ``[time, kind, u, v]`` form (for provenance logs)."""
        return [self.time, self.kind, self.u, self.v]


class FaultInjector:
    """Deterministic fault decisions for one execution.

    Parameters
    ----------
    crashes:
        Mapping ``node id -> crash time``; the node is crash-stopped for
        every kernel time ``>= crash time``.
    link_down:
        Iterable of ``(u, v, start, end)`` windows; the link is down for
        times in ``[start, end)``.  ``end=None`` means fail-stop (forever).
    drop / duplicate:
        Per-delivery loss and duplication probabilities in ``[0, 1)``.
    seed:
        Seed of the dedicated fault RNG.  Decisions are drawn in delivery
        order, so for a fixed schedule the fault history is reproducible.
    """

    def __init__(
        self,
        crashes: Optional[Mapping[int, int]] = None,
        link_down: Optional[Iterable[Tuple[int, int, int, Optional[int]]]] = None,
        drop: float = 0.0,
        duplicate: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= drop < 1.0:
            raise SimulationError("drop probability must be in [0, 1)")
        if not 0.0 <= duplicate < 1.0:
            raise SimulationError("duplicate probability must be in [0, 1)")
        self._crashes: Dict[int, int] = dict(crashes or {})
        self._down: Dict[Tuple[int, int], List[Tuple[int, Optional[int]]]] = {}
        for u, v, start, end in link_down or ():
            if start < 0 or (end is not None and end < start):
                raise SimulationError(
                    f"invalid link-down window [{start}, {end}) for edge ({u}, {v})"
                )
            self._down.setdefault(edge_key(u, v), []).append((start, end))
        self._drop = float(drop)
        self._duplicate = float(duplicate)
        self._rng = random.Random(seed)
        # Sequence numbers of duplicate copies: copies are never
        # re-duplicated, so a lossy link emits at most two copies per send.
        self._copies: Set[int] = set()
        self.log: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    # predicates (also used by the kernel for handler suppression)
    # ------------------------------------------------------------------ #
    def is_crashed(self, node: int, time: int) -> bool:
        crash_time = self._crashes.get(node)
        return crash_time is not None and time >= crash_time

    def link_is_down(self, u: int, v: int, time: int) -> bool:
        for start, end in self._down.get(edge_key(u, v), ()):
            if time >= start and (end is None or time < end):
                return True
        return False

    @property
    def crashed_nodes(self) -> List[int]:
        return sorted(self._crashes)

    # ------------------------------------------------------------------ #
    # the per-delivery decision
    # ------------------------------------------------------------------ #
    def verdict(self, message: Message, time: int) -> str:
        """Decide the fate of one delivery; logs anything that is not clean."""
        if self.is_crashed(message.receiver, time):
            self._log(time, DROP, message)
            return DROP
        if self.link_is_down(message.sender, message.receiver, time):
            self._log(time, DROP, message)
            return DROP
        if self._drop and self._rng.random() < self._drop:
            self._log(time, DROP, message)
            return DROP
        if (
            self._duplicate
            and message.sequence not in self._copies
            and self._rng.random() < self._duplicate
        ):
            self._log(time, DUPLICATE, message)
            return DUPLICATE
        return DELIVER

    def mark_duplicate(self, copy: Message) -> None:
        """Remember a duplicate copy so it is never re-duplicated."""
        self._copies.add(copy.sequence)

    def on_deliver(self, message: Message, time: int) -> Optional[Message]:
        """Hook: last look at a message that *will* reach its handler.

        Called by the kernel after :meth:`verdict` returned ``DELIVER`` (or
        ``DUPLICATE``) and immediately before the receiver's ``on_message``
        runs.  Subclasses — the Byzantine behaviours in
        :mod:`repro.byzantine.behaviors`, notably — may mutate the message
        in place (payload corruption, equivocation) and/or return an extra
        :class:`Message` the kernel should enqueue as a fresh wire send (a
        stale replay), whose cost the kernel charges to the accountant like
        any other message.

        The base implementation does nothing and returns ``None``: an
        injector without adversarial behaviour is bit-identical to the
        pre-Byzantine fault boundary.
        """
        return None

    # ------------------------------------------------------------------ #
    # the observable fault history
    # ------------------------------------------------------------------ #
    def event_log(self) -> List[List]:
        """The faults that actually happened, as JSON-friendly rows."""
        return [event.to_list() for event in self.log]

    def _log(self, time: int, kind: str, message: Message) -> None:
        self.log.append(
            FaultEvent(time=time, kind=kind, u=message.sender, v=message.receiver)
        )
