"""Benchmark trajectory harness: fast path vs reference, counters pinned.

``repro bench`` runs each registered micro-benchmark twice — once with the
reference implementations (:func:`repro.fastpath.reference_path`, i.e. the
pre-fast-path code) and once with the fast path (cached tree structures,
one-pass sketch kernels, batched columnar passes) — records the wall-clock
of both, **asserts that every observable counter (messages, bits, rounds,
broadcast-and-echoes, phases) is bit-identical**, and emits a
machine-readable JSON record (``BENCH_PR9.json`` by default) so the
repository accumulates a perf trajectory across PRs.
:func:`compare_to_baseline` turns two such reports into per-benchmark
speedup deltas (``repro bench --baseline BENCH_PR7.json`` prints them and
exits non-zero on a >25% regression); speedups — the reference/fast
wall-clock *ratio* — are compared rather than raw wall seconds, so the gate
is meaningful across machines of different speeds.

``--profile large`` appends each benchmark's large-n scaling sizes
(currently ``bench_sketch_pass`` at n=10^4 / 10^5 and a sparse n=10^6
smoke).  Above a benchmark's ``reference_cutoff`` the reference pass would
take hours, so only the fast path runs and the record carries
``wall_s_reference = speedup = null`` — the counters of such rows are
unchecked by construction, which is why every cutoff sits *above* at least
one size where both paths still run and are compared.  ``--mem``
additionally records the ``tracemalloc`` peak of each pass (tracing is
symmetric on both paths, so the speedup ratio stays fair; expect ~2x wall
overhead).

Each benchmark builds its scenario from a :class:`~repro.api.spec.GraphSpec`
with a fixed seed; only the algorithm under measurement is inside the timed
region.  A counter divergence makes the run fail (non-zero exit from the
CLI), which is what the CI benchmark smoke job keys off.

Registered benchmarks
---------------------
``bench_build_mst`` / ``bench_build_st``
    Full construction on dense graphs (the headline o(m) workload).
``bench_findmin`` / ``bench_findany``
    One search from the larger side of a broken spanning tree.
``bench_testout``
    A volley of TestOut / HP-TestOut calls over one cut.
``bench_repair``
    Impromptu repair under the registered ``churn`` workload.
``bench_broadcast_byzantine`` / ``bench_broadcast_byzantine_sparse``
    The same B&E volley on the plain and the Bracha reliable-broadcast
    substrates; the counters quantify the hardening overhead (the
    ``overhead_x100`` counter is the bracha/plain message ratio x100).
``bench_service_throughput``
    A spec-trace batch submitted to an in-process ``repro serve`` twice
    over one persistent store: the reference pass is *cold* (every request
    runs), the fast pass is *warm* (every request answered from the
    content-addressed store).  Counter equality asserts the served results
    are identical to the computed ones; the speedup is the measured value
    of result caching.
``bench_sketch_pass``
    One whole-graph sketch volley (statistics + TestOut + HP-TestOut +
    FindAny) on a sparse broken spanning tree — the workload the columnar
    batched kernels target.  Its ``--profile large`` sizes scale it to
    n=10^6.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import fastpath
from .accel import HAVE_NUMPY
from .api.scenario import WorkloadSpec
from .api.spec import GraphSpec
from .core.build_mst import BuildMST
from .core.build_st import BuildST
from .core.config import AlgorithmConfig
from .core.findany import FindAny
from .core.findmin import FindMin
from .core.testout import CutTester
from .dynamic import TreeMaintainer
from .generators import random_spanning_tree_forest
from .network.accounting import MessageAccountant
from .network.broadcast import BroadcastEchoExecutor, make_substrate
from .network.errors import AlgorithmError
from .network.fragments import SpanningForest
from .network.graph import Graph

__all__ = [
    "BENCHMARKS",
    "BenchRecord",
    "REGRESSION_THRESHOLD",
    "compare_to_baseline",
    "list_benchmarks",
    "load_report",
    "run_benchmark",
    "run_benchmarks",
    "write_report",
]

#: Schema tag written into every report, bumped on breaking format changes.
#: v2: nullable ``wall_s_reference`` / ``speedup`` on rows above a
#: benchmark's ``reference_cutoff``, optional ``peak_kb_*`` memory fields,
#: top-level ``profile`` / ``mem`` / ``numpy`` provenance.
SCHEMA = "repro-bench/2"

Counters = Dict[str, int]
#: A benchmark body: (n, density, seed) -> (counters, num_edges).
BenchFn = Callable[[int, str, int], Tuple[Counters, int]]


@dataclass
class _Benchmark:
    fn: BenchFn
    density: str
    sizes: Tuple[int, ...]
    quick_sizes: Tuple[int, ...]
    summary: str
    #: Extra sizes appended by ``--profile large`` (and their --quick subset).
    large_sizes: Tuple[int, ...] = ()
    large_quick_sizes: Tuple[int, ...] = ()
    #: Above this n only the fast path runs (None = always run both).
    reference_cutoff: Optional[int] = None


@dataclass
class BenchRecord:
    """One benchmark size, measured on both paths.

    Rows above the benchmark's ``reference_cutoff`` are fast-path-only:
    ``wall_s_reference`` and ``speedup`` are ``None`` and
    ``counters_equal`` is vacuously true (there is nothing to compare).
    """

    benchmark: str
    n: int
    m: int
    density: str
    seed: int
    counters: Counters
    wall_s_reference: Optional[float]
    wall_s_fast: float
    speedup: Optional[float]
    counters_equal: bool
    reference_counters: Optional[Counters] = None  # only kept on divergence
    peak_kb_fast: Optional[int] = None  # tracemalloc peaks, --mem only
    peak_kb_reference: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        if self.counters_equal:
            payload.pop("reference_counters")
        if self.peak_kb_fast is None:
            payload.pop("peak_kb_fast")
            payload.pop("peak_kb_reference")
        return payload


BENCHMARKS: Dict[str, _Benchmark] = {}


def _register(
    name: str,
    density: str,
    sizes: Sequence[int],
    quick_sizes: Sequence[int],
    summary: str,
    large_sizes: Sequence[int] = (),
    large_quick_sizes: Sequence[int] = (),
    reference_cutoff: Optional[int] = None,
) -> Callable[[BenchFn], BenchFn]:
    def decorator(fn: BenchFn) -> BenchFn:
        BENCHMARKS[name] = _Benchmark(
            fn=fn,
            density=density,
            sizes=tuple(sizes),
            quick_sizes=tuple(quick_sizes),
            summary=summary,
            large_sizes=tuple(large_sizes),
            large_quick_sizes=tuple(large_quick_sizes),
            reference_cutoff=reference_cutoff,
        )
        return fn

    return decorator


def list_benchmarks() -> List[str]:
    return sorted(BENCHMARKS)


# ---------------------------------------------------------------------- #
# shared scenario builders
# ---------------------------------------------------------------------- #
def _graph(n: int, density: str, seed: int) -> Graph:
    return GraphSpec(nodes=n, density=density, seed=seed).build()


def _broken_tree(n: int, density: str, seed: int) -> Tuple[Graph, SpanningForest, int]:
    """A random spanning tree with one edge removed; root = larger side."""
    graph = _graph(n, density, seed)
    forest = random_spanning_tree_forest(graph, seed=seed + 1)
    key = sorted(forest.marked_edges)[n // 3]
    forest.unmark(*key)
    root = max(key, key=lambda node: len(forest.component_of(node)))
    return graph, forest, root


def _build_counters(report) -> Counters:
    return {
        "messages": report.messages,
        "bits": report.bits,
        "rounds": report.rounds_parallel,
        "phases": report.phases,
        "broadcast_echoes": report.broadcast_echoes,
    }


def _accountant_counters(accountant: MessageAccountant) -> Counters:
    return dict(accountant.summary())


# ---------------------------------------------------------------------- #
# benchmark bodies (the timed region is the algorithm only)
# ---------------------------------------------------------------------- #
@_register(
    "bench_build_mst",
    density="dense",
    sizes=(256, 512, 1024),
    quick_sizes=(1024,),
    summary="KKT Build-MST on a dense graph",
)
def _bench_build_mst(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph = _graph(n, density, seed)
    report = BuildMST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
    return _build_counters(report), graph.num_edges


@_register(
    "bench_build_st",
    density="dense",
    sizes=(256, 512),
    quick_sizes=(512,),
    summary="KKT Build-ST on a dense graph",
)
def _bench_build_st(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph = _graph(n, density, seed)
    report = BuildST(graph, config=AlgorithmConfig(n=n, seed=seed)).run()
    return _build_counters(report), graph.num_edges


@_register(
    "bench_findmin",
    density="dense",
    sizes=(512, 1024),
    quick_sizes=(512,),
    summary="FindMin from the larger side of a broken spanning tree",
)
def _bench_findmin(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph, forest, root = _broken_tree(n, density, seed)
    accountant = MessageAccountant()
    FindMin(graph, forest, AlgorithmConfig(n=n, seed=seed), accountant).find_min(root)
    return _accountant_counters(accountant), graph.num_edges


@_register(
    "bench_findany",
    density="dense",
    sizes=(512, 1024),
    quick_sizes=(1024,),
    summary="FindAny from the larger side of a broken spanning tree",
)
def _bench_findany(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph, forest, root = _broken_tree(n, density, seed)
    accountant = MessageAccountant()
    # A handful of independent calls so the timed region is not dominated by
    # a single lucky attempt (each call re-derives its hashes from the seed).
    for repeat in range(4):
        finder = FindAny(
            graph, forest, AlgorithmConfig(n=n, seed=seed + repeat), accountant
        )
        finder.find_any(root)
    return _accountant_counters(accountant), graph.num_edges


@_register(
    "bench_testout",
    density="dense",
    sizes=(512, 1024),
    quick_sizes=(1024,),
    summary="TestOut x16 + HP-TestOut x4 over one cut",
)
def _bench_testout(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph, forest, root = _broken_tree(n, density, seed)
    accountant = MessageAccountant()
    tester = CutTester(graph, forest, AlgorithmConfig(n=n, seed=seed), accountant)
    for _ in range(16):
        tester.test_out(root)
    for _ in range(4):
        tester.hp_test_out(root)
    return _accountant_counters(accountant), graph.num_edges


@_register(
    "bench_repair",
    density="sparse",
    sizes=(512, 1024),
    quick_sizes=(512,),
    summary="Impromptu MST repair under the churn workload (16 updates)",
)
def _bench_repair(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    graph = _graph(n, density, seed)
    config = AlgorithmConfig(n=n, seed=seed)
    report = BuildMST(graph, config=config).run()
    workload = WorkloadSpec(name="churn", updates=16).resolve_seed(seed)
    stream = workload.build(graph, report.forest)
    maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=seed)
    maintainer.apply_stream(stream)
    return _accountant_counters(maintainer.accountant), graph.num_edges


@_register(
    "bench_repair_batched",
    density="sparse",
    sizes=(1024, 2048),
    quick_sizes=(1024,),
    reference_cutoff=1024,
    summary="Batched vs sequential impromptu repair: one shared wave per k updates",
)
def _bench_repair_batched(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    """Sequential and batched repair legs over the same churn stream.

    For each wave size ``k`` both legs rebuild the identical scenario
    (same graph seed, same MST, same stream), so the message ratio
    ``amortized_x100_k{k}`` is the measured amortization of sharing one
    repair round per wave, and ``forest_equal_k{k}`` pins the batched
    contract — the final forest must match sequential exactly (the MSF is
    unique under augmented weights).  All counters are value-level, so
    the fast and reference paths charge them identically.
    """
    counters: Counters = {}
    edges = 0
    for k in (4, 16, 64):
        legs: Dict[str, TreeMaintainer] = {}
        for label, batch in (("seq", None), ("batched", k)):
            graph = _graph(n, density, seed)
            config = AlgorithmConfig(n=n, seed=seed)
            report = BuildMST(graph, config=config).run()
            workload = WorkloadSpec(name="churn", updates=k).resolve_seed(seed + k)
            stream = workload.build(graph, report.forest)
            maintainer = TreeMaintainer(graph, report.forest, mode="mst", seed=seed)
            maintainer.apply_stream(stream, batch_size=batch)
            legs[label] = maintainer
            edges = graph.num_edges
        seq_messages = legs["seq"].accountant.summary()["messages"]
        batched_messages = legs["batched"].accountant.summary()["messages"]
        counters[f"seq_messages_k{k}"] = seq_messages
        counters[f"batched_messages_k{k}"] = batched_messages
        counters[f"amortized_x100_k{k}"] = seq_messages * 100 // max(batched_messages, 1)
        counters[f"forest_equal_k{k}"] = int(
            sorted(legs["seq"].forest.marked_edges)
            == sorted(legs["batched"].forest.marked_edges)
        )
        counters[f"saved_queries_k{k}"] = sum(
            outcome.report.skipped_candidates
            for outcome in legs["batched"].batch_history
        )
    return counters, edges


def _bench_broadcast_byzantine_body(
    n: int, density: str, seed: int
) -> Tuple[Counters, int]:
    """B&E volley on the plain and Bracha substrates; counters for both.

    The volley (8 aggregating B&Es, 2 pure broadcasts, 2 point-to-point
    sends) is fixed and its cost depends only on the tree shape, so the
    fast and reference paths charge identical counters on *both*
    substrates — the harness's equality assertion doubles as a regression
    test for the substrate accounting itself.
    """
    graph = _graph(n, density, seed)
    forest = random_spanning_tree_forest(graph, seed=seed + 1)
    root = min(graph.nodes())
    u, v = min((edge.u, edge.v) for edge in graph.edges())
    counters: Counters = {}
    for label, substrate in (
        ("plain", make_substrate("plain")),
        ("bracha", make_substrate("bracha", n=n)),
    ):
        accountant = MessageAccountant()
        executor = BroadcastEchoExecutor(graph, forest, accountant, substrate=substrate)
        for _ in range(8):
            executor.broadcast_and_echo(
                root,
                local_value=lambda node: 1,
                combine=lambda own, children: own + sum(children),
                broadcast_bits=1,
                echo_bits=graph.id_bits,
                kind="sum",
            )
        for _ in range(2):
            executor.broadcast_only(root, broadcast_bits=graph.id_bits)
        for _ in range(2):
            executor.point_to_point_along_edge(u, v, graph.id_bits)
        for key, value in accountant.summary().items():
            counters[f"{label}_{key}"] = value
    counters["overhead_x100"] = (
        counters["bracha_messages"] * 100 // max(counters["plain_messages"], 1)
    )
    return counters, graph.num_edges


@_register(
    "bench_broadcast_byzantine",
    density="dense",
    sizes=(128, 256),
    quick_sizes=(128,),
    summary="B&E volley: plain vs Bracha substrate (hardening overhead, dense)",
)
def _bench_broadcast_byzantine(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    return _bench_broadcast_byzantine_body(n, density, seed)


@_register(
    "bench_broadcast_byzantine_sparse",
    density="sparse",
    sizes=(128, 256),
    quick_sizes=(128,),
    summary="B&E volley: plain vs Bracha substrate (hardening overhead, sparse)",
)
def _bench_broadcast_byzantine_sparse(
    n: int, density: str, seed: int
) -> Tuple[Counters, int]:
    return _bench_broadcast_byzantine_body(n, density, seed)


@_register(
    "bench_sketch_pass",
    density="sparse",
    sizes=(1024, 4096),
    quick_sizes=(1024,),
    large_sizes=(10_000, 100_000, 1_000_000),
    large_quick_sizes=(10_000,),
    reference_cutoff=10_000,
    summary="Whole-graph sketch volley: stats + TestOut + HP-TestOut + FindAny",
)
def _bench_sketch_pass(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    """The columnar-kernel workload: one volley of every batched sketch.

    Each call in the volley runs whole-graph on the fast path (one columnar
    pass computes the words of every node) and per-node on the reference
    path, so this benchmark is the direct measure of the batched tier.  The
    n=10^5 / 10^6 rows only exist under ``--profile large`` and run
    fast-path-only (``reference_cutoff``): at those sizes the reference
    per-node Python loops take hours, while equality is already pinned at
    every size up to 10^4.
    """
    graph, forest, root = _broken_tree(n, density, seed)
    accountant = MessageAccountant()
    tester = CutTester(graph, forest, AlgorithmConfig(n=n, seed=seed), accountant)
    tester.tree_statistics(root)
    for _ in range(2):
        tester.test_out(root)
    tester.hp_test_out(root)
    finder = FindAny(graph, forest, AlgorithmConfig(n=n, seed=seed + 1), accountant)
    finder.find_any(root)
    return _accountant_counters(accountant), graph.num_edges


#: Store directories handed from a service benchmark's reference (cold) pass
#: to its fast (warm) pass, keyed by (n, density, seed).  ``run_benchmark``
#: calls the body exactly twice, reference first, so pop-or-create maps the
#: harness's two passes onto cold-then-warm over one persistent store.
_SERVICE_WARM_STORES: Dict[Tuple[int, str, int], str] = {}


@_register(
    "bench_service_throughput",
    density="sparse",
    sizes=(32, 48),
    quick_sizes=(32,),
    summary="Service batch submit: cold run vs warm (all cache hits)",
)
def _bench_service_throughput(n: int, density: str, seed: int) -> Tuple[Counters, int]:
    """Submit a spec-trace batch to an in-process server over HTTP.

    The counters are the summed deterministic run counters of the batch
    (never hit counts), so the harness's equality assertion checks that the
    store serves byte-faithful results: the warm pass's counters come from
    stored canonical JSON, the cold pass's from live runs.
    """
    import shutil
    import tempfile

    from .service import InProcessServer, ServiceClient, ServiceConfig
    from .service import spec_trace_requests

    key = (n, density, seed)
    warm_store = _SERVICE_WARM_STORES.pop(key, None)
    cold = warm_store is None
    store_path = warm_store or tempfile.mkdtemp(prefix="repro-bench-service-")
    requests = spec_trace_requests(
        algorithms=["kkt-mst", "ghs"],
        sizes=[max(n // 2, 8), n],
        density=density,
        seed=seed,
    )
    config = ServiceConfig(workers=2, executor="thread", store_path=store_path)
    try:
        with InProcessServer(config) as server:
            response = ServiceClient(port=server.port).submit(requests, wait=True)
    except BaseException:
        shutil.rmtree(store_path, ignore_errors=True)
        raise
    counters: Counters = {
        "requests": len(requests),
        "messages": 0,
        "bits": 0,
        "rounds": 0,
        "errors": 0,
    }
    for entry in response["jobs"]:
        result = entry.get("result")
        if not result:
            counters["errors"] += 1
            continue
        counters["messages"] += result["messages"]
        counters["bits"] += result["bits"]
        counters["rounds"] += result["rounds"]
    if cold:
        _SERVICE_WARM_STORES[key] = store_path
    else:
        shutil.rmtree(store_path, ignore_errors=True)
    return counters, _graph(n, density, seed).num_edges


# ---------------------------------------------------------------------- #
# driver
# ---------------------------------------------------------------------- #
def _timed_pass(bench: _Benchmark, n: int, seed: int, mem: bool):
    """One body call: (counters, m, wall_s, peak_kb-or-None)."""
    # Collect before timing: garbage left by earlier benchmarks (the service
    # suite in particular) slows the allocation-heavy reference pass by 2-3x,
    # which would make a row's speedup depend on suite position and break
    # comparisons against isolated reruns (the bench-large-smoke CI job).
    gc.collect()
    if mem:
        tracemalloc.start()
    start = time.perf_counter()
    counters, m = bench.fn(n, bench.density, seed)
    wall = time.perf_counter() - start
    peak_kb = None
    if mem:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_kb = peak // 1024
    return counters, m, wall, peak_kb


def run_benchmark(name: str, n: int, seed: int = 2015, mem: bool = False) -> BenchRecord:
    """Run one benchmark size on both paths and compare.

    Above the benchmark's ``reference_cutoff`` only the fast path runs;
    ``mem`` traces both passes with :mod:`tracemalloc` (symmetric, so the
    speedup ratio is unaffected by the tracing overhead).
    """
    try:
        bench = BENCHMARKS[name]
    except KeyError:
        known = ", ".join(list_benchmarks())
        raise AlgorithmError(
            f"unknown benchmark {name!r}; registered benchmarks: {known}"
        ) from None

    run_reference = bench.reference_cutoff is None or n <= bench.reference_cutoff
    reference_counters: Optional[Counters] = None
    wall_reference: Optional[float] = None
    peak_reference: Optional[int] = None
    if run_reference:
        with fastpath.reference_path():
            reference_counters, _, wall_reference, peak_reference = _timed_pass(
                bench, n, seed, mem
            )
    with fastpath.fast_path():
        fast_counters, m, wall_fast, peak_fast = _timed_pass(bench, n, seed, mem)

    equal = (not run_reference) or fast_counters == reference_counters
    return BenchRecord(
        benchmark=name,
        n=n,
        m=m,
        density=bench.density,
        seed=seed,
        counters=fast_counters,
        wall_s_reference=None if wall_reference is None else round(wall_reference, 4),
        wall_s_fast=round(wall_fast, 4),
        speedup=None
        if wall_reference is None
        else round(wall_reference / max(wall_fast, 1e-9), 2),
        counters_equal=equal,
        reference_counters=None if equal else reference_counters,
        peak_kb_fast=peak_fast,
        peak_kb_reference=peak_reference,
    )


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 2015,
    progress: Optional[Callable[[str], None]] = None,
    profile: str = "default",
    mem: bool = False,
) -> Dict[str, Any]:
    """Run the selected benchmarks; returns the JSON-ready report dict.

    ``sizes`` overrides every benchmark's size list (used by tests and for
    quick local iteration); otherwise ``quick`` selects the smaller
    per-benchmark size lists and ``profile="large"`` appends each
    benchmark's large-n scaling sizes.  ``mem`` records tracemalloc peaks.
    """
    if profile not in ("default", "large"):
        raise AlgorithmError(
            f"unknown bench profile {profile!r}; choose 'default' or 'large'"
        )
    selected = list(names) if names else list_benchmarks()
    records: List[BenchRecord] = []
    warmed = False
    for name in selected:
        if name not in BENCHMARKS:
            known = ", ".join(list_benchmarks())
            raise AlgorithmError(
                f"unknown benchmark {name!r}; registered benchmarks: {known}"
            )
        bench = BENCHMARKS[name]
        if sizes:
            bench_sizes = tuple(sizes)
        else:
            bench_sizes = bench.quick_sizes if quick else bench.sizes
            if profile == "large":
                bench_sizes += (
                    bench.large_quick_sizes if quick else bench.large_sizes
                )
        if not warmed and bench_sizes and bench_sizes[0] <= 4096:
            # One untimed run of the first (small) row: the process's first
            # pass otherwise absorbs allocator/import warmup into whichever
            # benchmark happens to run first — a 3 ms row can read 8x slow,
            # which poisons that row's speedup in the committed trajectory.
            with fastpath.fast_path():
                bench.fn(bench_sizes[0], bench.density, seed)
            warmed = True
        for n in bench_sizes:
            if progress is not None:
                progress(f"{name} n={n} ({bench.density}) ...")
            records.append(run_benchmark(name, n, seed=seed, mem=mem))
    return {
        "schema": SCHEMA,
        "created_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "quick": quick,
        "profile": profile,
        "mem": mem,
        "numpy": HAVE_NUMPY,
        "seed": seed,
        "counters_equal": all(record.counters_equal for record in records),
        "results": [record.to_dict() for record in records],
    }


def write_report(report: Dict[str, Any], path: str) -> str:
    """Write the report as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------- #
# trajectory comparison (`repro bench --baseline`)
# ---------------------------------------------------------------------- #
#: The trajectory "regresses" when the geometric mean of the per-benchmark
#: speedup ratios falls below this fraction (0.75 = the >25% gate of the CLI).
REGRESSION_THRESHOLD = 0.75

#: A single benchmark additionally fails the gate when its own speedup falls
#: below this fraction of its baseline.  One wall-clock sample per row has
#: roughly +/-30% machine noise (the same commit can score 3.0x or 4.3x on
#: findany@1024 depending on load), so the per-row floor only catches genuine
#: craters while the tighter threshold above judges the aggregate, where the
#: noise averages out.
ROW_FLOOR = 0.5


def load_report(path: str) -> Dict[str, Any]:
    """Load a committed trajectory report, with the CLI error contract."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        raise AlgorithmError(f"baseline report not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise AlgorithmError(f"invalid baseline report {path}: {exc}") from exc
    if not isinstance(report, dict) or "results" not in report:
        raise AlgorithmError(f"baseline report {path} has no 'results' section")
    return report


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
    row_floor: float = ROW_FLOOR,
) -> Dict[str, Any]:
    """Per-benchmark speedup deltas of ``current`` against ``baseline``.

    Records are matched on ``(benchmark, n)``.  The compared quantity is the
    *speedup* (reference wall / fast wall), not raw wall seconds, so reports
    recorded on different machines stay comparable.  Two gates apply: the
    geometric mean of the per-row speedup ratios must stay above
    ``threshold`` (the trajectory gate — single rows are one-sample noisy,
    the aggregate is not), and every individual row must stay above
    ``row_floor``× its baseline speedup (the crater gate).  Returns
    ``{"rows", "regressions", "aggregate_ratio", "aggregate_regressed",
    "missing", "uncompared"}``: ``missing`` lists current results with no
    baseline record, ``uncompared`` baseline records the current run never
    measured (so a partial run cannot silently pass the gate as a full
    comparison).
    """
    recorded = {
        (record["benchmark"], record["n"]): record for record in baseline["results"]
    }
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    missing: List[str] = []
    ratios: List[float] = []
    compared = set()
    for record in current["results"]:
        key = (record["benchmark"], record["n"])
        base = recorded.get(key)
        label = f"{key[0]}@n={key[1]}"
        if base is None:
            missing.append(label)
            continue
        compared.add(key)
        base_speedup = base.get("speedup")
        speedup = record.get("speedup")
        if base_speedup is None or speedup is None:
            # A fast-path-only row (above the reference cutoff) on either
            # side: nothing to gate, but keep the row visible.
            rows.append(
                {
                    "benchmark": key[0],
                    "n": key[1],
                    "baseline_speedup": base_speedup,
                    "current_speedup": speedup,
                    "delta_pct": None,
                    "regressed": False,
                }
            )
            continue
        delta_pct = 100.0 * (speedup / base_speedup - 1.0) if base_speedup else 0.0
        regressed = bool(base_speedup) and speedup < row_floor * base_speedup
        if base_speedup and speedup:
            ratios.append(speedup / base_speedup)
        rows.append(
            {
                "benchmark": key[0],
                "n": key[1],
                "baseline_speedup": base_speedup,
                "current_speedup": speedup,
                "delta_pct": round(delta_pct, 1),
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(label)
    aggregate_ratio = (
        math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))
        if ratios
        else 1.0
    )
    uncompared = sorted(
        f"{name}@n={n}" for name, n in set(recorded) - compared
    )
    return {
        "rows": rows,
        "regressions": regressions,
        "aggregate_ratio": round(aggregate_ratio, 4),
        "aggregate_regressed": aggregate_ratio < threshold,
        "missing": missing,
        "uncompared": uncompared,
    }
