"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the library's main entry points without writing any Python:

* ``build-mst`` / ``build-st`` — construct a tree on a generated graph and
  print the cost report next to the relevant baseline;
* ``repair`` — build an MST/ST, apply a churn workload impromptu and print
  per-update costs;
* ``sweep`` — run a size sweep of a construction and print the normalised
  table (a lightweight version of the benchmark harness);
* ``selfcheck`` — run a quick end-to-end correctness pass (useful after an
  installation).

Examples
--------
::

    python -m repro build-mst --nodes 96 --density complete --seed 7
    python -m repro repair --nodes 64 --updates 10 --mode mst
    python -m repro sweep --kind st --sizes 32 64 96 --density complete
    python -m repro selfcheck
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import ExperimentTable, run_construction_measurement, summarize
from .baselines import RecomputeMaintainer
from .core.build_mst import BuildMST
from .core.build_st import BuildST
from .core.config import AlgorithmConfig
from .dynamic import TreeMaintainer, UpdateKind, random_churn, tree_edge_deletions
from .generators import complete_graph, random_connected_graph
from .network.graph import Graph
from .verify import is_minimum_spanning_forest, is_spanning_forest

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------- #
# argument parsing
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="King-Kutten-Thorup (PODC 2015) MST construction and impromptu repair",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--nodes", "-n", type=int, default=64, help="number of nodes")
        sub.add_argument(
            "--density",
            choices=["sparse", "medium", "dense", "complete"],
            default="dense",
            help="edge-density profile",
        )
        sub.add_argument("--seed", type=int, default=2015, help="random seed")
        sub.add_argument("--error-exponent", "-c", type=float, default=1.0,
                         help="success probability exponent c (failure <= n^-c)")

    for kind in ("mst", "st"):
        sub = subparsers.add_parser(
            f"build-{kind}", help=f"construct a {'minimum spanning' if kind == 'mst' else 'spanning'} tree"
        )
        add_graph_arguments(sub)

    repair = subparsers.add_parser("repair", help="apply an impromptu-repair churn workload")
    add_graph_arguments(repair)
    repair.add_argument("--mode", choices=["mst", "st"], default="mst")
    repair.add_argument("--updates", type=int, default=10)
    repair.add_argument("--compare-recompute", action="store_true",
                        help="also run the recompute-from-scratch baseline")

    sweep = subparsers.add_parser("sweep", help="size sweep of a construction")
    sweep.add_argument("--kind", choices=["mst", "st"], default="st")
    sweep.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 96])
    sweep.add_argument(
        "--density",
        choices=["sparse", "medium", "dense", "complete"],
        default="complete",
    )
    sweep.add_argument("--seed", type=int, default=1)

    subparsers.add_parser("selfcheck", help="quick end-to-end correctness pass")
    return parser


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #
def _make_graph(n: int, density: str, seed: int) -> Graph:
    if density == "complete":
        return complete_graph(n, seed=seed)
    edges = {"sparse": 3 * n, "medium": int(n ** 1.5), "dense": n * (n - 1) // 4}[density]
    edges = min(max(edges, n - 1), n * (n - 1) // 2)
    return random_connected_graph(n, edges, seed=seed)


def _command_build(kind: str, args: argparse.Namespace) -> int:
    measurement = run_construction_measurement(
        args.nodes, kind=kind, density=args.density, seed=args.seed, c=args.error_exponent
    )
    table = ExperimentTable(
        "build", f"Build-{kind.upper()} on a {args.density} graph", ["quantity", "value"]
    )
    table.add_row("nodes (n)", measurement.n)
    table.add_row("edges (m)", measurement.m)
    table.add_row(f"KKT Build-{kind.upper()} messages", measurement.kkt_messages)
    table.add_row(f"{measurement.baseline_name} baseline messages", measurement.baseline_messages)
    table.add_row("KKT messages / m", round(measurement.kkt_over_m, 3))
    table.add_row("baseline messages / m", round(measurement.baseline_over_m, 3))
    table.add_row("KKT bits", measurement.kkt_bits)
    table.add_row("KKT rounds (parallel)", measurement.kkt_rounds)
    table.add_row("phases", measurement.kkt_phases)
    print(table.render())
    return 0


def _command_repair(args: argparse.Namespace) -> int:
    graph = _make_graph(args.nodes, args.density, args.seed)
    config = AlgorithmConfig(n=args.nodes, seed=args.seed, c=args.error_exponent)
    builder = BuildMST(graph, config=config) if args.mode == "mst" else BuildST(graph, config=config)
    report = builder.run()
    maintainer = TreeMaintainer(graph, report.forest, mode=args.mode, seed=args.seed)
    stream = tree_edge_deletions(
        graph, report.forest, count=max(args.updates // 2, 1), seed=args.seed
    )
    stream.extend(random_churn(graph, count=args.updates - len(stream) // 2, seed=args.seed + 1))
    maintainer.apply_stream(stream)

    checker = is_minimum_spanning_forest if args.mode == "mst" else is_spanning_forest
    ok = checker(report.forest)
    costs = maintainer.messages_per_update()
    stats = summarize(costs)
    table = ExperimentTable(
        "repair", f"Impromptu {args.mode.upper()} repair under churn", ["quantity", "value"]
    )
    table.add_row("nodes / edges", f"{graph.num_nodes} / {graph.num_edges}")
    table.add_row("updates processed", len(costs))
    table.add_row("tree invariant holds", ok)
    table.add_row("messages per update (mean)", round(stats.mean, 1))
    table.add_row("messages per update (median)", round(stats.median, 1))
    table.add_row("messages per update (max)", round(stats.maximum, 1))
    if args.compare_recompute:
        baseline_graph = _make_graph(args.nodes, args.density, args.seed)
        baseline = RecomputeMaintainer(baseline_graph, mode=args.mode)
        baseline_costs = []
        for update in stream:
            if update.kind is UpdateKind.DELETE:
                baseline_costs.append(baseline.delete_edge(update.u, update.v).messages)
            elif update.kind is UpdateKind.INSERT:
                baseline_costs.append(
                    baseline.insert_edge(update.u, update.v, update.weight or 1).messages
                )
            else:
                baseline_costs.append(
                    baseline.change_weight(update.u, update.v, update.weight or 1).messages
                )
        table.add_row("recompute baseline per update (mean)", round(summarize(baseline_costs).mean, 1))
    print(table.render())
    return 0 if ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    bound = "n_log2_n_over_loglog_n" if args.kind == "mst" else "n_log_n"
    table = ExperimentTable(
        "sweep",
        f"Build-{args.kind.upper()} sweep ({args.density} graphs)",
        ["n", "m", "KKT msgs", "baseline msgs", "KKT/m", "KKT/bound"],
    )
    for n in args.sizes:
        measurement = run_construction_measurement(
            n, kind=args.kind, density=args.density, seed=args.seed
        )
        table.add_row(
            measurement.n,
            measurement.m,
            measurement.kkt_messages,
            measurement.baseline_messages,
            round(measurement.kkt_over_m, 3),
            round(measurement.kkt_over_bound(bound), 3),
        )
    table.add_note(f"bound = {bound}")
    print(table.render())
    return 0


def _command_selfcheck(_args: argparse.Namespace) -> int:
    graph = random_connected_graph(32, 120, seed=3)
    mst = BuildMST(graph, config=AlgorithmConfig(n=32, seed=3)).run()
    ok_mst = is_minimum_spanning_forest(mst.forest)

    st_graph = random_connected_graph(32, 120, seed=4)
    st = BuildST(st_graph, config=AlgorithmConfig(n=32, seed=4)).run()
    ok_st = is_spanning_forest(st.forest)

    maintainer = TreeMaintainer(graph, mst.forest, mode="mst", seed=5)
    stream = tree_edge_deletions(graph, mst.forest, count=3, seed=5)
    maintainer.apply_stream(stream)
    ok_repair = is_minimum_spanning_forest(mst.forest)

    for label, ok in (("build-mst", ok_mst), ("build-st", ok_st), ("repair", ok_repair)):
        print(f"{label:10s} {'OK' if ok else 'FAILED'}")
    return 0 if (ok_mst and ok_st and ok_repair) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "build-mst":
        return _command_build("mst", args)
    if args.command == "build-st":
        return _command_build("st", args)
    if args.command == "repair":
        return _command_repair(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "selfcheck":
        return _command_selfcheck(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
