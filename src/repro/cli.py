"""Command-line interface: ``python -m repro <command> ...`` (or ``repro ...``).

The CLI is built on the unified runner API (:mod:`repro.api`): every
algorithm in the registry is runnable by name, results are uniform
:class:`~repro.api.result.RunResult` records, and sweeps fan out across
worker processes.

* ``run <algorithm>`` — run any registered algorithm on a generated graph,
  optionally under ``--workload`` / ``--schedule`` / ``--fault``, and (for
  the KKT runners) over a hardened ``--substrate`` such as Bracha reliable
  broadcast;
* ``compare <algo> <algo> ...`` — head-to-head on the *same* graph spec;
* ``sweep`` — size sweep; ``--algorithms ... --jobs N`` runs the registry
  grid in parallel, the legacy ``--kind`` form prints the normalised table;
* ``suite`` — the full scenario grid: graph sizes × algorithms × workloads
  × schedules × faults, in parallel, with full provenance per record;
* ``algorithms`` — list the registry;
* ``workloads`` — list the registered workloads and delivery schedulers;
* ``faults`` — list the registered fault programs;
* ``build-mst`` / ``build-st`` — construct a tree and print the cost report
  next to the relevant baseline;
* ``repair`` — build an MST/ST, apply a churn workload impromptu and print
  per-update costs;
* ``trace record`` / ``trace replay`` — save a workload run as a JSON trace
  and replay it bit-for-bit later;
* ``bench`` — time the registered micro-benchmarks on the fast path *and*
  the reference path, assert counter equality and write ``BENCH_PR10.json``;
  ``--baseline PATH`` additionally compares the speedups against a committed
  trajectory report and fails on a >25% regression; ``--profile large``
  appends the n=10^4..10^6 scaling rows, ``--mem`` records tracemalloc
  peaks;
* ``fuzz run`` — a seeded differential-fuzzing campaign over random
  experiment specs (non-zero exit on any oracle violation; failing specs are
  delta-debugged to minimal reproducers and written to a JSON corpus);
  ``fuzz replay`` re-runs a corpus of reproducers, ``fuzz corpus`` lists one;
* ``serve`` — the long-lived experiment service: an asyncio HTTP/JSON-lines
  daemon with an async job queue, a supervised worker pool and a
  content-addressed result store (repeat submissions are cache hits);
* ``submit`` — send one spec to a running ``repro serve`` and print the
  (byte-identical-to-local) result;
* ``loadgen`` — record a spec trace and replay it against the service at
  configurable concurrency, reporting cold-vs-warm throughput;
* ``selfcheck`` — run a quick end-to-end correctness pass.

``--json`` (on ``run``, ``compare``, ``sweep`` and ``suite``) emits one
``RunResult`` JSON record per line, which is what the benchmark harness
consumes.

Examples
--------
::

    python -m repro run kkt-mst --nodes 96 --density complete --seed 7
    python -m repro run kkt-repair --nodes 48 --workload weight-ramp --schedule random
    python -m repro run kkt-repair --nodes 48 --fault link-storm
    python -m repro run flooding --nodes 24 --fault byz-equivocate
    python -m repro run kkt-mst --nodes 64 --substrate bracha
    python -m repro compare kkt-mst ghs --nodes 64 --seed 1
    python -m repro sweep --algorithms kkt-st flooding --sizes 32 64 96 --jobs 4 --json
    python -m repro suite --algorithms kkt-repair recompute-repair \
        --workloads churn deletions-only insert-heavy --schedules none random --jobs 4 --json
    python -m repro suite --algorithms kkt-repair recompute-repair \
        --faults none,crash-leaves,link-storm --jobs 4 --json
    python -m repro trace record --nodes 32 --workload churn --out churn.trace.json
    python -m repro trace replay churn.trace.json
    python -m repro fuzz run --budget 200 --seed 0 --corpus fuzz-corpus.json
    python -m repro fuzz replay fuzz-corpus.json
    python -m repro serve --port 8765 --workers 4 --store results/
    python -m repro submit kkt-mst --nodes 64 --seed 7 --server 127.0.0.1:8765
    python -m repro loadgen record --out mix.specs.jsonl --algorithms kkt-mst ghs --sizes 24 32
    python -m repro loadgen run mix.specs.jsonl --server 127.0.0.1:8765 --concurrency 8
    python -m repro selfcheck
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import List, Optional, Sequence

from . import fastpath
from .analysis import ExperimentTable, run_construction_measurement, summarize
from .api import (
    DENSITY_PROFILES,
    ExperimentEngine,
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    RunResult,
    ScheduleSpec,
    WorkloadSpec,
    algorithm_summaries,
    fault_adversarial,
    fault_summaries,
    get_runner,
    list_faults,
    list_schedulers,
    run as run_algorithm,
    scenario_grid,
    workload_summaries,
)
from .api.scenario import _load_trace, list_workloads
from .baselines import RecomputeMaintainer
from .core.build_mst import BuildMST
from .core.build_st import BuildST
from .core.config import AlgorithmConfig
from .dynamic import TreeMaintainer, UpdateKind, UpdateTrace
from .network.broadcast import list_substrates
from .network.errors import AlgorithmError
from .verify import is_minimum_spanning_forest, is_spanning_forest

__all__ = ["main", "build_parser"]

_DENSITY_CHOICES = sorted(DENSITY_PROFILES)


# ---------------------------------------------------------------------- #
# argument parsing
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="King-Kutten-Thorup (PODC 2015) MST construction and impromptu repair",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--nodes", "-n", type=int, default=64, help="number of nodes")
        sub.add_argument(
            "--density",
            choices=_DENSITY_CHOICES,
            default="dense",
            help="edge-density profile",
        )
        sub.add_argument("--seed", type=int, default=2015, help="random seed")
        sub.add_argument("--error-exponent", "-c", type=float, default=1.0,
                         help="success probability exponent c (failure <= n^-c)")

    run_cmd = subparsers.add_parser(
        "run", help="run any registered algorithm on a generated graph"
    )
    run_cmd.add_argument("algorithm", help="a registered algorithm name (see `algorithms`)")
    add_graph_arguments(run_cmd)
    run_cmd.add_argument("--updates", type=int, default=None,
                         help="workload stream length (default: 10 for generated "
                              "workloads, the full trace for trace-replay)")
    run_cmd.add_argument("--workload", choices=sorted(list_workloads()),
                         help="run the scenario under a registered workload")
    run_cmd.add_argument("--schedule", choices=sorted(list_schedulers()),
                         help="deliver messages under an adversarial scheduler")
    run_cmd.add_argument("--fault", choices=sorted(list_faults()),
                         help="run the scenario under a registered fault program")
    run_cmd.add_argument("--substrate", choices=sorted(list_substrates()),
                         default="plain",
                         help="delivery substrate for the broadcast-and-echo "
                              "fabric ('bracha' hardens every hop with "
                              "reliable broadcast; KKT runners only)")
    run_cmd.add_argument("--trace", metavar="PATH",
                         help="trace file for the trace-replay workload")
    run_cmd.add_argument("--repair-batch", type=int, default=None, metavar="K",
                         help="coalesce repair updates into waves of K events "
                              "sharing one repair round (repair runners only; "
                              "0 forces sequential, overriding "
                              "REPRO_REPAIR_BATCH and the schedule)")
    run_cmd.add_argument("--json", action="store_true", help="emit the RunResult as JSON")

    compare = subparsers.add_parser(
        "compare", help="run several algorithms head-to-head on the same graph spec"
    )
    compare.add_argument("algorithms", nargs="+", metavar="algorithm")
    add_graph_arguments(compare)
    compare.add_argument("--jobs", type=int, default=1, help="worker processes")
    compare.add_argument("--json", action="store_true",
                         help="emit one RunResult JSON record per line")

    subparsers.add_parser("algorithms", help="list the registered algorithms")
    subparsers.add_parser(
        "workloads", help="list the registered workloads and delivery schedulers"
    )
    subparsers.add_parser("faults", help="list the registered fault programs")

    suite = subparsers.add_parser(
        "suite", help="scenario grid: sizes x algorithms x workloads x schedules"
    )
    suite.add_argument("--algorithms", nargs="+", metavar="algorithm", required=True)
    suite.add_argument("--workloads", nargs="+", metavar="workload",
                       choices=sorted(list_workloads()), default=["churn"])
    suite.add_argument("--schedules", nargs="+", metavar="schedule",
                       choices=["none"] + sorted(list_schedulers()), default=["none"],
                       help="delivery schedules ('none' = default delivery)")
    suite.add_argument("--faults", nargs="+", metavar="fault", default=["none"],
                       help="fault programs (comma- or space-separated; "
                            "'none' = fault-free execution)")
    suite.add_argument("--sizes", type=int, nargs="+", default=[32])
    suite.add_argument("--density", choices=_DENSITY_CHOICES, default="sparse")
    suite.add_argument("--seed", type=int, default=2015)
    suite.add_argument("--updates", type=int, default=None,
                       help="workload stream length (default: 10 for generated "
                            "workloads, the full trace for trace-replay)")
    suite.add_argument("--trace", metavar="PATH",
                       help="trace file for the trace-replay workload")
    suite.add_argument("--jobs", type=int, default=1, help="worker processes")
    suite.add_argument("--json", action="store_true",
                       help="emit one RunResult JSON record per line")

    trace = subparsers.add_parser(
        "trace", help="record / replay dynamic-workload traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser("record", help="run a workload and save it as a trace")
    add_graph_arguments(record)
    record.add_argument("--workload",
                        choices=sorted(set(list_workloads()) - {"trace-replay"}),
                        default="churn")
    record.add_argument("--updates", type=int, default=10)
    record.add_argument("--mode", choices=["mst", "st"], default="mst")
    record.add_argument("--out", metavar="PATH", required=True,
                        help="where to write the trace JSON")
    replay = trace_sub.add_parser("replay", help="replay a saved trace bit-for-bit")
    replay.add_argument("path", metavar="PATH", help="a trace written by `trace record`")

    for kind in ("mst", "st"):
        sub = subparsers.add_parser(
            f"build-{kind}", help=f"construct a {'minimum spanning' if kind == 'mst' else 'spanning'} tree"
        )
        add_graph_arguments(sub)

    repair = subparsers.add_parser("repair", help="apply an impromptu-repair update workload")
    add_graph_arguments(repair)
    repair.add_argument("--mode", choices=["mst", "st"], default="mst")
    repair.add_argument("--updates", type=int, default=10)
    repair.add_argument("--workload",
                        choices=sorted(set(list_workloads()) - {"trace-replay"}),
                        default="churn", help="a registered update workload")
    repair.add_argument("--fault", choices=sorted(list_faults()), default="none",
                        help="apply a registered fault program after the workload")
    repair.add_argument("--repair-batch", type=int, default=None, metavar="K",
                        help="coalesce updates into waves of K events sharing "
                             "one repair round (default: REPRO_REPAIR_BATCH, "
                             "else sequential; 0 forces sequential)")
    repair.add_argument("--compare-recompute", action="store_true",
                        help="also run the recompute-from-scratch baseline")

    sweep = subparsers.add_parser("sweep", help="size sweep of a construction")
    sweep.add_argument("--kind", choices=["mst", "st"], default="st",
                       help="legacy construction selector (ignored with --algorithms)")
    sweep.add_argument("--algorithms", nargs="+", metavar="algorithm",
                       help="registry algorithms to sweep (enables the parallel engine)")
    sweep.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 96])
    sweep.add_argument(
        "--density",
        choices=_DENSITY_CHOICES,
        default="complete",
    )
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument("--json", action="store_true",
                       help="emit one RunResult JSON record per line")

    from .bench import list_benchmarks

    bench = subparsers.add_parser(
        "bench",
        help="time the micro-benchmarks: fast path vs reference, counters pinned",
    )
    bench.add_argument("--quick", action="store_true",
                       help="run the smaller per-benchmark size lists")
    bench.add_argument("--benchmarks", nargs="+", metavar="benchmark",
                       choices=list_benchmarks(),
                       help="subset of benchmarks to run (default: all)")
    bench.add_argument("--sizes", type=int, nargs="+",
                       help="override every benchmark's node counts")
    bench.add_argument("--profile", choices=["default", "large"],
                       default="default",
                       help="size profile: 'large' appends the n=10^4..10^6 "
                            "scaling rows (fast-path-only above each "
                            "benchmark's reference cutoff)")
    bench.add_argument("--mem", action="store_true",
                       help="record the tracemalloc peak of every pass "
                            "(symmetric on both paths; ~2x wall overhead)")
    bench.add_argument("--seed", type=int, default=2015)
    bench.add_argument("--json", action="store_true",
                       help="print the report JSON to stdout instead of a table")
    bench.add_argument("--out", metavar="PATH", default="BENCH_PR10.json",
                       help="where to write the JSON report "
                            "(default: %(default)s; '-' disables the file)")
    bench.add_argument("--baseline", metavar="PATH",
                       help="committed trajectory report to compare speedups "
                            "against (non-zero exit on a >25%% regression)")

    from .fuzz import ORACLE_FACTORIES

    fuzz = subparsers.add_parser(
        "fuzz", help="differential fuzzing: random scenario campaigns with oracles"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a seeded fuzz campaign over random experiment specs"
    )
    fuzz_run.add_argument("--budget", type=int, default=100,
                          help="number of random specs to generate and examine")
    fuzz_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_run.add_argument("--algorithms", nargs="+", metavar="algorithm",
                          help="algorithms to exercise (default: the whole registry)")
    fuzz_run.add_argument("--oracles", nargs="+", metavar="oracle",
                          choices=sorted(ORACLE_FACTORIES),
                          help="oracle subset (default: the full stack)")
    fuzz_run.add_argument("--max-nodes", type=int, default=None,
                          help="largest generated graph (default: 24)")
    fuzz_run.add_argument("--parallel-every", type=int, default=25,
                          help="cross-process determinism check every Nth case "
                               "(0 disables it)")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          help="skip delta-debugging failing specs")
    fuzz_run.add_argument("--out", metavar="PATH", default="-",
                          help="write the campaign report JSON ('-' = no file)")
    fuzz_run.add_argument("--corpus", metavar="PATH", default="-",
                          help="write the minimized-reproducer corpus JSON "
                               "('-' = no file)")
    fuzz_run.add_argument("--json", action="store_true",
                          help="print the report JSON to stdout instead of a table")
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-run the minimized reproducers in a corpus file"
    )
    fuzz_replay.add_argument("path", metavar="CORPUS",
                             help="a corpus written by `fuzz run --corpus`")
    fuzz_replay.add_argument("--id", dest="entry_id", metavar="ID",
                             help="replay a single entry by id")
    fuzz_corpus = fuzz_sub.add_parser("corpus", help="list a corpus file")
    fuzz_corpus.add_argument("path", metavar="CORPUS",
                             help="a corpus written by `fuzz run --corpus`")

    serve = subparsers.add_parser(
        "serve", help="run the long-lived experiment service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = ephemeral; the bound port is "
                            "printed and written to --port-file)")
    serve.add_argument("--port-file", metavar="PATH",
                       help="write the bound port number to this file "
                            "(how scripts find an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job slots")
    serve.add_argument("--executor", choices=["thread", "process", "inline"],
                       default="thread",
                       help="how jobs execute: thread (default), process "
                            "(true parallelism), inline (tests/demos)")
    serve.add_argument("--store", metavar="DIR",
                       help="persist the content-addressed result store here "
                            "(default: in-memory only)")
    serve.add_argument("--seed", type=int, default=2015,
                       help="base seed used to pin unseeded submitted specs")
    serve.add_argument("--job-timeout", type=float, default=300.0,
                       help="per-attempt job timeout in seconds")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retry attempts after infrastructure failures")

    submit = subparsers.add_parser(
        "submit", help="submit one spec to a running `repro serve` daemon"
    )
    submit.add_argument("algorithm", help="a registered algorithm name")
    add_graph_arguments(submit)
    submit.add_argument("--updates", type=int, default=None,
                        help="workload stream length")
    submit.add_argument("--workload", choices=sorted(list_workloads()),
                        help="submit the scenario under a registered workload")
    submit.add_argument("--schedule", choices=sorted(list_schedulers()),
                        help="deliver messages under an adversarial scheduler")
    submit.add_argument("--fault", choices=sorted(list_faults()),
                        help="run the scenario under a registered fault program")
    submit.add_argument("--trace", metavar="PATH",
                        help="trace file for the trace-replay workload")
    submit.add_argument("--spec-file", metavar="PATH",
                        help="submit this ExperimentSpec JSON file instead of "
                             "building a spec from the graph flags")
    submit.add_argument("--server", default="127.0.0.1:8765",
                        help="service address as host:port or http:// URL")
    submit.add_argument("--no-wait", action="store_true",
                        help="enqueue and print the job id instead of waiting")
    submit.add_argument("--json", action="store_true",
                        help="print the response entry as JSON")

    loadgen = subparsers.add_parser(
        "loadgen", help="record / replay service load (spec traces)"
    )
    loadgen_sub = loadgen.add_subparsers(dest="loadgen_command", required=True)
    lg_record = loadgen_sub.add_parser(
        "record", help="record a spec trace (one submit request per line)"
    )
    lg_record.add_argument("--out", metavar="PATH", required=True,
                           help="where to write the JSON-lines spec trace")
    lg_record.add_argument("--algorithms", nargs="+", metavar="algorithm",
                           default=["kkt-mst"], help="algorithm mix")
    lg_record.add_argument("--sizes", type=int, nargs="+", default=[24, 32])
    lg_record.add_argument("--density", choices=_DENSITY_CHOICES, default="sparse")
    lg_record.add_argument("--seed", type=int, default=2015)
    lg_record.add_argument("--workloads", nargs="+", metavar="workload",
                           choices=["none"] + sorted(list_workloads()),
                           default=["none"],
                           help="workload mix ('none' = construction only)")
    lg_record.add_argument("--updates", type=int, default=None,
                           help="workload stream length")
    lg_record.add_argument("--trace", metavar="PATH",
                           help="also include a trace-replay workload over "
                                "this recorded UpdateTrace file")
    lg_run = loadgen_sub.add_parser(
        "run", help="replay a spec trace against the service at concurrency"
    )
    lg_run.add_argument("path", metavar="TRACE",
                        help="a spec trace written by `loadgen record`")
    lg_run.add_argument("--server", default=None,
                        help="service address as host:port or http:// URL "
                             "(default: start an in-process server)")
    lg_run.add_argument("--concurrency", type=int, default=4,
                        help="concurrent client threads")
    lg_run.add_argument("--rounds", type=int, default=2,
                        help="replay passes (round 0 is cold, later rounds "
                             "are warm cache hits)")
    lg_run.add_argument("--workers", type=int, default=2,
                        help="in-process server job slots (no --server only)")
    lg_run.add_argument("--executor", choices=["thread", "process", "inline"],
                        default="thread",
                        help="in-process server executor (no --server only)")
    lg_run.add_argument("--json", action="store_true",
                        help="print the throughput report as JSON")

    subparsers.add_parser("selfcheck", help="quick end-to-end correctness pass")
    return parser


# ---------------------------------------------------------------------- #
# result rendering
# ---------------------------------------------------------------------- #
def _print_results_json(results: Sequence[RunResult]) -> None:
    for result in results:
        print(result.to_json())


def _print_results_table(title: str, results: Sequence[RunResult]) -> None:
    table = ExperimentTable(
        "results", title, ["algorithm", "n", "m", "msgs", "msgs/m", "bits", "rounds", "phases", "ok"]
    )
    for result in results:
        table.add_row(
            result.algorithm,
            result.n,
            result.m,
            result.messages,
            round(result.messages_per_edge, 3),
            result.bits,
            result.rounds,
            result.phases,
            result.ok,
        )
    print(table.render())


def _print_suite_table(title: str, results: Sequence[RunResult]) -> None:
    table = ExperimentTable(
        "suite",
        title,
        ["algorithm", "workload", "schedule", "fault", "n", "m", "msgs", "msgs/m",
         "rounds", "ok"],
    )
    for result in results:
        table.add_row(
            result.algorithm,
            "-" if result.workload is None else result.workload.name,
            "-" if result.schedule is None else result.schedule.scheduler,
            "-" if result.faults is None else result.faults.name,
            result.n,
            result.m,
            result.messages,
            round(result.messages_per_edge, 3),
            result.rounds,
            result.ok,
        )
    print(table.render())


def _spec_from_args(args: argparse.Namespace) -> GraphSpec:
    return GraphSpec(nodes=args.nodes, density=args.density, seed=args.seed)


def _workload_from_args(
    name: str, updates: Optional[int], trace: Optional[str]
) -> WorkloadSpec:
    params = {}
    if name == "trace-replay":
        if not trace:
            raise AlgorithmError("the trace-replay workload needs --trace PATH")
        params["path"] = trace
    return WorkloadSpec(name=name, updates=updates, params=params)


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #
def _runner_options(runner, args: argparse.Namespace) -> dict:
    """Forward the CLI's per-algorithm flags to runners that accept them.

    Routing is by the runner's own ``run`` signature, so algorithms
    registered outside this package pick up the flags too.
    """
    candidates = {
        "c": args.error_exponent,
        "updates": getattr(args, "updates", None),
        "substrate": getattr(args, "substrate", None),
        "repair_batch": getattr(args, "repair_batch", None),
    }
    accepted = inspect.signature(runner.run).parameters
    return {
        key: value
        for key, value in candidates.items()
        if key in accepted and value is not None
    }


def _command_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    scenario = args.workload or args.schedule or (args.fault and args.fault != "none")
    if scenario:
        workload = (
            _workload_from_args(args.workload, args.updates, args.trace)
            if args.workload
            else None
        )
        schedule = ScheduleSpec(scheduler=args.schedule) if args.schedule else None
        fault = (
            FaultSpec(name=args.fault)
            if args.fault and args.fault != "none"
            else None
        )
        spec = ExperimentSpec(
            graph=spec, workload=workload, schedule=schedule, faults=fault
        )
    runner = get_runner(args.algorithm)
    result = runner.run(spec, **_runner_options(runner, args))
    if args.json:
        _print_results_json([result])
    elif scenario:
        _print_suite_table(f"{args.algorithm} on a {args.density} graph", [result])
    else:
        _print_results_table(f"{args.algorithm} on a {args.density} graph", [result])
    return 0 if result.ok else 1


def _command_compare(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    engine = ExperimentEngine(jobs=args.jobs, base_seed=args.seed)
    results = engine.compare(args.algorithms, spec)
    if args.json:
        _print_results_json(results)
    else:
        _print_results_table(
            f"Head-to-head on a {args.density} graph (n={args.nodes}, seed={args.seed})",
            results,
        )
    return 0 if all(result.ok for result in results) else 1


def _command_algorithms(_args: argparse.Namespace) -> int:
    table = ExperimentTable("registry", "Registered algorithms", ["name", "summary"])
    for name, summary in algorithm_summaries().items():
        table.add_row(name, summary)
    print(table.render())
    return 0


def _command_workloads(_args: argparse.Namespace) -> int:
    table = ExperimentTable("workloads", "Registered workloads", ["name", "summary"])
    for name, summary in workload_summaries().items():
        table.add_row(name, summary)
    print(table.render())
    schedulers = ExperimentTable(
        "schedulers", "Delivery schedulers (for --schedule / --schedules)", ["name"]
    )
    for name in list_schedulers():
        schedulers.add_row(name)
    print(schedulers.render())
    return 0


def _fault_names(raw: Sequence[str]) -> List[str]:
    """Flatten ``--faults`` values (space- and/or comma-separated) and check
    them against the registry."""
    names: List[str] = []
    for token in raw:
        names.extend(part for part in token.split(",") if part)
    known = {"none", *list_faults()}
    for name in names:
        if name not in known:
            raise AlgorithmError(
                f"unknown fault program {name!r}; choose from {', '.join(sorted(known))}"
            )
    return names


def _command_faults(_args: argparse.Namespace) -> int:
    table = ExperimentTable(
        "faults", "Registered fault programs", ["name", "adversarial", "summary"]
    )
    for name, summary in fault_summaries().items():
        table.add_row(name, "yes" if fault_adversarial(name) else "-", summary)
    print(table.render())
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    graphs = [
        GraphSpec(nodes=size, density=args.density, seed=args.seed)
        for size in args.sizes
    ]
    workloads = [
        _workload_from_args(name, args.updates, args.trace) for name in args.workloads
    ]
    schedules = [
        None if name == "none" else ScheduleSpec(scheduler=name)
        for name in args.schedules
    ]
    faults = [
        None if name == "none" else FaultSpec(name=name)
        for name in _fault_names(args.faults)
    ]
    engine = ExperimentEngine(jobs=args.jobs, base_seed=args.seed)
    results = engine.run_suite(
        scenario_grid(
            args.algorithms,
            graphs,
            workloads=workloads,
            schedules=schedules,
            faults=faults,
        )
    )
    if args.json:
        _print_results_json(results)
    else:
        _print_suite_table(
            f"Scenario suite over {args.density} graphs "
            f"(seed={args.seed}, jobs={args.jobs})",
            results,
        )
    return 0 if all(result.ok for result in results) else 1


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _command_trace_record(args)
    return _command_trace_replay(args)


def _command_trace_record(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    graph = spec.build()
    config = AlgorithmConfig(n=graph.num_nodes, seed=args.seed, c=args.error_exponent)
    builder = BuildMST(graph, config=config) if args.mode == "mst" else BuildST(graph, config=config)
    report = builder.run()
    workload = WorkloadSpec(
        name=args.workload, updates=args.updates
    ).resolve_seed(spec.seed)
    stream = workload.build(graph, report.forest)
    # Capture the initial state *before* the maintainer mutates it, then
    # attach the measured per-update costs afterwards.
    trace = UpdateTrace.record(
        graph, report.forest, stream, mode=args.mode, seed=spec.seed
    )
    maintainer = TreeMaintainer(graph, report.forest, mode=args.mode, seed=spec.seed)
    outcomes = maintainer.apply_stream(stream)
    trace.costs = [outcome.messages for outcome in outcomes]
    path = trace.save(args.out)

    checker = is_minimum_spanning_forest if args.mode == "mst" else is_spanning_forest
    ok = checker(report.forest)
    table = ExperimentTable(
        "trace-record", f"Recorded {args.workload} workload -> {path}", ["quantity", "value"]
    )
    table.add_row("nodes / edges", f"{graph.num_nodes} / {graph.num_edges}")
    table.add_row("updates recorded", len(stream))
    table.add_row("tree invariant holds", ok)
    table.add_row("total repair messages", sum(trace.costs))
    print(table.render())
    return 0 if ok else 1


def _command_trace_replay(args: argparse.Namespace) -> int:
    # One loader with the CLI error contract: missing or malformed files
    # surface as `repro: error: ...` (exit 2), not a traceback.
    trace = _load_trace({"path": args.path})
    graph, forest = trace.rebuild_initial_state()
    maintainer = TreeMaintainer(graph, forest, mode=trace.mode, seed=trace.seed)
    outcomes = maintainer.apply_stream(trace.stream())
    costs = [outcome.messages for outcome in outcomes]

    checker = is_minimum_spanning_forest if trace.mode == "mst" else is_spanning_forest
    ok = checker(forest)
    reproduced = (not trace.costs) or costs == trace.costs
    table = ExperimentTable(
        "trace-replay", f"Replayed {args.path}", ["quantity", "value"]
    )
    table.add_row("nodes / edges", f"{graph.num_nodes} / {graph.num_edges}")
    table.add_row("updates replayed", len(costs))
    table.add_row("tree invariant holds", ok)
    table.add_row("total repair messages", sum(costs))
    table.add_row(
        "per-update costs reproduced",
        reproduced if trace.costs else "n/a (trace carries no costs)",
    )
    print(table.render())
    return 0 if ok and reproduced else 1


def _command_build(kind: str, args: argparse.Namespace) -> int:
    measurement = run_construction_measurement(
        args.nodes, kind=kind, density=args.density, seed=args.seed, c=args.error_exponent
    )
    table = ExperimentTable(
        "build", f"Build-{kind.upper()} on a {args.density} graph", ["quantity", "value"]
    )
    table.add_row("nodes (n)", measurement.n)
    table.add_row("edges (m)", measurement.m)
    table.add_row(f"KKT Build-{kind.upper()} messages", measurement.kkt_messages)
    table.add_row(f"{measurement.baseline_name} baseline messages", measurement.baseline_messages)
    table.add_row("KKT messages / m", round(measurement.kkt_over_m, 3))
    table.add_row("baseline messages / m", round(measurement.baseline_over_m, 3))
    table.add_row("KKT bits", measurement.kkt_bits)
    table.add_row("KKT rounds (parallel)", measurement.kkt_rounds)
    table.add_row("phases", measurement.kkt_phases)
    print(table.render())
    return 0


def _command_repair(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    graph = spec.build()
    config = AlgorithmConfig(n=args.nodes, seed=args.seed, c=args.error_exponent)
    builder = BuildMST(graph, config=config) if args.mode == "mst" else BuildST(graph, config=config)
    report = builder.run()
    maintainer = TreeMaintainer(graph, report.forest, mode=args.mode, seed=args.seed)
    batch = args.repair_batch if args.repair_batch is not None else fastpath.repair_batch_size()
    batch_size = batch if batch >= 1 else None
    workload = WorkloadSpec(name=args.workload, updates=args.updates).resolve_seed(spec.seed)
    stream = workload.build(graph, report.forest)
    maintainer.apply_stream(stream, batch_size=batch_size)
    fault_events = 0
    if args.fault != "none":
        program = FaultSpec(name=args.fault).resolve_seed(spec.seed).build(
            graph, report.forest
        )
        maintainer.apply_stream(program.stream, batch_size=batch_size)
        fault_events = len(program.stream)

    checker = is_minimum_spanning_forest if args.mode == "mst" else is_spanning_forest
    ok = checker(report.forest)
    batched = batch_size is not None
    costs = maintainer.messages_per_wave() if batched else maintainer.messages_per_update()
    unit = "wave" if batched else "update"
    stats = summarize(costs)
    table = ExperimentTable(
        "repair",
        f"Impromptu {args.mode.upper()} repair under {args.workload}",
        ["quantity", "value"],
    )
    table.add_row("nodes / edges", f"{graph.num_nodes} / {graph.num_edges}")
    if batched:
        table.add_row("updates processed", len(stream) + fault_events)
        table.add_row(f"repair waves (batch={batch_size})", len(costs))
        table.add_row(
            "updates annihilated inside waves",
            sum(o.report.skipped_candidates for o in maintainer.batch_history),
        )
    else:
        table.add_row("updates processed", len(costs))
    if args.fault != "none":
        table.add_row(f"fault events ({args.fault})", fault_events)
    table.add_row("tree invariant holds", ok)
    table.add_row(f"messages per {unit} (mean)", round(stats.mean, 1))
    table.add_row(f"messages per {unit} (median)", round(stats.median, 1))
    table.add_row(f"messages per {unit} (max)", round(stats.maximum, 1))
    if args.compare_recompute:
        baseline_graph = GraphSpec(
            nodes=args.nodes, density=args.density, seed=args.seed
        ).build()
        baseline = RecomputeMaintainer(baseline_graph, mode=args.mode)
        baseline_costs = []
        events = list(stream)
        if batched:
            for offset in range(0, len(events), batch_size):
                baseline_costs.append(
                    baseline.apply_batch(events[offset : offset + batch_size]).messages
                )
        else:
            for update in events:
                if update.kind is UpdateKind.DELETE:
                    baseline_costs.append(baseline.delete_edge(update.u, update.v).messages)
                elif update.kind is UpdateKind.INSERT:
                    baseline_costs.append(
                        baseline.insert_edge(
                            update.u, update.v, update.effective_weight
                        ).messages
                    )
                else:
                    baseline_costs.append(
                        baseline.change_weight(
                            update.u, update.v, update.effective_weight
                        ).messages
                    )
        table.add_row(
            f"recompute baseline per {unit} (mean)", round(summarize(baseline_costs).mean, 1)
        )
    print(table.render())
    return 0 if ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    if not args.algorithms and (args.json or args.jobs != 1):
        raise AlgorithmError(
            "--json and --jobs require --algorithms (the legacy --kind sweep "
            "prints a normalised table serially)"
        )
    if args.algorithms:
        engine = ExperimentEngine(jobs=args.jobs, base_seed=args.seed)
        results = engine.sweep(
            args.algorithms, args.sizes, density=args.density, seed=args.seed
        )
        if args.json:
            _print_results_json(results)
        else:
            _print_results_table(
                f"Sweep over {args.density} graphs (seed={args.seed}, jobs={args.jobs})",
                results,
            )
        return 0 if all(result.ok for result in results) else 1

    bound = "n_log2_n_over_loglog_n" if args.kind == "mst" else "n_log_n"
    table = ExperimentTable(
        "sweep",
        f"Build-{args.kind.upper()} sweep ({args.density} graphs)",
        ["n", "m", "KKT msgs", "baseline msgs", "KKT/m", "KKT/bound"],
    )
    for n in args.sizes:
        measurement = run_construction_measurement(
            n, kind=args.kind, density=args.density, seed=args.seed
        )
        table.add_row(
            measurement.n,
            measurement.m,
            measurement.kkt_messages,
            measurement.baseline_messages,
            round(measurement.kkt_over_m, 3),
            round(measurement.kkt_over_bound(bound), 3),
        )
    table.add_note(f"bound = {bound}")
    print(table.render())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from .bench import compare_to_baseline, load_report, run_benchmarks, write_report

    progress = None if args.json else lambda line: print(f"bench: {line}", flush=True)
    report = run_benchmarks(
        names=args.benchmarks,
        quick=args.quick,
        sizes=args.sizes,
        seed=args.seed,
        progress=progress,
        profile=args.profile,
        mem=args.mem,
    )
    if args.out and args.out != "-":
        write_report(report, args.out)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        columns = ["benchmark", "n", "m", "msgs", "ref s", "fast s", "speedup",
                   "counters =="]
        if args.mem:
            columns.append("peak KiB")
        table = ExperimentTable(
            "bench",
            "Fast path vs reference (counters must be bit-identical)",
            columns,
        )
        for record in report["results"]:
            row = [
                record["benchmark"],
                record["n"],
                record["m"],
                record["counters"].get("messages", "-"),
                "-" if record["wall_s_reference"] is None
                else record["wall_s_reference"],
                record["wall_s_fast"],
                "-" if record["speedup"] is None else record["speedup"],
                record["counters_equal"],
            ]
            if args.mem:
                row.append(record.get("peak_kb_fast", "-"))
            table.add_row(*row)
        if any(record["speedup"] is None for record in report["results"]):
            table.add_note(
                "'-' rows ran fast-path-only (above the reference cutoff)"
            )
        if args.out and args.out != "-":
            table.add_note(f"report written to {args.out}")
        print(table.render())
    if not report["counters_equal"]:
        print("repro: error: fast-path counters diverged from the reference path",
              file=sys.stderr)
        return 1
    if args.baseline:
        baseline = load_report(args.baseline)
        comparison = compare_to_baseline(report, baseline)
        table = ExperimentTable(
            "bench-baseline",
            f"Speedup trajectory vs {args.baseline}",
            ["benchmark", "n", "baseline x", "current x", "delta", "regressed"],
        )
        for row in comparison["rows"]:
            table.add_row(
                row["benchmark"],
                row["n"],
                "-" if row["baseline_speedup"] is None else row["baseline_speedup"],
                "-" if row["current_speedup"] is None else row["current_speedup"],
                "-" if row["delta_pct"] is None else f"{row['delta_pct']:+.1f}%",
                row["regressed"],
            )
        if comparison["missing"]:
            table.add_note(
                f"not in baseline (skipped): {', '.join(comparison['missing'])}"
            )
        if comparison["uncompared"]:
            table.add_note(
                "in baseline but not in this run (unchecked): "
                + ", ".join(comparison["uncompared"])
            )
        table.add_note(
            f"aggregate speedup ratio (geomean): {comparison['aggregate_ratio']:.3f}x"
        )
        print(table.render())
        if comparison["aggregate_regressed"]:
            print(
                "repro: error: aggregate speedup regressed by more than 25% "
                f"vs baseline (geomean ratio {comparison['aggregate_ratio']:.3f})",
                file=sys.stderr,
            )
            return 1
        if comparison["regressions"]:
            print(
                "repro: error: speedup regressed by more than 50% on: "
                + ", ".join(comparison["regressions"]),
                file=sys.stderr,
            )
            return 1
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    if args.fuzz_command == "run":
        return _command_fuzz_run(args)
    if args.fuzz_command == "replay":
        return _command_fuzz_replay(args)
    return _command_fuzz_corpus(args)


def _command_fuzz_run(args: argparse.Namespace) -> int:
    from .fuzz import FuzzCampaign, SpecSpace, report_to_json

    space = None
    if args.max_nodes is not None:
        space = SpecSpace(max_nodes=args.max_nodes)
    progress = None if args.json else lambda line: print(f"fuzz: {line}", flush=True)
    campaign = FuzzCampaign(
        budget=args.budget,
        seed=args.seed,
        algorithms=args.algorithms,
        oracles=args.oracles,
        space=space,
        parallel_every=args.parallel_every,
        shrink=not args.no_shrink,
        progress=progress,
    )
    report = campaign.run()
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report))
    if args.corpus and args.corpus != "-":
        campaign.corpus.save(args.corpus)
    if args.json:
        print(report_to_json(report), end="")
    else:
        table = ExperimentTable(
            "fuzz", f"Fuzz campaign (seed={args.seed})", ["quantity", "value"]
        )
        table.add_row("cases examined", report["cases"])
        table.add_row("algorithms", " ".join(report["algorithms"]))
        table.add_row("oracles", " ".join(report["oracles"]))
        for oracle, stats in sorted(report["oracle_stats"].items()):
            for key, value in sorted(stats.items()):
                table.add_row(f"{oracle}: {key}", value)
        table.add_row("oracle violations", report["violation_count"])
        if args.out and args.out != "-":
            table.add_note(f"report written to {args.out}")
        if args.corpus and args.corpus != "-":
            table.add_note(f"corpus written to {args.corpus}")
        print(table.render())
        if report["violations"]:
            failures = ExperimentTable(
                "fuzz-violations",
                "Minimized reproducers",
                ["id", "oracle", "algorithm", "nodes", "detail"],
            )
            for record in report["violations"]:
                failures.add_row(
                    record["id"],
                    record["oracle"],
                    record["algorithm"] or "-",
                    record["minimized"]["graph"]["nodes"],
                    record["detail"][:60],
                )
            print(failures.render())
    return 0 if report["violation_count"] == 0 else 1


def _command_fuzz_replay(args: argparse.Namespace) -> int:
    from .fuzz import Corpus, replay_entry

    corpus = Corpus.load(args.path)
    entries = [corpus.get(args.entry_id)] if args.entry_id else list(corpus)
    if not entries:
        print(f"corpus {args.path} is empty; nothing to replay")
        return 0
    table = ExperimentTable(
        "fuzz-replay",
        f"Replayed {len(entries)} reproducer(s) from {args.path}",
        ["id", "oracle", "algorithm", "nodes", "status"],
    )
    fixed = 0
    for entry in entries:
        violations = replay_entry(entry)
        status = "reproduced" if violations else "fixed"
        fixed += not violations
        table.add_row(
            entry.id,
            entry.oracle,
            entry.algorithm or "-",
            entry.minimized["graph"]["nodes"],
            status,
        )
    if fixed:
        table.add_note(
            f"{fixed} entr{'y' if fixed == 1 else 'ies'} no longer reproduce(s) — "
            "fixed? prune them from the corpus"
        )
    print(table.render())
    return 1 if fixed else 0


def _command_fuzz_corpus(args: argparse.Namespace) -> int:
    from .fuzz import Corpus

    corpus = Corpus.load(args.path)
    table = ExperimentTable(
        "fuzz-corpus",
        f"{len(corpus)} reproducer(s) in {args.path}",
        ["id", "oracle", "algorithm", "nodes", "shrink steps", "detail"],
    )
    for entry in corpus:
        table.add_row(
            entry.id,
            entry.oracle,
            entry.algorithm or "-",
            entry.minimized["graph"]["nodes"],
            len(entry.shrink_steps),
            entry.detail[:48],
        )
    print(table.render())
    return 0


def _parse_server(address: str) -> tuple:
    """``host:port`` or ``http://host:port`` -> ``(host, port)``."""
    target = address
    if "//" in target:
        target = target.split("//", 1)[1]
    target = target.rstrip("/")
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise AlgorithmError(
            f"malformed server address {address!r}; want host:port or an http:// URL"
        )
    return host, int(port)


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ExperimentServer, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        store_path=args.store,
        base_seed=args.seed,
        default_timeout_s=args.job_timeout,
        max_retries=args.max_retries,
    )

    async def _serve() -> None:
        server = ExperimentServer(config)
        await server.start()
        print(f"repro serve: listening on {server.url}", flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(server.shutdown(drain=True)),
                )
        except (ImportError, NotImplementedError, RuntimeError, ValueError):
            pass  # no signal support here (non-main thread, exotic platform)
        await server.serve_forever()
        print("repro serve: drained and stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import ServiceClient

    if args.spec_file:
        try:
            with open(args.spec_file, "r", encoding="utf-8") as handle:
                spec_payload = json_module.load(handle)
        except FileNotFoundError:
            raise AlgorithmError(f"spec file not found: {args.spec_file}") from None
        except json_module.JSONDecodeError as exc:
            raise AlgorithmError(f"invalid spec file {args.spec_file}: {exc}") from exc
        if not isinstance(spec_payload, dict):
            raise AlgorithmError("a spec file must hold one JSON object")
    else:
        spec = _spec_from_args(args)
        scenario = args.workload or args.schedule or (args.fault and args.fault != "none")
        if scenario:
            workload = (
                _workload_from_args(args.workload, args.updates, args.trace)
                if args.workload
                else None
            )
            schedule = ScheduleSpec(scheduler=args.schedule) if args.schedule else None
            fault = (
                FaultSpec(name=args.fault)
                if args.fault and args.fault != "none"
                else None
            )
            spec = ExperimentSpec(
                graph=spec, workload=workload, schedule=schedule, faults=fault
            )
        spec_payload = spec.to_dict()
    host, port = _parse_server(args.server)
    client = ServiceClient(host=host, port=port)
    entry = client.submit_spec(
        args.algorithm, spec_payload, wait=not args.no_wait
    )
    if args.json:
        print(json_module.dumps(entry, indent=2, sort_keys=True))
    else:
        table = ExperimentTable(
            "submit", f"{args.algorithm} via {host}:{port}", ["quantity", "value"]
        )
        table.add_row("key", entry["key"][:16])
        table.add_row("state", entry["state"])
        table.add_row("cache hit", entry["cached"])
        if entry.get("job_id"):
            table.add_row("job id", entry["job_id"])
        result = entry.get("result")
        if result:
            table.add_row("messages", result["messages"])
            table.add_row("rounds", result["rounds"])
            table.add_row("ok", all(result["checks"].values()))
        if entry.get("error"):
            table.add_row("error", entry["error"])
        print(table.render())
    if args.no_wait:
        return 0
    result = entry.get("result")
    return 0 if result and all(result["checks"].values()) else 1


def _command_loadgen(args: argparse.Namespace) -> int:
    if args.loadgen_command == "record":
        return _command_loadgen_record(args)
    return _command_loadgen_run(args)


def _command_loadgen_record(args: argparse.Namespace) -> int:
    from .service import record_spec_trace, spec_trace_requests

    workloads = [None if name == "none" else name for name in args.workloads]
    requests = spec_trace_requests(
        algorithms=args.algorithms,
        sizes=args.sizes,
        density=args.density,
        seed=args.seed,
        workloads=workloads,
        updates=args.updates,
        trace=args.trace,
    )
    path = record_spec_trace(args.out, requests)
    table = ExperimentTable(
        "loadgen-record", f"Recorded spec trace -> {path}", ["quantity", "value"]
    )
    table.add_row("requests", len(requests))
    table.add_row("algorithms", " ".join(args.algorithms))
    table.add_row("sizes", " ".join(str(size) for size in args.sizes))
    print(table.render())
    return 0


def _command_loadgen_run(args: argparse.Namespace) -> int:
    import json as json_module

    from .service import (
        InProcessServer,
        ServiceClient,
        ServiceConfig,
        load_spec_trace,
        run_load,
    )

    requests = load_spec_trace(args.path)
    progress = None if args.json else (
        lambda line: print(f"loadgen: {line}", flush=True)
    )

    def _run(client: ServiceClient) -> dict:
        return run_load(
            client,
            requests,
            concurrency=args.concurrency,
            rounds=args.rounds,
            progress=progress,
        )

    if args.server:
        host, port = _parse_server(args.server)
        report = _run(ServiceClient(host=host, port=port))
    else:
        config = ServiceConfig(workers=args.workers, executor=args.executor)
        with InProcessServer(config) as inprocess:
            report = _run(ServiceClient(port=inprocess.port))
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        table = ExperimentTable(
            "loadgen",
            f"Load test: {len(requests)} requests x {args.rounds} rounds "
            f"at concurrency {args.concurrency}",
            ["round", "requests", "wall s", "rps", "cache hits", "errors"],
        )
        for round_report in report["rounds"]:
            table.add_row(
                round_report["round"],
                round_report["requests"],
                round_report["wall_s"],
                round_report["rps"],
                round_report["cache_hits"],
                round_report["errors"],
            )
        if report["warm_vs_cold_speedup"] is not None:
            table.add_note(
                f"warm vs cold throughput: {report['warm_vs_cold_speedup']}x "
                f"({report['cold_rps']} -> {report['warm_rps']} rps)"
            )
        print(table.render())
    return 0 if report["errors"] == 0 else 1


def _command_selfcheck(_args: argparse.Namespace) -> int:
    checks = (
        ("build-mst", "kkt-mst", {}),
        ("build-st", "kkt-st", {}),
        ("repair", "kkt-repair", {"updates": 6}),
    )
    all_ok = True
    for label, algorithm, options in checks:
        result = run_algorithm(
            algorithm, GraphSpec(nodes=32, density="sparse", seed=3), **options
        )
        all_ok = all_ok and result.ok
        print(f"{label:10s} {'OK' if result.ok else 'FAILED'}")
    return 0 if all_ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "run": _command_run,
        "bench": _command_bench,
        "fuzz": _command_fuzz,
        "compare": _command_compare,
        "algorithms": _command_algorithms,
        "workloads": _command_workloads,
        "faults": _command_faults,
        "repair": _command_repair,
        "suite": _command_suite,
        "sweep": _command_sweep,
        "trace": _command_trace,
        "serve": _command_serve,
        "submit": _command_submit,
        "loadgen": _command_loadgen,
        "selfcheck": _command_selfcheck,
    }
    if args.command == "build-mst":
        return _command_build("mst", args)
    if args.command == "build-st":
        return _command_build("st", args)
    handler = handlers.get(args.command)
    if handler is None:  # pragma: no cover
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except AlgorithmError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
