"""Dynamic-network layer: update streams, workloads and impromptu maintainers."""

from .maintainer import TreeMaintainer, UpdateOutcome
from .trace import UpdateTrace
from .updates import EdgeUpdate, UpdateKind, UpdateStream
from .workloads import (
    bridge_deletions,
    bridge_heavy_deletions,
    random_churn,
    tree_edge_deletions,
    tree_weight_increases,
    weight_perturbations,
)

__all__ = [
    "EdgeUpdate",
    "TreeMaintainer",
    "UpdateKind",
    "UpdateOutcome",
    "UpdateStream",
    "UpdateTrace",
    "bridge_deletions",
    "bridge_heavy_deletions",
    "random_churn",
    "tree_edge_deletions",
    "tree_weight_increases",
    "weight_perturbations",
]
