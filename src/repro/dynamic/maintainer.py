"""Impromptu maintainers: apply update streams with the paper's repairs.

:class:`TreeMaintainer` owns a graph and its maintained forest, dispatches
each :class:`~repro.dynamic.updates.EdgeUpdate` to the corresponding
:class:`~repro.core.repair.TreeRepairer` operation, records per-update costs,
and — crucially for the *impromptu* claim — constructs a **fresh** repairer
for every update, so no Python object state can leak information between
updates.  The only state that survives is the graph (each node's incident
edges and weights) and the marked-edge set, exactly the knowledge the paper
allows a node to keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.config import AlgorithmConfig
from ..core.repair import RepairReport, TreeRepairer
from ..network.accounting import MessageAccountant
from ..network.errors import AlgorithmError
from ..network.fragments import SpanningForest
from ..network.graph import Graph
from .updates import EdgeUpdate, UpdateKind, UpdateStream

__all__ = ["UpdateOutcome", "TreeMaintainer"]


@dataclass
class UpdateOutcome:
    """One processed update together with its repair report."""

    update: EdgeUpdate
    report: RepairReport

    @property
    def messages(self) -> int:
        return self.report.cost.messages


class TreeMaintainer:
    """Maintain an MST (``mode="mst"``) or ST under an update stream."""

    def __init__(
        self,
        graph: Graph,
        forest: SpanningForest,
        mode: str = "mst",
        config: Optional[AlgorithmConfig] = None,
        accountant: Optional[MessageAccountant] = None,
        seed: Optional[int] = None,
    ) -> None:
        if mode not in ("mst", "st"):
            raise AlgorithmError("mode must be 'mst' or 'st'")
        if forest.graph is not graph:
            raise AlgorithmError("the forest must be defined over the same graph object")
        self.graph = graph
        self.forest = forest
        self.mode = mode
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self._base_config = config
        self._seed = seed
        self._update_counter = 0
        self.history: List[UpdateOutcome] = []

    # ------------------------------------------------------------------ #
    # applying updates
    # ------------------------------------------------------------------ #
    def apply(self, update: EdgeUpdate) -> UpdateOutcome:
        """Process one update impromptu and return its outcome."""
        repairer = self._fresh_repairer()
        if update.kind == UpdateKind.INSERT:
            report = repairer.insert_edge(update.u, update.v, update.weight or 1)
        elif update.kind == UpdateKind.DELETE:
            report = repairer.delete_edge(update.u, update.v)
        elif update.kind == UpdateKind.INCREASE_WEIGHT:
            assert update.weight is not None
            report = repairer.increase_weight(update.u, update.v, update.weight)
        elif update.kind == UpdateKind.DECREASE_WEIGHT:
            assert update.weight is not None
            report = repairer.decrease_weight(update.u, update.v, update.weight)
        else:  # pragma: no cover - exhaustive enum
            raise AlgorithmError(f"unknown update kind {update.kind!r}")
        outcome = UpdateOutcome(update=update, report=report)
        self.history.append(outcome)
        return outcome

    def apply_stream(self, stream: UpdateStream) -> List[UpdateOutcome]:
        """Process every update of ``stream`` in order."""
        return [self.apply(update) for update in stream]

    # ------------------------------------------------------------------ #
    # accounting helpers
    # ------------------------------------------------------------------ #
    def total_messages(self) -> int:
        return sum(outcome.messages for outcome in self.history)

    def messages_per_update(self) -> List[int]:
        return [outcome.messages for outcome in self.history]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _fresh_repairer(self) -> TreeRepairer:
        """A brand-new repairer per update: nothing persists in between.

        The config (and hence the RNG) is re-derived from the seed and the
        update counter so runs stay reproducible while each update's
        randomness is independent.
        """
        self._update_counter += 1
        if self._base_config is not None:
            config = self._base_config
        else:
            derived_seed = (
                None if self._seed is None else self._seed + 7919 * self._update_counter
            )
            config = AlgorithmConfig(n=max(self.graph.num_nodes, 1), seed=derived_seed)
        return TreeRepairer(
            self.graph,
            self.forest,
            config=config,
            accountant=self.accountant,
            mode=self.mode,
        )
