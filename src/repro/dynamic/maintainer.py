"""Impromptu maintainers: apply update streams with the paper's repairs.

:class:`TreeMaintainer` owns a graph and its maintained forest, dispatches
each :class:`~repro.dynamic.updates.EdgeUpdate` to the corresponding
:class:`~repro.core.repair.TreeRepairer` operation, records per-update costs,
and — crucially for the *impromptu* claim — constructs a **fresh** repairer
for every update, so no Python object state can leak information between
updates.  The only state that survives is the graph (each node's incident
edges and weights) and the marked-edge set, exactly the knowledge the paper
allows a node to keep.

:meth:`TreeMaintainer.apply_batch` is the batched mode: a wave of ``k``
updates is coalesced into one shared repair round
(:class:`~repro.core.repair.BatchRepairer`): holes are repaired smallest
fragment first, deferred candidates settle afterwards, and a churn wave's
insert+delete pairs annihilate without any repair work at all.  Costs are
accounted per wave; the correctness contract versus sequential processing is
final-forest equality (exact in MST mode, where distinct augmented weights
make the maintained forest the unique minimum spanning forest of the current
graph).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from ..core.config import AlgorithmConfig
from ..core.repair import BatchRepairer, BatchRepairReport, RepairReport, TreeRepairer
from ..network.accounting import MessageAccountant
from ..network.errors import AlgorithmError
from ..network.fragments import SpanningForest
from ..network.graph import Graph
from .updates import EdgeUpdate, UpdateKind, UpdateStream

__all__ = ["UpdateOutcome", "BatchOutcome", "TreeMaintainer"]


@dataclass
class UpdateOutcome:
    """One processed update together with its repair report."""

    update: EdgeUpdate
    report: RepairReport

    @property
    def messages(self) -> int:
        return self.report.cost.messages


@dataclass
class BatchOutcome:
    """One processed wave together with its batched repair report."""

    updates: List[EdgeUpdate]
    report: BatchRepairReport

    @property
    def messages(self) -> int:
        return self.report.cost.messages


class TreeMaintainer:
    """Maintain an MST (``mode="mst"``) or ST under an update stream."""

    def __init__(
        self,
        graph: Graph,
        forest: SpanningForest,
        mode: str = "mst",
        config: Optional[AlgorithmConfig] = None,
        accountant: Optional[MessageAccountant] = None,
        seed: Optional[int] = None,
    ) -> None:
        if mode not in ("mst", "st"):
            raise AlgorithmError("mode must be 'mst' or 'st'")
        if forest.graph is not graph:
            raise AlgorithmError("the forest must be defined over the same graph object")
        self.graph = graph
        self.forest = forest
        self.mode = mode
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self._base_config = config
        self._seed = seed
        self._update_counter = 0
        self.history: List[UpdateOutcome] = []
        self.batch_history: List[BatchOutcome] = []

    # ------------------------------------------------------------------ #
    # applying updates
    # ------------------------------------------------------------------ #
    def apply(self, update: EdgeUpdate) -> UpdateOutcome:
        """Process one update impromptu and return its outcome."""
        repairer = self._fresh_repairer()
        if update.kind == UpdateKind.INSERT:
            report = repairer.insert_edge(update.u, update.v, update.effective_weight)
        elif update.kind == UpdateKind.DELETE:
            report = repairer.delete_edge(update.u, update.v)
        elif update.kind == UpdateKind.INCREASE_WEIGHT:
            assert update.weight is not None
            report = repairer.increase_weight(update.u, update.v, update.weight)
        elif update.kind == UpdateKind.DECREASE_WEIGHT:
            assert update.weight is not None
            report = repairer.decrease_weight(update.u, update.v, update.weight)
        else:  # pragma: no cover - exhaustive enum
            raise AlgorithmError(f"unknown update kind {update.kind!r}")
        outcome = UpdateOutcome(update=update, report=report)
        self.history.append(outcome)
        return outcome

    def apply_batch(self, updates: Sequence[EdgeUpdate]) -> BatchOutcome:
        """Coalesce a wave of updates into one shared repair round.

        Every update in the wave still consumes its own slot of the
        per-update derived randomness, so a wave of size 1 follows the
        sequential code path with bit-identical counters.
        """
        wave = list(updates)
        base = self._update_counter
        self._update_counter += len(wave)
        engine = BatchRepairer(
            self.graph,
            self.forest,
            make_repairer=lambda index: self._repairer_for(base + index + 1),
            mode=self.mode,
            accountant=self.accountant,
        )
        outcome = BatchOutcome(updates=wave, report=engine.run(wave))
        self.batch_history.append(outcome)
        return outcome

    def apply_stream(
        self, stream: UpdateStream, batch_size: Optional[int] = None
    ) -> Union[List[UpdateOutcome], List[BatchOutcome]]:
        """Process every update of ``stream`` in order.

        With ``batch_size`` ≥ 1 the stream is chunked into waves of that size
        and each wave goes through :meth:`apply_batch`; otherwise updates are
        processed one at a time (the sequential Theorem 1.2 mode).
        """
        if batch_size is None or batch_size < 1:
            return [self.apply(update) for update in stream]
        updates = list(stream)
        return [
            self.apply_batch(updates[start : start + batch_size])
            for start in range(0, len(updates), batch_size)
        ]

    # ------------------------------------------------------------------ #
    # accounting helpers
    # ------------------------------------------------------------------ #
    def total_messages(self) -> int:
        return sum(outcome.messages for outcome in self.history) + sum(
            outcome.messages for outcome in self.batch_history
        )

    def messages_per_update(self) -> List[int]:
        return [outcome.messages for outcome in self.history]

    def messages_per_wave(self) -> List[int]:
        return [outcome.messages for outcome in self.batch_history]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _derived_config(self, counter: int) -> AlgorithmConfig:
        """The per-update config: independent randomness for update ``counter``.

        An explicit base config contributes its parameters (and its seed, if
        any) but is never handed to a repairer verbatim — its RNG object
        would leak state across updates, breaking both reproducibility and
        the impromptu no-retained-state claim.
        """
        if self._base_config is not None:
            base_seed = self._base_config.seed if self._base_config.seed is not None else self._seed
            derived_seed = None if base_seed is None else base_seed + 7919 * counter
            return replace(self._base_config, seed=derived_seed)
        derived_seed = None if self._seed is None else self._seed + 7919 * counter
        return AlgorithmConfig(n=max(self.graph.num_nodes, 1), seed=derived_seed)

    def _repairer_for(self, counter: int) -> TreeRepairer:
        return TreeRepairer(
            self.graph,
            self.forest,
            config=self._derived_config(counter),
            accountant=self.accountant,
            mode=self.mode,
        )

    def _fresh_repairer(self) -> TreeRepairer:
        """A brand-new repairer per update: nothing persists in between.

        The config (and hence the RNG) is re-derived from the seed and the
        update counter so runs stay reproducible while each update's
        randomness is independent.
        """
        self._update_counter += 1
        return self._repairer_for(self._update_counter)
