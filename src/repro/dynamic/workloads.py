"""Update-workload generators for the dynamic-network experiments.

Theorem 1.2's costs depend on what kind of edge is touched, so the workloads
distinguish:

* ``tree_edge_deletions`` — deletions that always hit a maintained tree edge
  (the expensive case: a replacement search is required);
* ``random_churn`` — a mix of random insertions and deletions, keeping the
  graph connected if asked (what a long-lived network experiences);
* ``weight_perturbations`` — random weight increases/decreases (MST only);
* ``bridge_deletions`` — deletions of bridges (the "no replacement" path);
* ``bridge_heavy_deletions`` — tree-edge delete/reinsert pairs that prefer
  bridges, keeping the repair on the expensive "certify ∅" path;
* ``tree_weight_increases`` — adversarial monotone weight increases on tree
  edges (every increase threatens to evict the edge from the MST).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..network.errors import AlgorithmError
from ..network.fragments import SpanningForest
from ..network.graph import Graph, edge_key
from .updates import EdgeUpdate, UpdateStream

__all__ = [
    "tree_edge_deletions",
    "random_churn",
    "weight_perturbations",
    "bridge_deletions",
    "bridge_heavy_deletions",
    "tree_weight_increases",
]


def tree_edge_deletions(
    graph: Graph,
    forest: SpanningForest,
    count: int,
    seed: Optional[int] = None,
    reinsert: bool = True,
) -> UpdateStream:
    """Alternating delete/insert of randomly chosen *tree* edges.

    Each deletion targets an edge currently marked in ``forest``; with
    ``reinsert`` the same edge is inserted back right after (with its old
    weight) so that the stream can be arbitrarily long without exhausting the
    graph.  The stream is generated against shadow copies, so the real graph
    and forest are untouched until a maintainer applies it.
    """
    rng = random.Random(seed)
    shadow_graph = graph.copy()
    shadow_marked: Set[Tuple[int, int]] = set(forest.marked_edges)
    stream = UpdateStream()
    if not shadow_marked:
        raise AlgorithmError("the forest has no marked edges to delete")
    for _ in range(count):
        key = sorted(shadow_marked)[rng.randrange(len(shadow_marked))]
        weight = shadow_graph.get_edge(*key).weight
        stream.append(EdgeUpdate.delete(*key))
        shadow_graph.remove_edge(*key)
        shadow_marked.discard(key)
        if reinsert:
            stream.append(EdgeUpdate.insert(key[0], key[1], weight))
            shadow_graph.add_edge(key[0], key[1], weight)
            # After re-insertion the edge may or may not re-enter the tree;
            # for workload generation we optimistically treat it as available
            # again, which keeps the deletion pool large.
            shadow_marked.add(key)
    return stream


def random_churn(
    graph: Graph,
    count: int,
    seed: Optional[int] = None,
    max_weight: Optional[int] = None,
    insert_fraction: float = 0.5,
) -> UpdateStream:
    """A random mix of edge insertions and deletions.

    Deletions pick a uniformly random existing edge; insertions a uniformly
    random absent pair.  ``insert_fraction`` sets the insert/delete mix.  The
    stream is always applicable in order (generated against a shadow copy).
    """
    if not (0.0 <= insert_fraction <= 1.0):
        raise AlgorithmError("insert_fraction must be in [0, 1]")
    rng = random.Random(seed)
    shadow = graph.copy()
    nodes = shadow.nodes()
    if len(nodes) < 2:
        raise AlgorithmError("need at least two nodes for churn")
    max_weight = max_weight if max_weight is not None else max(shadow.max_weight(), len(nodes))
    stream = UpdateStream()
    for _ in range(count):
        do_insert = rng.random() < insert_fraction
        if do_insert:
            pair = _random_absent_pair(shadow, rng)
            if pair is None:
                do_insert = False
            else:
                weight = rng.randint(1, max_weight)
                stream.append(EdgeUpdate.insert(pair[0], pair[1], weight))
                shadow.add_edge(pair[0], pair[1], weight)
                continue
        edges = shadow.edges()
        if not edges:
            continue
        edge = edges[rng.randrange(len(edges))]
        stream.append(EdgeUpdate.delete(edge.u, edge.v))
        shadow.remove_edge(edge.u, edge.v)
    return stream


def weight_perturbations(
    graph: Graph,
    count: int,
    seed: Optional[int] = None,
    max_delta: int = 10,
) -> UpdateStream:
    """Random weight increases and decreases on existing edges."""
    rng = random.Random(seed)
    shadow = graph.copy()
    stream = UpdateStream()
    edges = shadow.edges()
    if not edges:
        raise AlgorithmError("the graph has no edges to perturb")
    for _ in range(count):
        edge = shadow.edges()[rng.randrange(shadow.num_edges)]
        delta = rng.randint(1, max_delta)
        if rng.random() < 0.5:
            new_weight = edge.weight + delta
            stream.append(EdgeUpdate.increase_weight(edge.u, edge.v, new_weight))
        else:
            new_weight = max(1, edge.weight - delta)
            if new_weight >= edge.weight:
                new_weight = max(1, edge.weight - 1)
            if new_weight == edge.weight:
                continue
            stream.append(EdgeUpdate.decrease_weight(edge.u, edge.v, new_weight))
        shadow.set_weight(edge.u, edge.v, new_weight)
    return stream


def bridge_deletions(
    graph: Graph,
    count: int,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Deletions of bridge edges (no replacement exists): the ∅ path of repair."""
    rng = random.Random(seed)
    shadow = graph.copy()
    stream = UpdateStream()
    for _ in range(count):
        bridges = _find_bridges(shadow)
        if not bridges:
            break
        key = sorted(bridges)[rng.randrange(len(bridges))]
        stream.append(EdgeUpdate.delete(*key))
        shadow.remove_edge(*key)
    return stream


def bridge_heavy_deletions(
    graph: Graph,
    forest: SpanningForest,
    count: int,
    seed: Optional[int] = None,
) -> UpdateStream:
    """Tree-edge delete/reinsert pairs that prefer bridges.

    Every bridge of the graph belongs to every spanning forest, so deleting
    one always exercises the repair's "certify that no replacement exists"
    path (the ∅ outcome of FindMin/FindAny).  Each step deletes a bridge when
    one exists — falling back to a random marked tree edge otherwise — and
    reinserts it immediately so the stream can be arbitrarily long.
    """
    rng = random.Random(seed)
    marked: Set[Tuple[int, int]] = set(forest.marked_edges)
    if not marked:
        raise AlgorithmError("the forest has no marked edges to delete")
    # Each delete is immediately reinserted, so the topology — and hence the
    # bridge set — is the same at every step: compute the pool once.
    bridges = [key for key in _find_bridges(graph) if key in marked]
    pool = sorted(bridges) if bridges else sorted(marked)
    stream = UpdateStream()
    for _ in range(count):
        key = pool[rng.randrange(len(pool))]
        weight = graph.get_edge(*key).weight
        stream.append(EdgeUpdate.delete(*key))
        stream.append(EdgeUpdate.insert(key[0], key[1], weight))
    return stream


def tree_weight_increases(
    graph: Graph,
    forest: SpanningForest,
    count: int,
    seed: Optional[int] = None,
    max_delta: int = 10,
) -> UpdateStream:
    """Adversarial monotone weight increases on (initially) tree edges.

    The paper treats a weight increase of a tree edge like a deletion: the
    maintainer must search for a replacement.  Each step ramps a random
    marked edge's weight up by ``1..max_delta``, so in MST mode every update
    threatens to evict the edge from the tree.
    """
    if max_delta < 1:
        raise AlgorithmError("max_delta must be at least 1")
    rng = random.Random(seed)
    shadow = graph.copy()
    marked = sorted(forest.marked_edges)
    if not marked:
        raise AlgorithmError("the forest has no marked edges to ramp")
    used = {edge.weight for edge in shadow.edges()}
    stream = UpdateStream()
    for _ in range(count):
        key = marked[rng.randrange(len(marked))]
        new_weight = shadow.get_edge(*key).weight + rng.randint(1, max_delta)
        # Preserve the paper's distinct-weight assumption: never ramp onto a
        # weight another edge already carries.
        while new_weight in used:
            new_weight += 1
        stream.append(EdgeUpdate.increase_weight(key[0], key[1], new_weight))
        used.add(new_weight)
        shadow.set_weight(key[0], key[1], new_weight)
    return stream


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _random_absent_pair(graph: Graph, rng: random.Random) -> Optional[Tuple[int, int]]:
    nodes = graph.nodes()
    for _ in range(200):
        u = nodes[rng.randrange(len(nodes))]
        v = nodes[rng.randrange(len(nodes))]
        if u != v and not graph.has_edge(u, v):
            return edge_key(u, v)
    return None


def _find_bridges(graph: Graph) -> List[Tuple[int, int]]:
    """All bridges of the graph (iterative Tarjan low-link)."""
    index = {}
    low = {}
    bridges: List[Tuple[int, int]] = []
    counter = [0]

    for root in graph.nodes():
        if root in index:
            continue
        stack: List[Tuple[int, Optional[int], int]] = [(root, None, 0)]
        order: List[Tuple[int, Optional[int]]] = []
        while stack:
            node, parent, child_index = stack.pop()
            if child_index == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                order.append((node, parent))
            neighbors = graph.neighbors(node)
            advanced = False
            for next_index in range(child_index, len(neighbors)):
                nbr = neighbors[next_index]
                if nbr == parent:
                    continue
                if nbr not in index:
                    stack.append((node, parent, next_index + 1))
                    stack.append((nbr, node, 0))
                    advanced = True
                    break
                low[node] = min(low[node], index[nbr])
            if advanced:
                continue
        # Post-process in reverse discovery order to propagate low-links.
        for node, parent in reversed(order):
            if parent is not None:
                low[parent] = min(low[parent], low[node])
                if low[node] > index[parent]:
                    bridges.append(edge_key(node, parent))
    return bridges
