"""Edge-update events and streams for dynamic networks.

A dynamic distributed network (paper, Section 1) undergoes online edge
insertions and deletions; the paper additionally treats weight increases like
deletions and weight decreases like insertions.  :class:`EdgeUpdate` is the
event type, :class:`UpdateStream` a thin ordered container with convenience
constructors and validation against a graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List, Optional

from ..network.errors import AlgorithmError
from ..network.graph import Graph, edge_key

__all__ = ["UpdateKind", "EdgeUpdate", "UpdateStream"]


class UpdateKind(str, Enum):
    """The four update types of Theorem 1.2."""

    INSERT = "insert"
    DELETE = "delete"
    INCREASE_WEIGHT = "increase_weight"
    DECREASE_WEIGHT = "decrease_weight"


@dataclass(frozen=True)
class EdgeUpdate:
    """One update to the communication graph."""

    kind: UpdateKind
    u: int
    v: int
    weight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise AlgorithmError("self-loop updates are not allowed")
        if self.kind in (UpdateKind.INSERT, UpdateKind.INCREASE_WEIGHT, UpdateKind.DECREASE_WEIGHT):
            if self.weight is None:
                raise AlgorithmError(f"{self.kind.value} updates need a weight")

    @property
    def key(self):
        return edge_key(self.u, self.v)

    @property
    def effective_weight(self) -> int:
        """The weight to apply: default 1 only when genuinely unset.

        ``update.weight or 1`` would silently coerce an *explicit* weight 0
        to 1 (weight 0 is legal — only negative weights are rejected); every
        consumer must go through this property instead.
        """
        return 1 if self.weight is None else self.weight

    @staticmethod
    def insert(u: int, v: int, weight: int = 1) -> "EdgeUpdate":
        return EdgeUpdate(UpdateKind.INSERT, u, v, weight)

    @staticmethod
    def delete(u: int, v: int) -> "EdgeUpdate":
        return EdgeUpdate(UpdateKind.DELETE, u, v)

    @staticmethod
    def increase_weight(u: int, v: int, weight: int) -> "EdgeUpdate":
        return EdgeUpdate(UpdateKind.INCREASE_WEIGHT, u, v, weight)

    @staticmethod
    def decrease_weight(u: int, v: int, weight: int) -> "EdgeUpdate":
        return EdgeUpdate(UpdateKind.DECREASE_WEIGHT, u, v, weight)


class UpdateStream:
    """An ordered sequence of edge updates."""

    def __init__(self, updates: Optional[Iterable[EdgeUpdate]] = None) -> None:
        self._updates: List[EdgeUpdate] = list(updates or [])

    def append(self, update: EdgeUpdate) -> None:
        self._updates.append(update)

    def extend(self, updates: Iterable[EdgeUpdate]) -> None:
        self._updates.extend(updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._updates[index]

    def validate_against(self, graph: Graph) -> None:
        """Check the stream is applicable to (a copy of) ``graph`` in order.

        Raises :class:`AlgorithmError` on the first inapplicable update (e.g.
        deleting an edge that does not exist at that point of the stream).
        """
        shadow = graph.copy()
        for index, update in enumerate(self._updates):
            u, v = update.key
            if update.kind == UpdateKind.INSERT:
                if shadow.has_edge(u, v):
                    raise AlgorithmError(f"update {index}: edge ({u},{v}) already exists")
                shadow.add_edge(u, v, update.effective_weight)
            elif update.kind == UpdateKind.DELETE:
                if not shadow.has_edge(u, v):
                    raise AlgorithmError(f"update {index}: edge ({u},{v}) does not exist")
                shadow.remove_edge(u, v)
            else:
                if not shadow.has_edge(u, v):
                    raise AlgorithmError(f"update {index}: edge ({u},{v}) does not exist")
                current = shadow.get_edge(u, v).weight
                assert update.weight is not None
                if update.kind == UpdateKind.INCREASE_WEIGHT and update.weight < current:
                    raise AlgorithmError(f"update {index}: weight did not increase")
                if update.kind == UpdateKind.DECREASE_WEIGHT and update.weight > current:
                    raise AlgorithmError(f"update {index}: weight did not decrease")
                shadow.set_weight(u, v, update.weight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UpdateStream({len(self._updates)} updates)"
