"""Recording and replaying dynamic-network traces.

Long-running evaluations (and bug reports) want update workloads that can be
saved, inspected and replayed bit-for-bit.  An :class:`UpdateTrace` couples an
initial graph with an update stream and the per-update costs measured when it
was executed; it serialises to a plain JSON document so traces can be checked
into a repository or attached to an issue.

Typical use::

    trace = UpdateTrace.record(graph, forest, stream, maintainer.history)
    trace.save(path)
    ...
    replayed = UpdateTrace.load(path)
    graph, forest = replayed.rebuild_initial_state()
    maintainer = TreeMaintainer(graph, forest, mode=replayed.mode, seed=replayed.seed)
    outcomes = maintainer.apply_stream(replayed.stream())
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..network.errors import AlgorithmError
from ..network.fragments import SpanningForest
from ..network.graph import Graph
from .maintainer import UpdateOutcome
from .updates import EdgeUpdate, UpdateKind, UpdateStream

__all__ = ["UpdateTrace"]

_FORMAT_VERSION = 1


@dataclass
class UpdateTrace:
    """A serialisable (initial state, update stream, measured costs) triple."""

    id_bits: int
    nodes: List[int]
    edges: List[Tuple[int, int, int]]
    marked_edges: List[Tuple[int, int]]
    updates: List[Dict[str, Union[str, int, None]]]
    costs: List[int] = field(default_factory=list)
    mode: str = "mst"
    seed: Optional[int] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def record(
        cls,
        graph: Graph,
        forest: SpanningForest,
        stream: UpdateStream,
        history: Optional[Sequence[UpdateOutcome]] = None,
        mode: str = "mst",
        seed: Optional[int] = None,
    ) -> "UpdateTrace":
        """Capture the *initial* state plus the stream (and costs if known).

        Call this with the graph/forest as they were **before** the stream was
        applied; ``history`` (the maintainer's outcome list) is optional and
        only used to attach measured per-update costs.
        """
        if history is not None and len(history) != len(stream):
            raise AlgorithmError("history length does not match the stream")
        return cls(
            id_bits=graph.id_bits,
            nodes=graph.nodes(),
            edges=[(e.u, e.v, e.weight) for e in graph.edges()],
            marked_edges=sorted(forest.marked_edges),
            updates=[cls._encode_update(update) for update in stream],
            costs=[outcome.messages for outcome in history] if history else [],
            mode=mode,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def rebuild_initial_state(self) -> Tuple[Graph, SpanningForest]:
        """Reconstruct the initial graph and marked forest."""
        graph = Graph(id_bits=self.id_bits)
        for node in self.nodes:
            graph.add_node(node)
        for u, v, weight in self.edges:
            graph.add_edge(u, v, weight)
        forest = SpanningForest(graph, marked=self.marked_edges)
        return graph, forest

    def stream(self) -> UpdateStream:
        """Reconstruct the update stream."""
        return UpdateStream(self._decode_update(entry) for entry in self.updates)

    def total_cost(self) -> int:
        return sum(self.costs)

    def __len__(self) -> int:
        return len(self.updates)

    # ------------------------------------------------------------------ #
    # (de)serialisation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        payload = {
            "format_version": _FORMAT_VERSION,
            "mode": self.mode,
            "seed": self.seed,
            "id_bits": self.id_bits,
            "nodes": self.nodes,
            "edges": [list(edge) for edge in self.edges],
            "marked_edges": [list(key) for key in self.marked_edges],
            "updates": self.updates,
            "costs": self.costs,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "UpdateTrace":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise AlgorithmError(f"unsupported trace format version {version!r}")
        return cls(
            id_bits=payload["id_bits"],
            nodes=list(payload["nodes"]),
            edges=[tuple(edge) for edge in payload["edges"]],
            marked_edges=[tuple(key) for key in payload["marked_edges"]],
            updates=list(payload["updates"]),
            costs=list(payload.get("costs", [])),
            mode=payload.get("mode", "mst"),
            seed=payload.get("seed"),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "UpdateTrace":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _encode_update(update: EdgeUpdate) -> Dict[str, Union[str, int, None]]:
        return {
            "kind": update.kind.value,
            "u": update.u,
            "v": update.v,
            "weight": update.weight,
        }

    @staticmethod
    def _decode_update(entry: Dict[str, Union[str, int, None]]) -> EdgeUpdate:
        try:
            kind = UpdateKind(str(entry["kind"]))
        except ValueError as exc:
            raise AlgorithmError(f"unknown update kind {entry.get('kind')!r}") from exc
        weight = entry.get("weight")
        return EdgeUpdate(kind, int(entry["u"]), int(entry["v"]), None if weight is None else int(weight))
