"""repro: King–Kutten–Thorup (PODC 2015) MST construction & impromptu repair.

A from-scratch reproduction of *"Construction and Impromptu Repair of an MST
in a Distributed Network with o(m) Communication"*: a CONGEST-model network
simulator with exact message/bit/round accounting, the paper's Monte Carlo
procedures (TestOut, HP-TestOut, FindMin, FindAny), synchronous Build-MST /
Build-ST, impromptu repair under edge updates, and the classic baselines
(GHS, flooding) the paper improves upon.

Quickstart
----------
The unified runner API names every algorithm in a registry and returns a
uniform, JSON-round-trippable :class:`RunResult`:

>>> from repro import GraphSpec, run, list_algorithms
>>> list_algorithms()
['flooding', 'ghs', 'kkt-mst', 'kkt-repair', 'kkt-st', 'recompute-repair']
>>> result = run("kkt-mst", GraphSpec(nodes=96, density="complete", seed=7))
>>> result.ok
True
>>> result.counters()  # uniform counters, JSON-round-trippable via to_json()
{'messages': ..., 'bits': ..., 'rounds': ..., 'phases': ...}

Sweeps and head-to-head comparisons fan out across worker processes with
deterministic per-job seeding:

>>> from repro import ExperimentEngine
>>> engine = ExperimentEngine(jobs=4)
>>> results = engine.sweep(["kkt-st", "flooding"], sizes=[32, 64, 96])

The original object-level entry points remain available (and
``build_mst`` / ``build_st`` now delegate to the registry):

>>> from repro import build_mst, generators
>>> graph = generators.random_connected_graph(64, 256, seed=7)
>>> report = build_mst(graph, seed=7)
>>> report.is_spanning
True
"""

from typing import Optional

from . import (
    analysis,
    baselines,
    byzantine,
    core,
    dynamic,
    fastpath,
    fuzz,
    generators,
    network,
    verify,
)
from .fastpath import fast_path, reference_path
from .core import (
    AlgorithmConfig,
    BuildMST,
    BuildReport,
    BuildST,
    CutTester,
    FindAny,
    FindMin,
    FindResult,
    RepairReport,
    SuperpolyFindMin,
    TreeRepairer,
)
from .network import (
    Edge,
    EdgeDelayScheduler,
    FifoScheduler,
    Graph,
    LifoScheduler,
    MessageAccountant,
    RandomScheduler,
    Scheduler,
    SpanningForest,
    make_scheduler,
)
from . import api
from .api import (
    AlgorithmRunner,
    ExperimentEngine,
    ExperimentJob,
    ExperimentSpec,
    FaultSpec,
    GraphSpec,
    RunResult,
    ScheduleSpec,
    WorkloadSpec,
    get_fault,
    get_runner,
    get_workload,
    list_algorithms,
    list_faults,
    list_workloads,
    register,
    register_fault,
    register_workload,
    run,
    scenario_grid,
)

__version__ = "1.5.0"

__all__ = [
    "AlgorithmConfig",
    "AlgorithmRunner",
    "BuildMST",
    "BuildReport",
    "BuildST",
    "CutTester",
    "Edge",
    "EdgeDelayScheduler",
    "ExperimentEngine",
    "ExperimentJob",
    "ExperimentSpec",
    "FaultSpec",
    "FifoScheduler",
    "FindAny",
    "FindMin",
    "FindResult",
    "Graph",
    "GraphSpec",
    "LifoScheduler",
    "MessageAccountant",
    "RandomScheduler",
    "RepairReport",
    "RunResult",
    "ScheduleSpec",
    "Scheduler",
    "SpanningForest",
    "SuperpolyFindMin",
    "TreeRepairer",
    "WorkloadSpec",
    "analysis",
    "api",
    "baselines",
    "build_mst",
    "byzantine",
    "build_st",
    "core",
    "dynamic",
    "fast_path",
    "fastpath",
    "fuzz",
    "generators",
    "get_fault",
    "get_runner",
    "get_workload",
    "list_algorithms",
    "list_faults",
    "list_workloads",
    "make_scheduler",
    "network",
    "reference_path",
    "register",
    "register_fault",
    "register_workload",
    "run",
    "scenario_grid",
    "verify",
    "__version__",
]


def build_mst(
    graph: Graph,
    seed: Optional[int] = None,
    c: float = 1.0,
    phase_policy: str = "adaptive",
) -> BuildReport:
    """Build a minimum spanning forest of ``graph`` (Theorem 1.1, MST).

    Compatibility shim: delegates to the ``kkt-mst`` runner in the algorithm
    registry (see :func:`repro.run` for the spec-based entry point).
    """
    return get_runner("kkt-mst").build_report(
        graph, seed=seed, c=c, phase_policy=phase_policy
    )


def build_st(
    graph: Graph,
    seed: Optional[int] = None,
    c: float = 1.0,
    phase_policy: str = "adaptive",
) -> BuildReport:
    """Build a spanning forest of ``graph`` (Theorem 1.1, ST).

    Compatibility shim: delegates to the ``kkt-st`` runner in the algorithm
    registry (see :func:`repro.run` for the spec-based entry point).
    """
    return get_runner("kkt-st").build_report(
        graph, seed=seed, c=c, phase_policy=phase_policy
    )
