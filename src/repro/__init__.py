"""repro: King–Kutten–Thorup (PODC 2015) MST construction & impromptu repair.

A from-scratch reproduction of *"Construction and Impromptu Repair of an MST
in a Distributed Network with o(m) Communication"*: a CONGEST-model network
simulator with exact message/bit/round accounting, the paper's Monte Carlo
procedures (TestOut, HP-TestOut, FindMin, FindAny), synchronous Build-MST /
Build-ST, impromptu repair under edge updates, and the classic baselines
(GHS, flooding) the paper improves upon.

Quickstart
----------
>>> from repro import build_mst, generators
>>> graph = generators.random_connected_graph(64, 256, seed=7)
>>> report = build_mst(graph, seed=7)
>>> report.is_spanning
True
"""

from typing import Optional

from . import analysis, baselines, core, dynamic, generators, network, verify
from .core import (
    AlgorithmConfig,
    BuildMST,
    BuildReport,
    BuildST,
    CutTester,
    FindAny,
    FindMin,
    FindResult,
    RepairReport,
    SuperpolyFindMin,
    TreeRepairer,
)
from .network import (
    Edge,
    Graph,
    MessageAccountant,
    SpanningForest,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmConfig",
    "BuildMST",
    "BuildReport",
    "BuildST",
    "CutTester",
    "Edge",
    "FindAny",
    "FindMin",
    "FindResult",
    "Graph",
    "MessageAccountant",
    "RepairReport",
    "SpanningForest",
    "SuperpolyFindMin",
    "TreeRepairer",
    "analysis",
    "baselines",
    "build_mst",
    "build_st",
    "core",
    "dynamic",
    "generators",
    "network",
    "verify",
    "__version__",
]


def build_mst(
    graph: Graph,
    seed: Optional[int] = None,
    c: float = 1.0,
    phase_policy: str = "adaptive",
) -> BuildReport:
    """Build a minimum spanning forest of ``graph`` (Theorem 1.1, MST).

    Convenience wrapper around :class:`repro.core.BuildMST` with a fresh
    accountant and a config derived from the graph size.
    """
    config = AlgorithmConfig(
        n=max(graph.num_nodes, 1), c=c, seed=seed, phase_policy=phase_policy
    )
    return BuildMST(graph, config=config).run()


def build_st(
    graph: Graph,
    seed: Optional[int] = None,
    c: float = 1.0,
    phase_policy: str = "adaptive",
) -> BuildReport:
    """Build a spanning forest of ``graph`` (Theorem 1.1, ST)."""
    config = AlgorithmConfig(
        n=max(graph.num_nodes, 1), c=c, seed=seed, phase_policy=phase_policy
    )
    return BuildST(graph, config=config).run()
