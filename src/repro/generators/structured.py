"""Structured graph families: paths, cycles, grids, hypercubes, expanders.

These give the benchmarks controlled shapes: the complete graph maximises
``m`` (the strongest ``o(m)`` demonstration), the path/cycle maximise the
diameter (worst case for broadcast-and-echo round counts), and circulant
graphs give an expander-ish middle ground.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..network.errors import GraphError
from ..network.graph import Graph
from .random_graphs import id_bits_for

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "hypercube_graph",
    "circulant_expander",
]


def _build(n: int, edges: List[Tuple[int, int]], seed: Optional[int], max_weight: Optional[int]) -> Graph:
    rng = random.Random(seed)
    graph = Graph(id_bits=id_bits_for(n))
    for node in range(1, n + 1):
        graph.add_node(node)
    weights = list(range(1, len(edges) + 1))
    rng.shuffle(weights)
    if max_weight is not None:
        weights = [1 + (w % max_weight) for w in weights]
    for (u, v), weight in zip(edges, weights):
        graph.add_edge(u, v, weight)
    return graph


def path_graph(n: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """The path ``1 - 2 - … - n`` (diameter ``n − 1``)."""
    if n < 1:
        raise GraphError("n must be positive")
    edges = [(i, i + 1) for i in range(1, n)]
    return _build(n, edges, seed, max_weight)


def cycle_graph(n: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """The cycle on ``n ≥ 3`` nodes."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    edges = [(i, i + 1) for i in range(1, n)] + [(1, n)]
    return _build(n, edges, seed, max_weight)


def star_graph(n: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """A star: node 1 connected to every other node."""
    if n < 2:
        raise GraphError("a star needs at least 2 nodes")
    edges = [(1, i) for i in range(2, n + 1)]
    return _build(n, edges, seed, max_weight)


def complete_graph(n: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """The complete graph ``K_n`` — the densest ``o(m)`` showcase."""
    if n < 1:
        raise GraphError("n must be positive")
    edges = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
    return _build(n, edges, seed, max_weight)


def grid_graph(rows: int, cols: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """The ``rows × cols`` grid (node ``(r, c)`` has ID ``r·cols + c + 1``)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    n = rows * cols

    def node_id(r: int, c: int) -> int:
        return r * cols + c + 1

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node_id(r, c), node_id(r, c + 1)))
            if r + 1 < rows:
                edges.append((node_id(r, c), node_id(r + 1, c)))
    return _build(n, edges, seed, max_weight)


def hypercube_graph(dimension: int, seed: Optional[int] = None, max_weight: Optional[int] = None) -> Graph:
    """The ``dimension``-dimensional hypercube (``2^d`` nodes, ``d·2^{d−1}`` edges)."""
    if dimension < 1:
        raise GraphError("dimension must be positive")
    n = 1 << dimension
    edges = []
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u + 1, v + 1))
    return _build(n, edges, seed, max_weight)


def circulant_expander(
    n: int, offsets: Optional[List[int]] = None, seed: Optional[int] = None, max_weight: Optional[int] = None
) -> Graph:
    """A circulant graph: node ``i`` connects to ``i ± o`` for each offset ``o``.

    With a handful of coprime-ish offsets this is a decent expander stand-in:
    constant degree, logarithmic-ish diameter.
    """
    if n < 3:
        raise GraphError("n must be at least 3")
    if offsets is None:
        offsets = [1, 2, 5]
    edges = set()
    for i in range(n):
        for offset in offsets:
            j = (i + offset) % n
            if i != j:
                edges.add((min(i, j) + 1, max(i, j) + 1))
    return _build(n, sorted(edges), seed, max_weight)
