"""Graph and weight generators for tests, examples and benchmarks."""

from .random_graphs import (
    gnm_random_graph,
    gnp_random_graph,
    random_connected_graph,
    random_geometric_graph,
    random_spanning_tree_forest,
)
from .structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    circulant_expander,
)
from .weights import (
    assign_adversarial_weights,
    assign_permutation_weights,
    assign_uniform_weights,
)

__all__ = [
    "assign_adversarial_weights",
    "assign_permutation_weights",
    "assign_uniform_weights",
    "circulant_expander",
    "complete_graph",
    "cycle_graph",
    "gnm_random_graph",
    "gnp_random_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "random_connected_graph",
    "random_geometric_graph",
    "random_spanning_tree_forest",
    "star_graph",
]
