"""Weight-assignment schemes.

The paper assumes distinct edge weights (achieved by augmenting weights with
edge numbers), but benchmarks also want control over the *raw* weights:
uniform random weights with collisions (stress-testing the augmentation),
permutation weights (all distinct), and adversarial assignments that force
FindMin's range search to narrow as slowly as possible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..network.graph import Graph

__all__ = [
    "assign_uniform_weights",
    "assign_permutation_weights",
    "assign_adversarial_weights",
]


def assign_uniform_weights(
    graph: Graph, max_weight: int, seed: Optional[int] = None
) -> Graph:
    """Give every edge an independent uniform weight in ``[1, max_weight]``."""
    rng = random.Random(seed)
    for edge in graph.edges():
        graph.set_weight(edge.u, edge.v, rng.randint(1, max_weight))
    return graph


def assign_permutation_weights(graph: Graph, seed: Optional[int] = None) -> Graph:
    """Give the ``m`` edges the weights ``1..m`` in a random order (all distinct)."""
    rng = random.Random(seed)
    edges = graph.edges()
    weights = list(range(1, len(edges) + 1))
    rng.shuffle(weights)
    for edge, weight in zip(edges, weights):
        graph.set_weight(edge.u, edge.v, weight)
    return graph


def assign_adversarial_weights(
    graph: Graph, spread_bits: int = 40, seed: Optional[int] = None
) -> Graph:
    """Exponentially spread weights: weight of the i-th edge ≈ ``2^{i·spread/m}``.

    A wide, highly non-uniform weight range makes the binary/``w``-ary search
    of FindMin traverse as many scales as possible, and (with a large
    ``spread_bits``) exercises the superpolynomial-weight code path.
    """
    rng = random.Random(seed)
    edges = graph.edges()
    order = list(range(len(edges)))
    rng.shuffle(order)
    m = max(len(edges), 1)
    for rank, index in enumerate(order):
        exponent = (rank * spread_bits) // m
        weight = (1 << exponent) + rng.randrange(1 << max(exponent - 1, 1))
        edge = edges[index]
        graph.set_weight(edge.u, edge.v, weight)
    return graph
