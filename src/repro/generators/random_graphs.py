"""Random communication-graph generators.

All generators return a :class:`repro.network.graph.Graph` whose node IDs are
``1..n`` and whose ``id_bits`` is the smallest width that fits ``n`` (so that
edge numbers, and hence message sizes, are ``O(log n)`` as the paper
assumes).  Edge weights default to a random permutation of ``1..m`` — distinct
raw weights, mirroring the paper's distinct-weight assumption — but any of
the schemes in :mod:`repro.generators.weights` can be applied afterwards.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Set, Tuple

from ..network.errors import GraphError
from ..network.fragments import SpanningForest
from ..network.graph import Graph

__all__ = [
    "id_bits_for",
    "gnp_random_graph",
    "gnm_random_graph",
    "random_connected_graph",
    "random_geometric_graph",
    "random_spanning_tree_forest",
]


def id_bits_for(n: int) -> int:
    """The smallest ID width that accommodates node IDs ``1..n``."""
    return max(2, (n + 1).bit_length())


def _finalize_weights(
    graph: Graph, edges: List[Tuple[int, int]], rng: random.Random, max_weight: Optional[int]
) -> Graph:
    weights = list(range(1, len(edges) + 1))
    rng.shuffle(weights)
    if max_weight is not None:
        weights = [1 + (w % max_weight) for w in weights]
    for (u, v), weight in zip(edges, weights):
        graph.add_edge(u, v, weight)
    return graph


def gnp_random_graph(
    n: int,
    p: float,
    seed: Optional[int] = None,
    max_weight: Optional[int] = None,
) -> Graph:
    """Erdős–Rényi ``G(n, p)`` with permutation weights."""
    if not (0.0 <= p <= 1.0):
        raise GraphError("p must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(id_bits=id_bits_for(n))
    for node in range(1, n + 1):
        graph.add_node(node)
    edges = [
        (u, v)
        for u in range(1, n + 1)
        for v in range(u + 1, n + 1)
        if rng.random() < p
    ]
    return _finalize_weights(graph, edges, rng, max_weight)


def gnm_random_graph(
    n: int,
    m: int,
    seed: Optional[int] = None,
    max_weight: Optional[int] = None,
) -> Graph:
    """Uniform random graph with exactly ``n`` nodes and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} edges in a graph of {n} nodes")
    rng = random.Random(seed)
    graph = Graph(id_bits=id_bits_for(n))
    for node in range(1, n + 1):
        graph.add_node(node)
    chosen: Set[Tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(1, n + 1)
        v = rng.randrange(1, n + 1)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return _finalize_weights(graph, sorted(chosen), rng, max_weight)


def random_connected_graph(
    n: int,
    m: int,
    seed: Optional[int] = None,
    max_weight: Optional[int] = None,
) -> Graph:
    """A connected random graph: a random spanning tree plus random extra edges."""
    if n >= 2 and m < n - 1:
        raise GraphError(f"a connected graph on {n} nodes needs at least {n - 1} edges")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} edges in a graph of {n} nodes")
    rng = random.Random(seed)
    graph = Graph(id_bits=id_bits_for(n))
    for node in range(1, n + 1):
        graph.add_node(node)

    # Random spanning tree via a random permutation (each new node attaches
    # to a uniformly random earlier node) — a simple recursive-tree model.
    order = list(range(1, n + 1))
    rng.shuffle(order)
    chosen: Set[Tuple[int, int]] = set()
    for index in range(1, n):
        parent = order[rng.randrange(index)]
        child = order[index]
        chosen.add((min(parent, child), max(parent, child)))

    while len(chosen) < m:
        u = rng.randrange(1, n + 1)
        v = rng.randrange(1, n + 1)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return _finalize_weights(graph, sorted(chosen), rng, max_weight)


def random_geometric_graph(
    n: int,
    radius: float,
    seed: Optional[int] = None,
    max_weight: Optional[int] = None,
) -> Graph:
    """Random geometric graph on the unit square (a wireless-network stand-in)."""
    rng = random.Random(seed)
    graph = Graph(id_bits=id_bits_for(n))
    positions = {}
    for node in range(1, n + 1):
        graph.add_node(node)
        positions[node] = (rng.random(), rng.random())
    edges = []
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            if math.hypot(dx, dy) <= radius:
                edges.append((u, v))
    return _finalize_weights(graph, edges, rng, max_weight)


def random_spanning_tree_forest(
    graph: Graph, seed: Optional[int] = None
) -> SpanningForest:
    """A uniform-ish random spanning forest of ``graph`` (for repair tests).

    Runs a randomized DFS per connected component and marks the discovered
    tree edges.  The result spans every component but is generally *not* the
    MST, which is what the FindMin / FindAny unit tests want (an arbitrary
    maintained tree with a rich set of outgoing non-tree edges).
    """
    rng = random.Random(seed)
    forest = SpanningForest(graph)
    visited: Set[int] = set()
    for start in graph.nodes():
        if start in visited:
            continue
        visited.add(start)
        stack = [start]
        while stack:
            node = stack[-1]
            candidates = [nbr for nbr in graph.neighbors(node) if nbr not in visited]
            if not candidates:
                stack.pop()
                continue
            nxt = candidates[rng.randrange(len(candidates))]
            visited.add(nxt)
            forest.mark(node, nxt)
            stack.append(nxt)
    return forest
