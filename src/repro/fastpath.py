"""Global fast-path switch: cached tree structures and one-pass sketch kernels.

The simulation has two execution paths through the sketch/broadcast stack:

* the **fast path** (default) — rooted tree structures are cached on the
  :class:`~repro.network.fragments.SpanningForest` and incrementally patched
  on single-edge attach/detach, per-node incident-edge-number arrays are
  precomputed and cached on the :class:`~repro.network.graph.Graph`, and the
  sketch kernels hash each incident edge exactly once, deriving all prefix /
  range parities with single-int word operations;

* the **reference path** — the original straight-line implementations: the
  rooted structure is rebuilt from the forest for every procedure call, and
  the kernels re-hash every incident edge once per prefix level / weight
  range.

Both paths are *observably identical*: messages, bits, rounds and
broadcast-and-echo counts are bit-for-bit equal (the equivalence suite in
``tests/integration/test_fastpath_equivalence.py`` pins this for every
registered algorithm, and ``repro bench`` asserts it on every run).  The
reference path exists so the equivalence can be checked and the speedup
measured honestly; everything else should leave the fast path on.

The switch is process-global (not thread-local): flipping it mid-simulation
is only meant for benchmarks and tests, which use the context managers::

    from repro.fastpath import reference_path

    with reference_path():
        ...  # runs the original slow kernels

Set the environment variable ``REPRO_FASTPATH=0`` to start with the
reference path enabled (useful for A/B runs in CI).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "is_enabled",
    "set_enabled",
    "fast_path",
    "reference_path",
    "batch_min_nodes",
    "should_batch",
    "repair_batch_size",
]

_enabled = os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "off")

#: Below this tree size the batched columnar kernels are not worth their
#: whole-graph setup; tune with ``REPRO_BATCH_MIN_NODES`` (the fuzz campaign
#: lowers it so moderate graphs exercise the columnar path too).
_DEFAULT_BATCH_MIN_NODES = 64


def is_enabled() -> bool:
    """True iff the fast path (caches + one-pass kernels) is active."""
    return _enabled


def batch_min_nodes() -> int:
    """Minimum tree size for batched (whole-graph) columnar kernels."""
    try:
        return int(os.environ.get("REPRO_BATCH_MIN_NODES", _DEFAULT_BATCH_MIN_NODES))
    except ValueError:
        return _DEFAULT_BATCH_MIN_NODES


def repair_batch_size() -> int:
    """Default wave size for batched impromptu repair (0 = sequential).

    Read from ``REPRO_REPAIR_BATCH``; an explicit ``repair_batch`` argument
    or a ``ScheduleSpec.batch_size`` always wins over the environment, so
    differential oracles can force sequential runs even in forced-batching
    CI legs.  Unlike :func:`should_batch` this is *not* wall-clock-only:
    batched repair trades per-update counter attribution for per-wave
    amortized accounting (final-forest equality is the contract).
    """
    try:
        return max(0, int(os.environ.get("REPRO_REPAIR_BATCH", "0")))
    except ValueError:
        return 0


def should_batch(tree_size: int, graph_nodes: int) -> bool:
    """Whether a broadcast-and-echo should use the batched columnar kernels.

    Purely a wall-clock heuristic — it can never change a computed value
    (the batched kernels are value-identical to the per-node ones and every
    combine used with them is commutative/associative), so counters stay
    bit-identical regardless of the answer.  Batching computes words for
    *every* graph node in one pass, which only pays off when the tree is
    both large (``REPRO_BATCH_MIN_NODES``) and covers at least half the
    graph.
    """
    return (
        _enabled
        and tree_size >= batch_min_nodes()
        and 2 * tree_size >= graph_nodes
    )


def set_enabled(value: bool) -> bool:
    """Set the switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


@contextmanager
def fast_path() -> Iterator[None]:
    """Force the fast path within the ``with`` block."""
    previous = set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def reference_path() -> Iterator[None]:
    """Force the original reference implementations within the ``with`` block."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
