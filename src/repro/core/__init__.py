"""The paper's algorithms: TestOut, FindMin/FindAny, Build-MST/ST, repair.

This subpackage implements the primary contribution of King, Kutten and
Thorup (PODC 2015): sub-``Ω(m)`` message-complexity construction and
impromptu repair of minimum spanning trees and spanning trees in the CONGEST
model with KT1 knowledge.
"""

from .build_mst import BuildMST, BuildReport
from .build_st import BuildST
from .config import (
    AlgorithmConfig,
    FINDANY_SUCCESS_PROBABILITY,
    TESTOUT_SUCCESS_PROBABILITY,
)
from .findany import FindAny
from .findmin import FindMin, FindResult
from .hashing import (
    KarpRabinFingerprint,
    OddHashFunction,
    PairwiseIndependentHash,
    random_fingerprint,
    random_odd_hash,
    random_pairwise_hash,
)
from .polynomial import SetEqualitySketch, combine_products, local_product
from .primes import is_prime, next_prime, prime_at_least, prime_for_field
from .repair import RepairReport, TreeRepairer
from .sample import SuperpolyFindMin
from .sketches import (
    local_parity,
    local_prefix_parities,
    local_range_parities,
    local_xor_below,
    pack_parity_word,
    unpack_parity_word,
    xor_combine,
    xor_vector_combine,
)
from .testout import CutTester, TreeStatistics

__all__ = [
    "AlgorithmConfig",
    "BuildMST",
    "BuildReport",
    "BuildST",
    "CutTester",
    "FINDANY_SUCCESS_PROBABILITY",
    "FindAny",
    "FindMin",
    "FindResult",
    "KarpRabinFingerprint",
    "OddHashFunction",
    "PairwiseIndependentHash",
    "RepairReport",
    "SetEqualitySketch",
    "SuperpolyFindMin",
    "TESTOUT_SUCCESS_PROBABILITY",
    "TreeRepairer",
    "TreeStatistics",
    "combine_products",
    "is_prime",
    "local_parity",
    "local_prefix_parities",
    "local_product",
    "local_range_parities",
    "local_xor_below",
    "next_prime",
    "pack_parity_word",
    "prime_at_least",
    "prime_for_field",
    "random_fingerprint",
    "random_odd_hash",
    "random_pairwise_hash",
    "unpack_parity_word",
    "xor_combine",
    "xor_vector_combine",
]
