"""FindMin for superpolynomial edge weights (Appendix A, Theorem A.1).

When the maximum edge weight ``u`` is superpolynomial in ``n``, augmented
weights have ``w`` bits with ``w ≫ log n`` and the oblivious ``w``-wise
splitting of Section 3.1 would need ``Θ(w / log log n)`` iterations.  The
appendix replaces the oblivious pivots with *sampled* pivots: each iteration
draws a handful of random edges incident to the tree (the ``Sample`` routine)
whose weights partition the current range, so the number of candidate edges —
not the width of the weight range — shrinks geometrically, and
``O(log n / log log n)`` iterations suffice in expectation regardless of how
wide the weights are.

The appendix's pseudocode contains several typos (see DESIGN.md §4); this
module implements its stated idea:

1. ``Sample``: one broadcast-and-echo draws ``s`` edges uniformly at random
   from the multiset of non-tree edges incident to ``T`` whose augmented
   weight lies in the current range ``[low, high]``.  The sampling is
   performed with per-edge random keys merged up the tree (distributed
   reservoir sampling), so each echo carries at most ``s`` weight prefixes —
   the same ``O(w)`` bits per message as the appendix's ``Sample(p)``.
2. The sampled weights become pivots; the pivot intervals (including the
   singleton interval at each pivot) are tested with one parallel
   ``TestOut`` word, the lowest positive interval is verified with
   ``HP-TestOut`` (no lighter interval missed, chosen interval non-empty),
   and the range narrows to it.
3. When the range narrows to a single augmented weight, that weight *is* the
   minimum leaving edge.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .. import fastpath
from ..network.accounting import MessageAccountant
from ..network.broadcast import TreeStructure
from ..network.fragments import SpanningForest
from ..network.graph import Edge, Graph
from .config import AlgorithmConfig
from .findmin import FindMin, FindResult
from .hashing import random_odd_hash
from .primes import prime_for_field
from .testout import CutTester

__all__ = ["SuperpolyFindMin"]


class SuperpolyFindMin:
    """Sampled-pivot FindMin for arbitrarily large edge weights."""

    def __init__(
        self,
        graph: Graph,
        forest: SpanningForest,
        config: AlgorithmConfig,
        accountant: Optional[MessageAccountant] = None,
    ) -> None:
        self.graph = graph
        self.forest = forest
        self.config = config
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self.tester = CutTester(graph, forest, config, self.accountant)
        self._rng = config.spawn()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, root: int, max_iterations: Optional[int] = None) -> FindResult:
        """Find the minimum-weight edge leaving ``T_root`` (∅ if none)."""
        start = self.accountant.snapshot()
        start_be = self.accountant.broadcast_echoes
        tree = self.forest.rooted_structure(root)

        stats = self.tester.tree_statistics(root, tree=tree)
        if not stats.has_incident_edges:
            return self._result(None, True, 0, start, start_be)
        field_prime = prime_for_field(
            max_edge_number=max(stats.max_edge_number, 2),
            num_endpoints=max(stats.num_endpoints, 1),
            epsilon=self.config.epsilon(),
        )

        low = 0
        high = stats.max_augmented_weight
        if not self.tester.hp_test_out(root, low, high, field_prime=field_prime, tree=tree):
            return self._result(None, True, 0, start, start_be)

        budget = (
            max_iterations
            if max_iterations is not None
            else 8 * self.config.findmin_budget(max(stats.max_augmented_weight, 2))
        )
        num_pivots = max(2, self.config.word_size // 2)

        iterations = 0
        while iterations < budget:
            iterations += 1
            if low == high:
                edge = self.graph.edge_from_augmented_weight(low)
                if edge is not None:
                    return self._result(edge, False, iterations, start, start_be)
                return self._result(None, False, iterations, start, start_be)

            pivots = self._sample_pivots(root, tree, low, high, num_pivots)
            ranges = self._pivot_ranges(low, high, pivots)
            odd_hash = random_odd_hash(max(stats.max_edge_number, 1), self.config.rng)
            word = self.tester.test_out_word(
                root=root,
                ranges=ranges,
                odd_hash=odd_hash,
                max_edge_number=stats.max_edge_number,
                tree=tree,
            )
            min_index = next(
                (i for i in range(len(ranges)) if (word >> i) & 1), None
            )
            if min_index is None:
                if not self.tester.hp_test_out(
                    root, low, high, field_prime=field_prime, tree=tree
                ):
                    return self._result(None, True, iterations, start, start_be)
                continue

            range_low, range_high = ranges[min_index]
            test_low = False
            if range_low > low:
                test_low = self.tester.hp_test_out(
                    root, low, range_low - 1, field_prime=field_prime, tree=tree
                )
            test_interval = self.tester.hp_test_out(
                root, range_low, range_high, field_prime=field_prime, tree=tree
            )
            if test_low or not test_interval:
                continue

            if range_low == range_high:
                edge = self.graph.edge_from_augmented_weight(range_low)
                if edge is not None:
                    return self._result(edge, False, iterations, start, start_be)
                continue
            low, high = range_low, range_high

        return self._result(None, False, iterations, start, start_be)

    # ------------------------------------------------------------------ #
    # the Sample routine
    # ------------------------------------------------------------------ #
    def _sample_pivots(
        self,
        root: int,
        tree: TreeStructure,
        low: int,
        high: int,
        count: int,
    ) -> List[int]:
        """One B&E drawing up to ``count`` random qualifying incident weights.

        Each node locally attaches a random key to each of its qualifying
        incident non-tree edges and offers its ``count`` smallest; the echo
        keeps the ``count`` smallest keys overall, which yields a uniform
        random subset of the qualifying multiset.  Messages carry ``count``
        weight prefixes, i.e. ``O(w)`` bits, as in the appendix.
        """
        id_bits = self.graph.id_bits
        # Per-iteration seed so that every node's "local randomness" is drawn
        # from the run's reproducible stream but stays node-local.
        iteration_seed = self._rng.getrandbits(64)

        fast = fastpath.is_enabled()

        def local(node: int) -> List[Tuple[float, int]]:
            node_rng = random.Random((iteration_seed << 20) ^ node)
            offers: List[Tuple[float, int]] = []
            if fast:
                arrays = self.graph.incident_arrays(node)
                for edge, weight in zip(arrays.edges, arrays.augmented):
                    if self.forest.is_marked(edge.u, edge.v):
                        continue
                    if low <= weight <= high:
                        offers.append((node_rng.random(), weight))
            else:
                for edge in self.graph.incident_edges(node):
                    if self.forest.is_marked(edge.u, edge.v):
                        continue
                    weight = edge.augmented_weight(id_bits)
                    if low <= weight <= high:
                        offers.append((node_rng.random(), weight))
            offers.sort()
            return offers[:count]

        def combine(local_value, children):
            merged = list(local_value)
            for child in children:
                merged.extend(child)
            merged.sort()
            return merged[:count]

        weight_bits = max(high.bit_length(), 1)
        samples = self.tester.executor.broadcast_and_echo(
            root=root,
            local_value=local,
            combine=combine,
            broadcast_bits=2 * weight_bits + 8,
            echo_bits=max(weight_bits, count),
            tree=tree,
            kind="sample",
        )
        return sorted({weight for _, weight in samples})

    @staticmethod
    def _pivot_ranges(
        low: int, high: int, pivots: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Intervals induced by the pivots, with a singleton at each pivot.

        For pivots ``p_1 < … < p_s`` inside ``[low, high]`` the intervals are
        ``[low, p_1−1], [p_1, p_1], [p_1+1, p_2−1], …, [p_s+1, high]`` with
        empty intervals dropped.
        """
        ranges: List[Tuple[int, int]] = []
        cursor = low
        for pivot in pivots:
            if pivot < low or pivot > high:
                continue
            if cursor <= pivot - 1:
                ranges.append((cursor, pivot - 1))
            ranges.append((pivot, pivot))
            cursor = pivot + 1
        if cursor <= high:
            ranges.append((cursor, high))
        if not ranges:
            ranges.append((low, high))
        return ranges

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _result(
        self,
        edge: Optional[Edge],
        verified_empty: bool,
        iterations: int,
        start_snapshot,
        start_broadcast_echoes: int,
    ) -> FindResult:
        return FindResult(
            edge=edge,
            verified_empty=verified_empty,
            iterations=iterations,
            broadcast_echoes=self.accountant.broadcast_echoes - start_broadcast_echoes,
            cost=self.accountant.since(start_snapshot),
        )
