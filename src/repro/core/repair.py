"""Impromptu repair of an MST or ST under edge updates (Sections 3.2, 4.3).

The repairs are *impromptu*: between updates every node knows only the names
and weights of its incident edges and which of them are marked — exactly the
:class:`~repro.network.fragments.SpanningForest` state — and nothing else is
precomputed or stored.  Each update is processed as follows (Theorem 1.2):

* **Delete / weight increase of a tree edge** ``{u, v}``: the smaller
  endpoint ``u`` initiates ``FindMin`` (MST) or ``FindAny`` (ST) on its side
  ``T_u`` of the broken tree.  If a replacement edge is found it is announced
  with one broadcast over ``T_u`` plus one message across the replacement
  edge, and marked; if the procedure certifies that no edge leaves ``T_u``,
  the deleted edge was a bridge and nothing more is needed.  Expected cost:
  ``O(|T_u| log n / log log n)`` messages for MST, ``O(|T_u|)`` for ST.

* **Insert / weight decrease of an edge** ``{u, v}``: ``u`` runs a single
  broadcast-and-echo over ``T_u`` that simultaneously (a) discovers whether
  ``v ∈ T_u`` and (b) computes the heaviest edge on the tree path from ``u``
  to ``v``.  If ``v`` is in a different tree the new edge joins the forest;
  otherwise it replaces the heaviest path edge iff it is lighter.
  Deterministic, ``O(|T_u|)`` messages.

The asynchronous model of Theorem 1.2 is honoured because every step is a
broadcast-and-echo (self-synchronizing) or a single point-to-point message;
tests exercise the underlying primitive under adversarial schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..network.accounting import CostDelta, MessageAccountant
from ..network.errors import AlgorithmError, GraphError
from ..network.fragments import SpanningForest
from ..network.graph import Edge, Graph, edge_key
from .config import AlgorithmConfig
from .findany import FindAny
from .findmin import FindMin, FindResult

__all__ = ["RepairReport", "TreeRepairer"]


@dataclass
class RepairReport:
    """What a single update did to the maintained tree."""

    action: str
    updated_edge: Tuple[int, int]
    was_tree_edge: bool
    replacement: Optional[Edge]
    removed: Optional[Edge]
    bridge: bool
    cost: CostDelta

    @property
    def changed_tree(self) -> bool:
        return self.replacement is not None or self.removed is not None or self.was_tree_edge


class TreeRepairer:
    """Impromptu repair driver for a maintained MST (``mode="mst"``) or ST."""

    def __init__(
        self,
        graph: Graph,
        forest: SpanningForest,
        config: Optional[AlgorithmConfig] = None,
        accountant: Optional[MessageAccountant] = None,
        mode: str = "mst",
    ) -> None:
        if mode not in ("mst", "st"):
            raise AlgorithmError("mode must be 'mst' or 'st'")
        self.graph = graph
        self.forest = forest
        self.config = (
            config if config is not None else AlgorithmConfig(n=max(graph.num_nodes, 1))
        )
        self.accountant = accountant if accountant is not None else MessageAccountant()
        self.mode = mode
        self._findmin = FindMin(graph, forest, self.config, self.accountant)
        self._findany = FindAny(graph, forest, self.config, self.accountant)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def delete_edge(self, u: int, v: int) -> RepairReport:
        """Process the deletion of the edge ``{u, v}`` (paper's Delete)."""
        start = self.accountant.snapshot()
        key = edge_key(u, v)
        if not self.graph.has_edge(*key):
            raise GraphError(f"cannot delete non-existent edge {key}")
        was_tree_edge = self.forest.is_marked(*key)
        self.graph.remove_edge(*key)
        self.forest.unmark(*key)

        if not was_tree_edge:
            return self._report("delete", key, False, None, None, False, start)

        initiator = key[0]  # the smaller-ID endpoint initiates (paper: u < v)
        replacement, bridge = self._find_replacement(initiator)
        return self._report("delete", key, True, replacement, None, bridge, start)

    def insert_edge(self, u: int, v: int, weight: int = 1) -> RepairReport:
        """Process the insertion of the edge ``{u, v}`` (paper's Insert)."""
        start = self.accountant.snapshot()
        key = edge_key(u, v)
        self.graph.add_edge(key[0], key[1], weight)
        initiator, other = key

        in_same_tree, heaviest = self._path_query(initiator, other)
        if not in_same_tree:
            # The new edge joins two maintained trees; one message across it
            # tells the other endpoint to mark.
            self._charge_edge_message(key)
            self.forest.mark(*key)
            return self._report("insert", key, False, self.graph.get_edge(*key), None, False, start)

        if self.mode == "st":
            # A spanning tree ignores redundant edges.
            return self._report("insert", key, False, None, None, False, start)

        assert heaviest is not None
        new_edge = self.graph.get_edge(*key)
        if heaviest.augmented_weight(self.graph.id_bits) > new_edge.augmented_weight(
            self.graph.id_bits
        ):
            # Swap: broadcast the removal of the heaviest path edge, mark the
            # new one.
            self._findmin.tester.executor.broadcast_only(
                root=initiator, broadcast_bits=2 * self.graph.id_bits, kind="remove_edge"
            )
            self._charge_edge_message(key)
            self.forest.unmark(heaviest.u, heaviest.v)
            self.forest.mark(*key)
            return self._report("insert", key, False, new_edge, heaviest, False, start)
        return self._report("insert", key, False, None, None, False, start)

    def increase_weight(self, u: int, v: int, new_weight: int) -> RepairReport:
        """Weight increase: like a delete for tree edges, a no-op otherwise."""
        start = self.accountant.snapshot()
        key = edge_key(u, v)
        edge = self.graph.get_edge(*key)
        if new_weight < edge.weight:
            raise AlgorithmError("increase_weight called with a smaller weight")
        was_tree_edge = self.forest.is_marked(*key)
        self.graph.set_weight(key[0], key[1], new_weight)

        if not was_tree_edge or self.mode == "st":
            # Non-tree edges only get heavier (still not needed); an ST does
            # not care about weights at all.
            return self._report("increase_weight", key, was_tree_edge, None, None, False, start)

        # Temporarily drop the edge from the tree and look for the lightest
        # edge across the cut it used to cover — possibly itself.
        self.forest.unmark(*key)
        initiator = key[0]
        replacement, bridge = self._find_replacement(initiator)
        if replacement is None and not bridge:
            # The Monte Carlo search exhausted its budget; fall back to
            # keeping the (now heavier) edge so the tree stays spanning.
            self.forest.mark(*key)
            replacement = self.graph.get_edge(*key)
        removed = None if replacement == self.graph.get_edge(*key) else self.graph.get_edge(*key)
        return self._report("increase_weight", key, True, replacement, removed, bridge, start)

    def decrease_weight(self, u: int, v: int, new_weight: int) -> RepairReport:
        """Weight decrease: like an insert for non-tree edges, a no-op otherwise."""
        start = self.accountant.snapshot()
        key = edge_key(u, v)
        edge = self.graph.get_edge(*key)
        if new_weight > edge.weight:
            raise AlgorithmError("decrease_weight called with a larger weight")
        was_tree_edge = self.forest.is_marked(*key)
        self.graph.set_weight(key[0], key[1], new_weight)
        if was_tree_edge or self.mode == "st":
            # A tree edge that gets lighter stays in the MST; an ST ignores weights.
            return self._report("decrease_weight", key, was_tree_edge, None, None, False, start)

        initiator, other = key
        in_same_tree, heaviest = self._path_query(initiator, other)
        if not in_same_tree:
            raise AlgorithmError(
                "a non-tree edge with endpoints in different maintained trees "
                "violates the spanning invariant"
            )
        assert heaviest is not None
        new_edge = self.graph.get_edge(*key)
        if heaviest.augmented_weight(self.graph.id_bits) > new_edge.augmented_weight(
            self.graph.id_bits
        ):
            self._findmin.tester.executor.broadcast_only(
                root=initiator, broadcast_bits=2 * self.graph.id_bits, kind="remove_edge"
            )
            self._charge_edge_message(key)
            self.forest.unmark(heaviest.u, heaviest.v)
            self.forest.mark(*key)
            return self._report("decrease_weight", key, False, new_edge, heaviest, False, start)
        return self._report("decrease_weight", key, False, None, None, False, start)

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def _find_replacement(self, initiator: int) -> Tuple[Optional[Edge], bool]:
        """Search for the replacement edge across the cut (FindMin/FindAny).

        Returns ``(edge_or_None, bridge)`` where ``bridge`` means the search
        certified that no replacement exists.  On a budget-exhausted ∅ the
        search is retried (FindMin / FindAny already retry internally with
        w.h.p. guarantees; an extra outer retry keeps the maintained forest
        spanning even in the astronomically unlikely total-failure case,
        while charging the extra messages honestly).
        """
        for _ in range(3):
            result = self._search(initiator)
            if result.edge is not None:
                self._announce_replacement(initiator, result.edge)
                return result.edge, False
            if result.verified_empty:
                return None, True
        return None, False

    def _search(self, initiator: int) -> FindResult:
        if self.mode == "mst":
            return self._findmin.find_min(initiator)
        return self._findany.find_any(initiator)

    def _announce_replacement(self, initiator: int, edge: Edge) -> None:
        """Broadcast the replacement over ``T_initiator`` and mark it."""
        component_size = len(self.forest.component_of(initiator))
        if component_size > 1:
            self._findmin.tester.executor.broadcast_only(
                root=initiator, broadcast_bits=2 * self.graph.id_bits, kind="add_edge"
            )
        self._charge_edge_message((edge.u, edge.v))
        self.forest.mark(edge.u, edge.v)

    def _path_query(self, root: int, target: int) -> Tuple[bool, Optional[Edge]]:
        """One B&E over ``T_root``: is ``target`` there, and if so which is the
        heaviest edge on the tree path from ``root`` to ``target``?"""
        id_bits = self.graph.id_bits
        executor = self._findmin.tester.executor
        tree = self.forest.rooted_structure(root)

        def propagate(parent_state, parent: int, child: int):
            edge = self.graph.get_edge(parent, child)
            if parent_state is None:
                return edge
            if edge.augmented_weight(id_bits) > parent_state.augmented_weight(id_bits):
                return edge
            return parent_state

        def collect(node: int, state):
            if node == target:
                return state if state is not None else "root-is-target"
            return None

        def combine(local_value, children):
            for value in [local_value] + list(children):
                if value is not None:
                    return value
            return None

        answer = executor.broadcast_with_downward_state(
            root=root,
            initial_state=None,
            propagate=propagate,
            broadcast_bits=2 * id_bits + self.graph.max_weight().bit_length() + 2,
            echo_bits=2 * id_bits + self.graph.max_weight().bit_length() + 2,
            collect=collect,
            combine=combine,
            tree=tree,
            kind="path_query",
        )
        if answer is None:
            return False, None
        if answer == "root-is-target":
            # target == root: a self-loop insert is rejected earlier, so this
            # can only mean the path is empty; treat as same tree, no path edge.
            return True, None
        return True, answer

    def _charge_edge_message(self, key: Tuple[int, int]) -> None:
        self._findmin.tester.executor.point_to_point_along_edge(
            key[0], key[1], size_bits=2 * self.graph.id_bits, kind="mark_edge"
        )

    def _report(
        self,
        action: str,
        key: Tuple[int, int],
        was_tree_edge: bool,
        replacement: Optional[Edge],
        removed: Optional[Edge],
        bridge: bool,
        start,
    ) -> RepairReport:
        return RepairReport(
            action=action,
            updated_edge=key,
            was_tree_edge=was_tree_edge,
            replacement=replacement,
            removed=removed,
            bridge=bridge,
            cost=self.accountant.since(start),
        )
